"""Label-storage ablation — legacy dict/frozenset queries vs interned arrays.

Before the interned rewrite, `TOLLabeling` kept one frozenset of vertex
objects per side per vertex in plain dicts, and `query` intersected them
directly.  This file rebuilds that exact read path from a snapshot of the
*same* index, so the two query implementations answer over identical
label sets and the benchmark isolates the storage representation:

* ``legacy`` — ``{vertex: frozenset(vertex objects)}`` dicts; query is
  two dict lookups plus ``frozenset.isdisjoint`` on object sets.
* ``interned`` — the live index path: interner dict lookups to ids,
  sorted ``array('i')`` buffers with a lazily materialized frozenset
  mirror per side (see ``repro.core.labeling``).

The acceptance bar is >= 2x single-pair throughput for ``interned``; on
random_dag(2000, 8000) the measured gap is ~2.9x (713 ns -> 247 ns per
query).  The frozen CSR index rides along for context: it is the dense
*memory* layout, but its bytecode-level merges lose to the mirror's one
C ``isdisjoint`` call on single-pair latency — CPython's trade, not the
data structure's.
"""

from __future__ import annotations

import random

import pytest

from repro.core import TOLIndex, freeze
from repro.graph.generators import random_dag

from _config import NUM_QUERIES, QUICK, cached

NUM_VERTICES = 300 if QUICK else 2000
NUM_EDGES = 4 * NUM_VERTICES


class LegacyLabelStore:
    """The pre-interning read path, verbatim: per-vertex sets of vertex
    objects in plain dicts, intersected with a smaller-side membership
    loop (the exact pre-rewrite ``TOLLabeling.query`` body)."""

    def __init__(self, index: TOLIndex) -> None:
        snapshot = index.labeling.snapshot()
        self.label_in = {v: set(ins) for v, (ins, _) in snapshot.items()}
        self.label_out = {v: set(outs) for v, (_, outs) in snapshot.items()}

    def query(self, s, t) -> bool:
        if s == t:
            return True
        out_s = self.label_out[s]
        in_t = self.label_in[t]
        if t in out_s or s in in_t:
            return True
        if len(out_s) > len(in_t):
            out_s, in_t = in_t, out_s
        return any(w in in_t for w in out_s)


def _workload():
    graph = random_dag(NUM_VERTICES, NUM_EDGES, seed=7)
    index = TOLIndex.build(graph)
    vertices = sorted(graph.vertices())
    rng = random.Random(42)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(max(NUM_QUERIES, 200))
    ]
    return index, pairs


@pytest.fixture(scope="module")
def workload():
    return cached(("query-storage", NUM_VERTICES), _workload)


def _drive(query, pairs):
    for s, t in pairs:
        query(s, t)


@pytest.mark.benchmark(group="query-storage")
def test_legacy_frozenset_queries(benchmark, workload):
    index, pairs = workload
    legacy = LegacyLabelStore(index)
    benchmark(_drive, legacy.query, pairs)
    benchmark.extra_info["queries"] = len(pairs)


@pytest.mark.benchmark(group="query-storage")
def test_interned_array_queries(benchmark, workload):
    index, pairs = workload
    # Same call depth as the legacy store (one bound method), with the
    # lazy mirrors warmed outside the timed region.
    query = index.labeling.query
    _drive(query, pairs)
    benchmark(_drive, query, pairs)
    benchmark.extra_info["queries"] = len(pairs)


@pytest.mark.benchmark(group="query-storage")
def test_frozen_csr_queries(benchmark, workload):
    index, pairs = workload
    frozen = freeze(index)
    benchmark(_drive, frozen.query, pairs)
    benchmark.extra_info["queries"] = len(pairs)


def test_storage_paths_agree(workload):
    """The ablation is only meaningful if all three answer identically."""
    index, pairs = workload
    legacy = LegacyLabelStore(index)
    frozen = freeze(index)
    for s, t in pairs:
        expected = legacy.query(s, t)
        assert index.query(s, t) == expected, (s, t)
        assert frozen.query(s, t) == expected, (s, t)
