"""Ablation — Algorithm 3's optimal placement vs. the cheap bottom level.

Section 5.1.2 motivates Algorithm 3: always giving a new vertex the lowest
level is the cheapest insertion, but "could be highly sub-optimal" for
index size and query cost.  This ablation measures the drift: starting
from a BU index, it deletes-and-reinserts a stream of vertices under both
placement policies and tracks the resulting index size and insertion cost.

Expected shape: bottom placement inserts faster but the index grows with
churn; optimal placement holds the size flat (it can only shrink it —
Lemma 3) at a per-insert premium.
"""

import pytest

from repro import datasets as ds
from repro.bench.tables import format_bytes, format_millis, format_table
from repro.bench.workloads import generate_updates
from repro.core.index import TOLIndex

from _config import RESULTS_DIR, cached

ABLATION_DATASETS = ["RG5", "citeseerx", "go-uniprot"]
NUM_VERTICES = 500
NUM_UPDATES = 40


def _churn(dataset: str, placement):
    """Delete/re-insert NUM_UPDATES vertices; return (final size, avg ms)."""
    import time

    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    index = TOLIndex.build(graph, order="butterfly-u")
    workload = generate_updates(graph, NUM_UPDATES, seed=4)
    scratch = graph.copy()
    adjacency = {}
    for v in workload.victims:
        adjacency[v] = (scratch.in_neighbors(v), scratch.out_neighbors(v))
        scratch.remove_vertex(v)
        index.delete_vertex(v)
    insert_seconds = 0.0
    for v in reversed(workload.victims):
        ins = tuple(u for u in adjacency[v][0] if u in scratch)
        outs = tuple(w for w in adjacency[v][1] if w in scratch)
        start = time.perf_counter()
        index.insert_vertex(v, ins, outs, placement=placement)
        insert_seconds += time.perf_counter() - start
        scratch.add_vertex(v)
        for u in ins:
            scratch.add_edge(u, v)
        for w in outs:
            scratch.add_edge(v, w)
    return index.size_bytes(), insert_seconds / NUM_UPDATES


@pytest.mark.parametrize("policy", ["optimal", "bottom"])
@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def test_placement_policy(benchmark, dataset, policy):
    placement = None if policy == "optimal" else "bottom"

    result = benchmark.pedantic(
        _churn, args=(dataset, placement), rounds=1, iterations=1
    )
    cached(("ablation-placement", dataset, policy), lambda: result)
    benchmark.extra_info["final_index_bytes"] = result[0]
    benchmark.extra_info["avg_insert_ms"] = round(result[1] * 1e3, 3)


def test_render_placement_ablation(benchmark):
    rows = []
    for dataset in ABLATION_DATASETS:
        graph = ds.load(dataset, num_vertices=NUM_VERTICES)
        baseline = TOLIndex.build(graph, order="butterfly-u").size_bytes()
        opt = cached(
            ("ablation-placement", dataset, "optimal"),
            lambda d=dataset: _churn(d, None),
        )
        bottom = cached(
            ("ablation-placement", dataset, "bottom"),
            lambda d=dataset: _churn(d, "bottom"),
        )
        rows.append([
            dataset,
            format_bytes(baseline),
            format_bytes(opt[0]),
            format_millis(opt[1]),
            format_bytes(bottom[0]),
            format_millis(bottom[1]),
        ])
        # Lemma 3 in action: the optimal policy never ends above the
        # fresh-build size; bottom placement never ends below optimal.
        assert opt[0] <= baseline
        assert bottom[0] >= opt[0]
    table = format_table(
        "Ablation: insertion placement policy (Algorithm 3 vs bottom level)",
        ["dataset", "fresh build", "optimal size", "optimal ins",
         "bottom size", "bottom ins"],
        rows,
        note=f"{NUM_UPDATES} delete+reinsert churn on {NUM_VERTICES}-vertex stand-ins.",
    )
    benchmark(lambda: table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation_placement.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)
