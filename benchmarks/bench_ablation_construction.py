"""Ablation — pruned vs. verbatim Butterfly traversal (Algorithm 5).

Algorithm 5 as printed visits all of ``B+(v)``/``B-(v)`` per iteration and
uses the label-cover check only to gate label insertion; our default also
prunes the *traversal* at covered vertices (provably output-equivalent;
see ``repro/core/butterfly.py``).  This ablation quantifies what that buys
at construction time — the factor grows with density, since dense graphs
have the most covered vertices to skip.
"""

import pytest

from repro import datasets as ds
from repro.bench.tables import format_seconds, format_table
from repro.core.butterfly import butterfly_build
from repro.core.orders import butterfly_upper_order

from _config import RESULTS_DIR, cached

ABLATION_DATASETS = ["RG5", "RG10", "wiki", "go-uniprot"]
NUM_VERTICES = 500


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "verbatim"])
@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def test_construction(benchmark, dataset, prune):
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    order_seq = list(butterfly_upper_order(graph))

    from repro.core.order import LevelOrder

    def build():
        return butterfly_build(graph, LevelOrder(order_seq), prune=prune)

    labeling = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["labels"] = labeling.size()
    key = ("ablation-construction", dataset, prune)
    cached(key, lambda: benchmark.stats.stats.mean)


def test_render_and_equivalence(benchmark):
    from repro.core.order import LevelOrder

    rows = []
    for dataset in ABLATION_DATASETS:
        graph = ds.load(dataset, num_vertices=NUM_VERTICES)
        order_seq = list(butterfly_upper_order(graph))
        pruned = butterfly_build(graph, LevelOrder(order_seq), prune=True)
        verbatim = butterfly_build(graph, LevelOrder(order_seq), prune=False)
        # Output equivalence, re-checked at benchmark scale.
        assert pruned.snapshot() == verbatim.snapshot()
        t_pruned = cached(("ablation-construction", dataset, True), lambda: None)
        t_verbatim = cached(("ablation-construction", dataset, False), lambda: None)
        speedup = (
            f"{t_verbatim / t_pruned:.2f}x"
            if t_pruned and t_verbatim else "—"
        )
        rows.append([
            dataset,
            format_seconds(t_pruned) if t_pruned else "—",
            format_seconds(t_verbatim) if t_verbatim else "—",
            speedup,
        ])
    table = format_table(
        "Ablation: Butterfly construction, pruned vs verbatim traversal",
        ["dataset", "pruned", "verbatim", "speedup"],
        rows,
        note="Identical label sets either way (asserted).",
    )
    benchmark(lambda: table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation_construction.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)
