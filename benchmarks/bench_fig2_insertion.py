"""Figure 2 — average vertex-insertion time on dynamic graphs.

Per-cell pytest-benchmark timings for representative datasets, plus the
full 15-row figure (all datasets × BU/BL/Dagger) rendered to
``benchmarks/results/fig2.txt``.  The paper's shape to look for: BU beats
Dagger nearly everywhere except the tree-shaped uniprot rows, where
Dagger's one-parent interval updates win.
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig2_insertion, run_update_sweep
from repro.bench.harness import DYNAMIC_METHODS, build_method
from repro.bench.workloads import generate_updates

from _config import (
    CELL_DATASETS,
    NUM_UPDATES,
    UPDATE_VERTICES,
    cached,
    publish,
)


def _sweep():
    return cached(
        ("update-sweep", UPDATE_VERTICES, NUM_UPDATES),
        lambda: run_update_sweep(
            num_vertices=UPDATE_VERTICES, num_updates=NUM_UPDATES
        ),
    )


@pytest.mark.parametrize("method", DYNAMIC_METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_insertion_batch(benchmark, dataset, method):
    """Time the re-insertion phase of the paper's update protocol."""
    graph = ds.load(dataset, num_vertices=UPDATE_VERTICES)
    workload = generate_updates(graph, NUM_UPDATES, seed=1)

    def setup():
        index = build_method(method, graph)
        adjacency = {}
        scratch = graph.copy()
        for v in workload.victims:
            adjacency[v] = (
                tuple(u for u in scratch.in_neighbors(v)),
                tuple(w for w in scratch.out_neighbors(v)),
            )
            scratch.remove_vertex(v)
            index.delete_vertex(v)
        plan = []
        for v in reversed(workload.victims):
            ins = tuple(u for u in adjacency[v][0] if u in scratch)
            outs = tuple(w for w in adjacency[v][1] if w in scratch)
            plan.append((v, ins, outs))
            scratch.add_vertex(v)
            for u in ins:
                scratch.add_edge(u, v)
            for w in outs:
                scratch.add_edge(v, w)
        return (index, plan), {}

    def reinsert_all(index, plan):
        for v, ins, outs in plan:
            index.insert_vertex(v, ins, outs)

    benchmark.pedantic(reinsert_all, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["avg_insert_ms"] = (
        benchmark.stats.stats.mean / NUM_UPDATES * 1e3
    )


def test_render_fig2(benchmark):
    result = fig2_insertion(sweep=_sweep(), num_updates=NUM_UPDATES)
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15
