"""Figure 7 — total query time on static graphs (full line-up).

Shapes to look for: all four TOL instantiations (BU, BL, DL, TF) answer
the batch orders of magnitude faster than Dagger; BU/BL lead DL/TF thanks
to their smaller label sets.
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig7_query_static, run_static_sweep
from repro.bench.harness import STATIC_METHODS, build_method
from repro.bench.workloads import generate_queries

from _config import (
    CELL_DATASETS,
    NUM_QUERIES,
    STATIC_VERTICES,
    cached,
    publish,
)


def _sweep():
    return cached(
        ("static-sweep", STATIC_VERTICES, NUM_QUERIES),
        lambda: run_static_sweep(
            num_vertices=STATIC_VERTICES, num_queries=NUM_QUERIES
        ),
    )


@pytest.mark.parametrize("method", STATIC_METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_query_batch(benchmark, dataset, method):
    graph = ds.load(dataset, num_vertices=STATIC_VERTICES)
    queries = generate_queries(graph, NUM_QUERIES, seed=2)
    index = cached(("static-index", dataset, method), lambda: build_method(method, graph))

    def run_queries():
        query = index.query
        for s, t in queries.pairs:
            query(s, t)

    benchmark.pedantic(run_queries, rounds=3, iterations=1)
    benchmark.extra_info["queries"] = NUM_QUERIES


def test_render_fig7(benchmark):
    result = fig7_query_static(sweep=_sweep(), num_queries=NUM_QUERIES)
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15
