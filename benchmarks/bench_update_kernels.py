"""Update-kernel throughput — flat CSR engine vs legacy object engine.

The Section-5 update algorithms (Algorithms 1–4) now run on preallocated
scratch arrays (``engine="csr"``, :mod:`repro.core.scratch`); the
original dict/set implementation survives as ``engine="object"`` for
differential testing.  This bench measures steady-state
``insert_vertex`` / ``delete_vertex`` throughput for both engines on the
same churn workload and emits the repo-root ``BENCH_update.json``
headline — inserts/sec and deletes/sec for the flat engine, with the
speedup over the object engine.

It doubles as the CI regression gate (``bench-update`` step): the flat
engine must stay ≥ ``MIN_SPEEDUP``× the object engine at the measured
scale.

Workload shape: the base DAG stays fixed; each rep inserts a batch of
fresh vertices (in-neighbors sampled below a random topological position
of the base order, out-neighbors above it — so the DAG property holds by
construction and every delete exercises both repair frontiers), then
deletes the same batch in reverse.  The index returns to its base state
after every rep, so reps are independent and the interner's free list
keeps the id space — and therefore the scratch buffers — at a fixed
size: what is measured is exactly the steady state the scratch design
targets.
"""

import gc
import json
import random
import time
from pathlib import Path

from repro.core.index import TOLIndex
from repro.graph.generators import random_dag

from _config import QUICK

#: Repo-root headline artifact (committed at full scale).
BENCH_UPDATE_JSON = Path(__file__).parent.parent / "BENCH_update.json"

#: Base graph size (vertices, edges) — smoke scale / full scale.
HEADLINE_SIZE = (150, 600) if QUICK else (1200, 4800)

#: Vertices inserted+deleted per rep.
BATCH = 30 if QUICK else 150

#: Min-of-N repetitions per engine (quick runs are short enough that
#: scheduler noise needs more samples to quiet down).
REPS = 9 if QUICK else 5

#: CI gate: flat-engine churn throughput (inserts + deletes, the whole
#: differential workload) must be at least this multiple of the object
#: engine's.  The gate is on the combined time — the per-op insert and
#: delete speedups are published in the headline but individually ride
#: timed regions of a few milliseconds at ``--quick`` scale, too small
#: to gate on without flaking.
MIN_SPEEDUP = 1.5


def _churn_plan(graph, batch, seed):
    """Precompute the insertion batch: ``(vertex, ins, outs)`` triples.

    Neighbors are split around a random position of a topological order
    of the base graph, so inserts can never create a cycle no matter the
    order they are applied in, and the fresh vertices never connect to
    each other (each rep's deletes are order-independent).
    """
    rng = random.Random(seed)
    indeg = {v: graph.in_degree(v) for v in graph.vertices()}
    ready = sorted(v for v, d in indeg.items() if d == 0)
    topo = []
    while ready:
        v = ready.pop()
        topo.append(v)
        for w in graph.out_neighbors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    plan = []
    for i in range(batch):
        pos = rng.randint(1, len(topo) - 1)
        ins = rng.sample(topo[:pos], min(pos, rng.randint(1, 3)))
        outs = rng.sample(
            topo[pos:], min(len(topo) - pos, rng.randint(1, 3))
        )
        plan.append((("churn", i), ins, outs))
    return plan


def _churn_rep(index, plan):
    """One timed churn rep: ``(insert_seconds, delete_seconds)``."""
    start = time.perf_counter()
    for v, ins, outs in plan:
        index.insert_vertex(v, ins, outs)
    mid = time.perf_counter()
    for v, _, _ in reversed(plan):
        index.delete_vertex(v)
    end = time.perf_counter()
    return mid - start, end - mid


def _time_churn(index, plan, reps):
    """Best-of-*reps* ``(insert_seconds, delete_seconds)`` for one engine."""
    best_ins = best_del = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            ins_s, del_s = _churn_rep(index, plan)
            best_ins = min(best_ins, ins_s)
            best_del = min(best_del, del_s)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_ins, best_del


def test_update_headline(benchmark):
    """Emit ``BENCH_update.json`` and gate the flat engine on the ratio."""
    num_vertices, num_edges = HEADLINE_SIZE
    graph = random_dag(num_vertices, num_edges, seed=0)
    plan = _churn_plan(graph, BATCH, seed=7)

    # Engines are timed in interleaved rounds (csr rep, object rep, csr
    # rep, ...) so slow machine drift — CI neighbors, thermal throttling
    # — lands on both sides of the ratio instead of one.  The first,
    # untimed warmup rep also grows the csr engine's scratch buffers to
    # their steady-state size, which is the state this bench measures.
    indexes, sizes, best = {}, {}, {}
    for engine in ("csr", "object"):
        index = TOLIndex.build(graph, order="butterfly-u", engine=engine)
        indexes[engine] = index
        sizes[engine] = index.size()
        _churn_rep(index, plan)  # warmup, untimed
        best[engine] = [float("inf"), float("inf")]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            for engine, index in indexes.items():
                ins_s, del_s = _churn_rep(index, plan)
                best[engine][0] = min(best[engine][0], ins_s)
                best[engine][1] = min(best[engine][1], del_s)
    finally:
        if gc_was_enabled:
            gc.enable()

    engines = {}
    for engine, (ins_s, del_s) in best.items():
        assert indexes[engine].size() == sizes[engine], (
            "churn must restore the index"
        )
        engines[engine] = {
            "insert_seconds": round(ins_s, 6),
            "delete_seconds": round(del_s, 6),
            "inserts_per_second": round(BATCH / ins_s, 1),
            "deletes_per_second": round(BATCH / del_s, 1),
        }

    flat, obj = engines["csr"], engines["object"]
    insert_speedup = obj["insert_seconds"] / flat["insert_seconds"]
    delete_speedup = obj["delete_seconds"] / flat["delete_seconds"]
    update_speedup = (obj["insert_seconds"] + obj["delete_seconds"]) / (
        flat["insert_seconds"] + flat["delete_seconds"]
    )
    headline = {
        "engine": "csr",
        "num_vertices": num_vertices,
        "num_edges": num_edges,
        "batch": BATCH,
        "inserts_per_second": flat["inserts_per_second"],
        "deletes_per_second": flat["deletes_per_second"],
        "insert_speedup_vs_object": round(insert_speedup, 3),
        "delete_speedup_vs_object": round(delete_speedup, 3),
        "update_speedup_vs_object": round(update_speedup, 3),
    }
    payload = {
        "benchmark": "flat-update-kernels",
        "generated_by": (
            "benchmarks/bench_update_kernels.py::test_update_headline"
        ),
        "protocol": (
            f"min-of-{REPS} wall seconds, gc paused; one rep inserts "
            f"{BATCH} vertices (1-3 in/out neighbors each) then deletes "
            f"them, restoring the base index; id space fixed via "
            f"free-list reuse"
        ),
        "quick": QUICK,
        "headline": headline,
        "engines": engines,
    }
    BENCH_UPDATE_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    benchmark.extra_info.update(headline)
    benchmark.pedantic(
        lambda: _time_churn(
            TOLIndex.build(graph, order="butterfly-u", engine="csr"), plan, 1
        ),
        rounds=1,
        iterations=1,
    )
    assert update_speedup >= MIN_SPEEDUP, (
        f"flat update kernels below the {MIN_SPEEDUP}x gate vs the "
        f"object engine on random_dag{HEADLINE_SIZE}: {update_speedup:.2f}x "
        f"(insert {insert_speedup:.2f}x, delete {delete_speedup:.2f}x)"
    )
