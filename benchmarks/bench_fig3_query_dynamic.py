"""Figure 3 — total query time on dynamic graphs.

Each method first absorbs the delete/re-insert churn, then answers the
query batch — so Dagger's interval decay shows, exactly as in the paper.
Shapes to look for: BU/BL orders of magnitude below Dagger and BFS;
Dagger not much better (sometimes worse) than plain BFS.
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig3_query_dynamic
from repro.bench.harness import build_method, measure_updates
from repro.bench.workloads import generate_queries, generate_updates

from _config import (
    CELL_DATASETS,
    NUM_QUERIES,
    NUM_UPDATES,
    UPDATE_VERTICES,
    cached,
    publish,
)

METHODS = ("BU", "BL", "Dagger", "BFS")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_query_batch_after_churn(benchmark, dataset, method):
    graph = ds.load(dataset, num_vertices=UPDATE_VERTICES)
    queries = generate_queries(graph, NUM_QUERIES, seed=2)
    updates = generate_updates(graph, NUM_UPDATES, seed=1)

    def churned_index():
        index = build_method(method, graph)
        measure_updates(index, graph, updates)
        return index

    index = cached(("churned", dataset, method), churned_index)

    def run_queries():
        query = index.query
        for s, t in queries.pairs:
            query(s, t)

    benchmark.pedantic(run_queries, rounds=3, iterations=1)
    benchmark.extra_info["queries"] = NUM_QUERIES


def test_render_fig3(benchmark):
    result = cached(
        ("fig3", UPDATE_VERTICES, NUM_QUERIES, NUM_UPDATES),
        lambda: fig3_query_dynamic(
            num_vertices=UPDATE_VERTICES,
            num_queries=NUM_QUERIES,
            num_updates=NUM_UPDATES,
        ),
    )
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15
