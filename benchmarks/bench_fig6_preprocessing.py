"""Figure 6 — preprocessing (index construction) time on static graphs.

Shapes to look for: construction cost tracks index size, so BU/BL build
faster than DL/TF on the dense RG rows; Dagger's interval labeling is the
cheapest build but the worst queries (Figure 7).

``test_build_headline`` additionally emits the repo-root
``BENCH_build.json`` headline — vertices/sec for BU and BL preprocessing
(order computation + Butterfly build) on standard synthetic sizes, with
the CSR flat-array engine measured against the legacy object engine.  It
doubles as the CI regression gate: the CSR engine must not be slower
than the object engine (``bench-build`` step, ``--quick`` scale).
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig6_preprocessing, run_static_sweep
from repro.bench.harness import STATIC_METHODS, build_method
from repro.core.butterfly import butterfly_build
from repro.core.orders import resolve_order_strategy
from repro.graph.generators import random_dag

from _config import (
    CELL_DATASETS,
    NUM_QUERIES,
    QUICK,
    STATIC_VERTICES,
    cached,
    publish,
)

#: Repo-root headline artifact (committed at full scale).
BENCH_BUILD_JSON = Path(__file__).parent.parent / "BENCH_build.json"

#: Standard synthetic sizes for the headline (full scale / smoke scale).
HEADLINE_SIZES = [(300, 1200)] if QUICK else [(2000, 8000), (5000, 20000)]

#: Min-of-N repetitions per engine (more at smoke scale: tiny builds are
#: noisier, and the CI gate asserts on the ratio).
HEADLINE_REPS = 7 if QUICK else 3


def _sweep():
    return cached(
        ("static-sweep", STATIC_VERTICES, NUM_QUERIES),
        lambda: run_static_sweep(
            num_vertices=STATIC_VERTICES, num_queries=NUM_QUERIES
        ),
    )


@pytest.mark.parametrize("method", STATIC_METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_build(benchmark, dataset, method):
    graph = ds.load(dataset, num_vertices=STATIC_VERTICES)
    index = benchmark.pedantic(
        build_method, args=(method, graph), rounds=1, iterations=1
    )
    benchmark.extra_info["index_bytes"] = index.size_bytes()


def test_render_fig6(benchmark):
    result = fig6_preprocessing(sweep=_sweep())
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15


def _time_preprocessing(graph, method, engine, reps):
    """Best-of-*reps* seconds for order computation + Butterfly build.

    The snapshot cache is cleared each rep so the timing includes one CSR
    packing pass per pipeline — the real cost model: the order strategy
    packs the snapshot, the build reuses it (both engines pay it, since
    the order strategies run on the snapshot either way; only the build
    kernel differs).
    """
    strategy = resolve_order_strategy(method)
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            graph._csr_cache = None
            start = time.perf_counter()
            order = strategy(graph)
            butterfly_build(graph, order, engine=engine)
            best = min(best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def test_build_headline(benchmark):
    """Emit ``BENCH_build.json`` and gate the CSR engine on the ratio."""
    methods = {"BU": "butterfly-u", "BL": "butterfly-l"}
    graphs = []
    for num_vertices, num_edges in HEADLINE_SIZES:
        graph = random_dag(num_vertices, num_edges, seed=0)
        entry = {
            "dataset": "random_dag",
            "num_vertices": num_vertices,
            "num_edges": num_edges,
            "seed": 0,
            "methods": {},
        }
        for label, strategy in methods.items():
            csr_s = _time_preprocessing(graph, strategy, "csr", HEADLINE_REPS)
            obj_s = _time_preprocessing(
                graph, strategy, "object", HEADLINE_REPS
            )
            entry["methods"][label] = {
                "csr_seconds": round(csr_s, 6),
                "object_seconds": round(obj_s, 6),
                "speedup": round(obj_s / csr_s, 3),
                "vertices_per_second": round(num_vertices / csr_s, 1),
            }
        graphs.append(entry)

    top = graphs[-1]
    headline = {
        "method": "BU",
        "num_vertices": top["num_vertices"],
        "num_edges": top["num_edges"],
        "vertices_per_second": top["methods"]["BU"]["vertices_per_second"],
        "speedup_vs_object": top["methods"]["BU"]["speedup"],
    }
    payload = {
        "benchmark": "butterfly-build-preprocessing",
        "generated_by": (
            "benchmarks/bench_fig6_preprocessing.py::test_build_headline"
        ),
        "protocol": (
            f"min-of-{HEADLINE_REPS} wall seconds, gc paused, snapshot "
            f"cache cleared per rep; seconds = order computation + build"
        ),
        "quick": QUICK,
        "headline": headline,
        "graphs": graphs,
    }
    BENCH_BUILD_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    benchmark.extra_info.update(headline)
    benchmark.pedantic(
        lambda: _time_preprocessing(
            random_dag(*HEADLINE_SIZES[-1], seed=0), "butterfly-u", "csr", 1
        ),
        rounds=1,
        iterations=1,
    )
    for entry in graphs:
        for label, cell in entry["methods"].items():
            assert cell["speedup"] >= 1.0, (
                f"CSR engine slower than object engine for {label} on "
                f"random_dag({entry['num_vertices']}, {entry['num_edges']}): "
                f"{cell['csr_seconds']}s vs {cell['object_seconds']}s"
            )
