"""Figure 6 — preprocessing (index construction) time on static graphs.

Shapes to look for: construction cost tracks index size, so BU/BL build
faster than DL/TF on the dense RG rows; Dagger's interval labeling is the
cheapest build but the worst queries (Figure 7).
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig6_preprocessing, run_static_sweep
from repro.bench.harness import STATIC_METHODS, build_method

from _config import (
    CELL_DATASETS,
    NUM_QUERIES,
    STATIC_VERTICES,
    cached,
    publish,
)


def _sweep():
    return cached(
        ("static-sweep", STATIC_VERTICES, NUM_QUERIES),
        lambda: run_static_sweep(
            num_vertices=STATIC_VERTICES, num_queries=NUM_QUERIES
        ),
    )


@pytest.mark.parametrize("method", STATIC_METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_build(benchmark, dataset, method):
    graph = ds.load(dataset, num_vertices=STATIC_VERTICES)
    index = benchmark.pedantic(
        build_method, args=(method, graph), rounds=1, iterations=1
    )
    benchmark.extra_info["index_bytes"] = index.size_bytes()


def test_render_fig6(benchmark):
    result = fig6_preprocessing(sweep=_sweep())
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15
