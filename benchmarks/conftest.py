"""Shared configuration for the per-figure benchmark files.

Scales here are the "benchmark profile": large enough that the paper's
qualitative shapes (who wins, by what factor, where the crossovers are)
reproduce, small enough that the whole ``pytest benchmarks/`` run finishes
in minutes on a laptop.  Every figure's full 15-row table is produced by
its ``test_render_*`` target and written to ``benchmarks/results/``.

The experiment drivers are memoized per session: Figures 2 and 4 share one
update sweep, Figures 5–7 share one static sweep, so nothing is measured
twice.

Pass ``--quick`` to shrink the profile to smoke-test scale (the CI
``bench-smoke`` step): every file still builds and measures, but on tiny
graphs with one dataset per sweep.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import _config  # noqa: E402
from _config import RESULTS_DIR  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink the benchmark profile to smoke-test scale",
    )


def pytest_configure(config):
    if config.getoption("--quick"):
        # Before collection, so the bench modules import the shrunk
        # constants (they bind them with `from _config import ...`).
        _config.enable_quick()


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    yield
