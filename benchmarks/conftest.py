"""Shared configuration for the per-figure benchmark files.

Scales here are the "benchmark profile": large enough that the paper's
qualitative shapes (who wins, by what factor, where the crossovers are)
reproduce, small enough that the whole ``pytest benchmarks/`` run finishes
in minutes on a laptop.  Every figure's full 15-row table is produced by
its ``test_render_*`` target and written to ``benchmarks/results/``.

The experiment drivers are memoized per session: Figures 2 and 4 share one
update sweep, Figures 5–7 share one static sweep, so nothing is measured
twice.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _config import RESULTS_DIR  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    yield
