"""Figure 4 — average vertex-deletion time on dynamic graphs.

Per-cell timings for representative datasets plus the full figure written
to ``benchmarks/results/fig4.txt``.  The paper's shape: BU/BL are
comparable to Dagger except on the dense RG rows and wiki, where rebuilding
the labels of everything the victim touches is the price of TOL's fast
queries.
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig4_deletion, run_update_sweep
from repro.bench.harness import DYNAMIC_METHODS, build_method
from repro.bench.workloads import generate_updates

from _config import (
    CELL_DATASETS,
    NUM_UPDATES,
    UPDATE_VERTICES,
    cached,
    publish,
)


def _sweep():
    return cached(
        ("update-sweep", UPDATE_VERTICES, NUM_UPDATES),
        lambda: run_update_sweep(
            num_vertices=UPDATE_VERTICES, num_updates=NUM_UPDATES
        ),
    )


@pytest.mark.parametrize("method", DYNAMIC_METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_deletion_batch(benchmark, dataset, method):
    """Time the deletion phase of the paper's update protocol."""
    graph = ds.load(dataset, num_vertices=UPDATE_VERTICES)
    workload = generate_updates(graph, NUM_UPDATES, seed=1)

    def setup():
        return (build_method(method, graph),), {}

    def delete_all(index):
        for v in workload.victims:
            index.delete_vertex(v)

    benchmark.pedantic(delete_all, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["avg_delete_ms"] = (
        benchmark.stats.stats.mean / NUM_UPDATES * 1e3
    )


def test_render_fig4(benchmark):
    result = fig4_deletion(sweep=_sweep(), num_updates=NUM_UPDATES)
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15
