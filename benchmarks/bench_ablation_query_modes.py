"""Ablation — topo-aware vs. unconstrained query generation.

The paper generates queries so the source always has the lower topological
rank ("none of the queries can be answered by trivially checking whether
the terminal vertex has a lower topological rank") and reports in footnote
1 that unconstrained query sets give qualitatively similar results.  This
ablation checks that claim on our stand-ins: the same indices answer both
workloads, and the method ordering must not change.
"""

import pytest

from repro import datasets as ds
from repro.bench.harness import build_method, measure_queries
from repro.bench.tables import format_millis, format_table
from repro.bench.workloads import generate_queries

from _config import QUICK, RESULTS_DIR, cached

ABLATION_DATASETS = ["RG5"] if QUICK else ["RG5", "citeseerx"]
METHODS = ["BU", "DL", "Dagger", "BFS"]
NUM_VERTICES = 120 if QUICK else 500
NUM_QUERIES = 80 if QUICK else 800


def _times(dataset: str) -> dict[str, dict[str, float]]:
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    workloads = {
        mode: generate_queries(graph, NUM_QUERIES, mode=mode, seed=5)
        for mode in ("topo-aware", "uniform")
    }
    out: dict[str, dict[str, float]] = {m: {} for m in METHODS}
    for method in METHODS:
        index = build_method(method, graph)
        for mode, workload in workloads.items():
            out[method][mode] = measure_queries(index, workload)
    return out


@pytest.mark.parametrize("mode", ["topo-aware", "uniform"])
@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def test_query_mode(benchmark, dataset, mode):
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    queries = generate_queries(graph, NUM_QUERIES, mode=mode, seed=5)
    index = cached(("ablation-qmode-index", dataset), lambda: build_method("BU", graph))
    benchmark.pedantic(lambda: measure_queries(index, queries), rounds=3, iterations=1)


def test_render_query_mode_ablation(benchmark):
    rows = []
    for dataset in ABLATION_DATASETS:
        times = cached(("ablation-qmode", dataset), lambda d=dataset: _times(d))
        for method in METHODS:
            rows.append([
                f"{dataset}/{method}",
                format_millis(times[method]["topo-aware"]),
                format_millis(times[method]["uniform"]),
            ])
        # Footnote-1 claim, asserted at the granularity our scale supports:
        # the slowest method is the same under both workloads, and the
        # label methods stay well ahead of it either way.  (BU vs DL at
        # sub-millisecond batch times is measurement noise; at smoke
        # scale everything is noise, so the check is skipped there.)
        if not QUICK:
            slowest_topo = max(METHODS, key=lambda m: times[m]["topo-aware"])
            slowest_uniform = max(METHODS, key=lambda m: times[m]["uniform"])
            assert slowest_topo == slowest_uniform
            for mode in ("topo-aware", "uniform"):
                assert times["BU"][mode] < times[slowest_topo][mode]
    table = format_table(
        "Ablation: query workload generation (paper's footnote 1)",
        ["dataset/method", "topo-aware", "uniform"],
        rows,
        note=f"{NUM_QUERIES} queries on {NUM_VERTICES}-vertex stand-ins.",
    )
    benchmark(lambda: table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation_query_modes.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)
