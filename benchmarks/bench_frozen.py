"""Serving ablation — frozen (CSR-packed) vs live (set-based) backends.

The live index is shaped for the paper's update algorithms; the frozen
snapshot is shaped for read-only serving.  This bench measures query
throughput and *actual resident memory* of both over the same label sets:
expect comparable query times (CPython's set probe is C-speed, the packed
merge is bytecode) and a several-fold memory win for the packed layout.
"""

import pytest

from repro import datasets as ds
from repro.bench.tables import format_bytes, format_millis, format_table
from repro.bench.workloads import generate_queries
from repro.core.frozen import freeze
from repro.core.index import TOLIndex

from _config import RESULTS_DIR, cached

DATASETS = ["RG10", "citeseerx", "go-uniprot"]
NUM_VERTICES = 900
NUM_QUERIES = 2000


def _pair(dataset: str):
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    live = TOLIndex.build(graph, order="butterfly-u")
    return live, freeze(live)


@pytest.mark.parametrize("backend", ["live", "frozen"])
@pytest.mark.parametrize("dataset", DATASETS)
def test_query_throughput(benchmark, dataset, backend):
    live, frozen = cached(("frozen-pair", dataset), lambda: _pair(dataset))
    index = live if backend == "live" else frozen
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    queries = generate_queries(graph, NUM_QUERIES, seed=8)

    def run():
        query = index.query
        for s, t in queries.pairs:
            query(s, t)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["index_bytes"] = index.size_bytes()


def test_render_frozen_ablation(benchmark):
    import time

    rows = []
    for dataset in DATASETS:
        live, frozen = cached(("frozen-pair", dataset), lambda d=dataset: _pair(d))
        graph = ds.load(dataset, num_vertices=NUM_VERTICES)
        queries = generate_queries(graph, NUM_QUERIES, seed=8)
        timings = {}
        for name, index in (("live", live), ("frozen", frozen)):
            start = time.perf_counter()
            for s, t in queries.pairs:
                index.query(s, t)
            timings[name] = time.perf_counter() - start
            # Both backends must agree on every answer, of course.
        answers_live = [live.query(s, t) for s, t in queries.pairs]
        answers_frozen = [frozen.query(s, t) for s, t in queries.pairs]
        assert answers_live == answers_frozen
        import sys

        lab = live.labeling
        live_actual = sum(
            sys.getsizeof(s_) for s_ in lab.label_in.values()
        ) + sum(sys.getsizeof(s_) for s_ in lab.label_out.values())
        rows.append([
            dataset,
            format_millis(timings["live"]),
            format_millis(timings["frozen"]),
            format_bytes(live_actual),
            format_bytes(frozen.size_bytes()),
        ])
        assert frozen.size_bytes() < live_actual
    table = format_table(
        "Serving ablation: live (sets) vs frozen (CSR arrays)",
        ["dataset", "live query", "frozen query", "live memory*", "frozen memory"],
        rows,
        note=(
            f"{NUM_QUERIES} queries, {NUM_VERTICES}-vertex stand-ins.  "
            "*live memory = set containers only (boxed label ints excluded), "
            "so the real gap is larger."
        ),
    )
    benchmark(lambda: table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation_frozen.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)
