"""Observability overhead — the tracing layer's performance contract.

The span instrumentation threaded through the core (``tol.build``,
``tol.insert``, ``tol.delete``, ``tol.reduction``) is designed so the
*disabled* path costs one attribute read plus a shared no-op context
manager per operation.  This file makes that a tested guarantee rather
than a hope:

* ``test_disabled_overhead_within_budget`` times the instrumented
  ``butterfly_build`` (tracing off) against an uninstrumented replica of
  the same peeling loop — the pre-instrumentation baseline — and asserts
  the ratio stays under :data:`OVERHEAD_BUDGET` (3%).  It uses min-of-N
  timings (minimum is the right estimator for "how fast can this code
  run"; scheduler noise only ever adds time) with one retry at doubled
  reps before failing, so a single noisy CI neighbor cannot flake it.
* ``test_enabled_build_cost`` reports what tracing costs when it is
  actually on (registry + per-level events) — informational, no budget.
* ``test_service_query_overhead_disabled`` runs the serving layer's
  query path with tracing off, the regime a production deployment sits
  in almost all the time.
* ``test_query_timings_path_equivalent`` pins the request-tracing tier's
  contract: ``query_batch_with_epoch(timings=...)`` is a *separate*
  instrumented twin, so the default call never pays for the stage
  clocks — the two paths must agree on every answer, and the timed
  path's cost is reported for the record.

Unlike the rest of the benchmark suite this file keeps the acceptance
scale (|V|=2000, |E|=8000) even under ``--quick``: the budget assertion
is only meaningful when the build takes long enough to time reliably,
and a single build is ~100ms — cheap enough for the smoke tree.
"""

import time
from array import array

from repro.core import resolve_order_strategy
from repro.core.butterfly import butterfly_build
from repro.core.labeling import TOLLabeling
from repro.graph.generators import random_dag
from repro.obs import trace
from repro.service.server import ReachabilityService

from _config import QUICK, cached

NUM_VERTICES = 2000
NUM_EDGES = 8000

#: Maximum allowed (instrumented, tracing off) / (uninstrumented) ratio.
OVERHEAD_BUDGET = 1.03

#: Min-of-N repetitions per variant (doubled on each failed try).
REPS = 5 if QUICK else 7


def _graph_and_order():
    def build():
        graph = random_dag(NUM_VERTICES, NUM_EDGES, seed=42)
        order = resolve_order_strategy("butterfly-u")(graph)
        return graph, order

    return cached(("obs-overhead", NUM_VERTICES, NUM_EDGES), build)


def _uninstrumented_build(graph, order):
    """``butterfly_build`` (CSR engine) with every tracing call deleted.

    A line-for-line replica of ``butterfly._build_csr``'s pruned path —
    same snapshot, same flat-array peeling loop — minus the span/event
    calls and the residual-edge accounting they require.  Keep it in sync
    with the kernel when that changes, or the budget assertion measures
    the wrong thing.
    """
    snap = graph.csr()
    snap.topological_ids()
    labeling = TOLLabeling(order)
    n = snap.num_vertices
    if not n:
        return labeling
    snap_ids = snap.interner.ids
    vcs = list(map(snap_ids.__getitem__, order))
    lab_of = [0] * n
    for rank, vc in enumerate(vcs):
        lab_of[vc] = rank
    oo = snap.out_offsets
    ot = list(snap.out_targets)
    out_rows = [ot[oo[i]:oo[i + 1]] for i in range(n)]
    io_ = snap.in_offsets
    it = list(snap.in_targets)
    in_rows = [it[io_[i]:io_[i + 1]] for i in range(n)]
    in_bufs = [[] for _ in range(n)]
    out_bufs = [[] for _ in range(n)]
    in_holders = labeling.in_holders
    out_holders = labeling.out_holders
    peeled = 2 * n + 1
    state = [0] * n
    queue = [0] * n
    stamp = 0
    for vlab, vc in enumerate(vcs):
        for rows, my_labels, their_bufs, side_holders in (
            (out_rows, out_bufs[vlab], in_bufs, in_holders),
            (in_rows, in_bufs[vlab], out_bufs, out_holders),
        ):
            if not rows[vc]:
                continue
            stamp += 1
            state[vc] = stamp
            queue[0] = vc
            head = 0
            tail = 1
            if my_labels:
                ml_lo = my_labels[0]
                ml_hi = my_labels[-1]
                ml_disjoint = frozenset(my_labels).isdisjoint
            else:
                ml_lo = peeled
                ml_hi = -1
            while head < tail:
                for u in rows[queue[head]]:
                    if state[u] >= stamp:
                        continue
                    state[u] = stamp
                    ulab = lab_of[u]
                    theirs = their_bufs[ulab]
                    if (
                        theirs
                        and theirs[0] <= ml_hi
                        and ml_lo <= theirs[-1]
                        and not ml_disjoint(theirs)
                    ):
                        continue
                    theirs.append(vlab)
                    queue[tail] = u
                    tail += 1
                head += 1
            side_holders[vlab] = {lab_of[q] for q in queue[1:tail]}
        state[vc] = peeled
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    for j in range(n):
        in_ids[j] = array("i", in_bufs[j])
        out_ids[j] = array("i", out_bufs[j])
    return labeling


def _min_time(fn, reps):
    """Best-of-*reps* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_ratio(reps):
    """(ratio, instrumented_s, baseline_s) with interleaved min-of-N.

    The variants alternate within one loop rather than running as two
    back-to-back phases: on a loaded (or single-core) box, load that
    drifts between phases would bias the ratio even though min-of-N
    absorbs spikes *within* each variant's reps.
    """
    graph, order = _graph_and_order()
    assert not trace.active()
    baseline = instrumented = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        _uninstrumented_build(graph, order)
        baseline = min(baseline, time.perf_counter() - start)
        start = time.perf_counter()
        butterfly_build(graph, order)
        instrumented = min(instrumented, time.perf_counter() - start)
    return instrumented / baseline, instrumented, baseline


def test_disabled_overhead_within_budget(benchmark):
    # Up to two retries, doubling reps each time: a page fault or CPU
    # migration in a single rep can inflate an estimate on loaded
    # (especially single-core) CI boxes, and min-of-N converges as N
    # grows.  The budget itself never loosens.
    for attempt in range(3):
        ratio, instrumented, baseline = _measure_ratio(REPS << attempt)
        if ratio < OVERHEAD_BUDGET:
            break
    graph, order = _graph_and_order()
    benchmark.pedantic(
        lambda: butterfly_build(graph, order), rounds=1, iterations=1
    )
    benchmark.extra_info["baseline_s"] = round(baseline, 6)
    benchmark.extra_info["instrumented_off_s"] = round(instrumented, 6)
    benchmark.extra_info["ratio"] = round(ratio, 4)
    assert ratio < OVERHEAD_BUDGET, (
        f"tracing-disabled butterfly_build is {(ratio - 1) * 100:.2f}% "
        f"slower than the uninstrumented baseline "
        f"(budget {(OVERHEAD_BUDGET - 1) * 100:.0f}%): "
        f"{instrumented * 1e3:.2f}ms vs {baseline * 1e3:.2f}ms"
    )


def test_enabled_build_cost(benchmark):
    """Informational: full tracing (registry + per-level events) on."""
    graph, order = _graph_and_order()

    def traced_build():
        with trace.capture() as registry:
            butterfly_build(graph, order)
        return registry

    registry = benchmark.pedantic(traced_build, rounds=1, iterations=1)
    snap = registry.snapshot()
    assert snap["counters"]["event.tol.build.level"] == NUM_VERTICES
    off = _min_time(lambda: butterfly_build(graph, order), REPS)
    on = _min_time(traced_build, REPS)
    benchmark.extra_info["tracing_off_s"] = round(off, 6)
    benchmark.extra_info["tracing_on_s"] = round(on, 6)
    benchmark.extra_info["enabled_ratio"] = round(on / off, 3)


def test_service_query_overhead_disabled(benchmark):
    """Query path with tracing off: the production steady state."""
    graph, _ = _graph_and_order()
    service = ReachabilityService(graph, cache_size=0)
    vertices = list(graph.vertices())
    pairs = [
        (vertices[i % len(vertices)], vertices[(i * 7 + 3) % len(vertices)])
        for i in range(200 if QUICK else 2000)
    ]
    assert not trace.active()
    benchmark.pedantic(
        lambda: service.query_batch(pairs), rounds=3, iterations=1
    )
    benchmark.extra_info["queries"] = len(pairs)
    snap = service.snapshot()
    assert snap["counters"]["queries"] > 0


def test_query_timings_path_equivalent(benchmark):
    """The timed query path agrees with the untimed one and stays cheap."""
    graph, _ = _graph_and_order()
    service = ReachabilityService(graph, cache_size=0)
    vertices = list(graph.vertices())
    pairs = [
        (vertices[i % len(vertices)], vertices[(i * 7 + 3) % len(vertices)])
        for i in range(200 if QUICK else 2000)
    ]
    plain = service.query_batch_with_epoch(pairs)[0]
    timings: dict = {}
    timed = benchmark.pedantic(
        lambda: service.query_batch_with_epoch(pairs, timings=timings),
        rounds=3, iterations=1,
    )[0]
    assert timed == plain
    assert timings["cache_hits"] + timings["cache_misses"] > 0
    assert timings["probe_ms"] >= 0.0 and timings["lock_ms"] >= 0.0
    untimed_s = _min_time(
        lambda: service.query_batch_with_epoch(pairs), REPS
    )
    timed_s = _min_time(
        lambda: service.query_batch_with_epoch(pairs, timings={}), REPS
    )
    benchmark.extra_info["untimed_s"] = round(untimed_s, 6)
    benchmark.extra_info["timed_s"] = round(timed_s, 6)
    benchmark.extra_info["timed_ratio"] = round(timed_s / untimed_s, 3)
