"""Table 4 — iterative label reduction on DL- and TF-built indices.

Shapes to look for: TF shrinks (much) more than DL; tree-shaped rows
(uniprot*) barely move; the dense/citation rows reclaim tens of percent.
RG20/RG40 are skipped like the paper (its DL/TF runs exhausted memory
there).
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import table4_label_reduction
from repro.core.index import TOLIndex

from _config import REDUCTION_DATASETS, REDUCTION_VERTICES, cached, publish

#: Representative reduction cells for fine-grained timing.
CELLS = ["RG5", "uniprot100m", "wiki", "go-uniprot"]

ORDER_OF = {"DL": "degree", "TF": "topological"}


@pytest.mark.parametrize("method", ["DL", "TF"])
@pytest.mark.parametrize("dataset", CELLS)
def test_reduction_round(benchmark, dataset, method):
    graph = ds.load(dataset, num_vertices=REDUCTION_VERTICES)

    def setup():
        return (TOLIndex.build(graph, order=ORDER_OF[method]),), {}

    def reduce(index):
        return index.reduce_labels(max_rounds=1)

    report = benchmark.pedantic(reduce, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["delta_labels"] = report.reduction
    benchmark.extra_info["reduction_ratio"] = round(report.reduction_ratio, 4)


def test_render_table4(benchmark):
    result = cached(
        ("table4", REDUCTION_VERTICES),
        lambda: table4_label_reduction(
            datasets=REDUCTION_DATASETS, num_vertices=REDUCTION_VERTICES
        ),
    )
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == len(REDUCTION_DATASETS)
    # Monotonicity of Section 6: reduction never grows an index.
    for row in result.rows:
        assert row[1] >= 0 and row[4] >= 0
