"""cProfile the Butterfly build on the acceptance-scale synthetic graph.

Run via ``make profile`` (or directly with ``PYTHONPATH=src``).  Profiles
``butterfly_build`` on ``random_dag(5000, 20000)`` under the BU order and
prints the top 25 entries by cumulative time — the view that guided the
flat-array kernel work: when ``_build_csr``'s self-time dominates and the
callee rows are C-level primitives (``isdisjoint``, ``append``), the
kernel is interpreter-bound and further wins need fewer loop iterations,
not cheaper ones.

Options: ``--engine object`` profiles the legacy dict-walking build,
``--prune false`` the verbatim Algorithm-5 variant.
"""

import argparse
import cProfile
import pstats

from repro.core.butterfly import BUILD_ENGINES, butterfly_build
from repro.core.orders import resolve_order_strategy
from repro.graph.generators import random_dag

NUM_VERTICES = 5000
NUM_EDGES = 20000
TOP = 25


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=BUILD_ENGINES, default="csr")
    parser.add_argument("--order", default="butterfly-u")
    parser.add_argument(
        "--prune", choices=("true", "false"), default="true"
    )
    args = parser.parse_args()

    graph = random_dag(NUM_VERTICES, NUM_EDGES, seed=0)
    order = resolve_order_strategy(args.order)(graph)
    prune = args.prune == "true"
    print(
        f"profiling butterfly_build(random_dag({NUM_VERTICES}, "
        f"{NUM_EDGES}), order={args.order!r}, prune={prune}, "
        f"engine={args.engine!r})"
    )
    profiler = cProfile.Profile()
    profiler.enable()
    butterfly_build(graph, order, prune=prune, engine=args.engine)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(TOP)


if __name__ == "__main__":
    main()
