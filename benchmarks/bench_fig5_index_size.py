"""Figure 5 — index sizes on static graphs (BU, BL, HL, DL, TF, Dagger).

Shapes to look for: BU/BL smaller than DL and TF (the paper's headline
static-size claim), HL above DL, Dagger's interval index tiny but paying
for it at query time (Figure 7).
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import fig5_index_size, run_static_sweep
from repro.bench.harness import STATIC_METHODS, build_method

from _config import (
    CELL_DATASETS,
    NUM_QUERIES,
    STATIC_VERTICES,
    cached,
    publish,
)


def _sweep():
    return cached(
        ("static-sweep", STATIC_VERTICES, NUM_QUERIES),
        lambda: run_static_sweep(
            num_vertices=STATIC_VERTICES, num_queries=NUM_QUERIES
        ),
    )


@pytest.mark.parametrize("method", STATIC_METHODS)
@pytest.mark.parametrize("dataset", CELL_DATASETS)
def test_index_size(benchmark, dataset, method):
    graph = ds.load(dataset, num_vertices=STATIC_VERTICES)
    index = cached(("static-index", dataset, method), lambda: build_method(method, graph))
    size = benchmark(index.size_bytes)
    benchmark.extra_info["index_bytes"] = size
    assert size >= 0


def test_render_fig5(benchmark):
    result = fig5_index_size(sweep=_sweep())
    benchmark(result.render)
    publish(result)
    assert len(result.rows) == 15
