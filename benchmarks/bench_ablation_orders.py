"""Ablation — the level order is the whole ballgame (Section 4's thesis).

The paper's central claim is that a TOL index's size, build time and query
time are decided *solely* by the level order.  This ablation builds the
same graphs under seven orders — the paper's BU/BL, the competitors'
TF/DL/HL, the impractical exact-greedy (Section 7.1's motivating
algorithm), and a uniformly random order as the floor — and records the
resulting index sizes and query times side by side.

Expected shape: exact-greedy ≤ BU ≈ BL < HL/DL < TF < random on size, with
query time tracking size.
"""

import pytest

from repro import datasets as ds
from repro.bench.harness import measure_queries
from repro.bench.tables import format_bytes, format_table
from repro.bench.workloads import generate_queries
from repro.core.index import TOLIndex

from _config import RESULTS_DIR, cached

ABLATION_DATASETS = ["RG5", "wiki", "citeseerx", "go-uniprot"]
ORDERS = [
    "exact-greedy", "butterfly-u", "butterfly-l", "hierarchical",
    "degree", "topological", "random",
]
NUM_VERTICES = 350  # exact-greedy is O(|V| (|V|+|E|)): keep it tractable
NUM_QUERIES = 500


def _build(dataset: str, order: str) -> TOLIndex:
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    return TOLIndex.build(graph, order=order)


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def test_order_quality(benchmark, dataset, order):
    index = cached(("ablation-order", dataset, order), lambda: _build(dataset, order))
    graph = ds.load(dataset, num_vertices=NUM_VERTICES)
    queries = generate_queries(graph, NUM_QUERIES, seed=3)

    benchmark.pedantic(lambda: measure_queries(index, queries), rounds=3, iterations=1)
    benchmark.extra_info["index_bytes"] = index.size_bytes()
    benchmark.extra_info["labels"] = index.size()


def test_render_order_ablation(benchmark):
    rows = []
    for dataset in ABLATION_DATASETS:
        row = [dataset]
        for order in ORDERS:
            index = cached(
                ("ablation-order", dataset, order), lambda d=dataset, o=order: _build(d, o)
            )
            row.append(index.size_bytes())
        rows.append(row)
    table = format_table(
        "Ablation: index size by level order",
        ["dataset", *ORDERS],
        [[r[0], *(format_bytes(v) for v in r[1:])] for r in rows],
        note=f"{NUM_VERTICES}-vertex stand-ins; Butterfly construction throughout.",
    )
    benchmark(lambda: table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation_orders.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)

    # The ordering claim itself, asserted: random is never the smallest,
    # and min(BU, BL) beats TF on every ablation dataset.
    for row in rows:
        by_order = dict(zip(ORDERS, row[1:]))
        assert min(by_order["butterfly-u"], by_order["butterfly-l"]) <= by_order["topological"]
        assert min(by_order.values()) < by_order["random"]
