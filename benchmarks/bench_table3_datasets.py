"""Table 3 — dataset statistics (and generation cost per dataset).

Regenerates the paper's Table 3 as a paper-scale vs. stand-in comparison
(written to ``benchmarks/results/table3.txt``) and times the synthetic
generation of each stand-in.
"""

import pytest

from repro import datasets as ds
from repro.bench.experiments import table3_datasets

from _config import ALL_DATASETS, STATIC_VERTICES, cached, publish


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_generate_dataset(benchmark, name):
    spec = ds.DATASETS[name.lower()]
    graph = benchmark(spec.generate, num_vertices=STATIC_VERTICES, seed=0)
    assert graph.num_vertices == STATIC_VERTICES
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["avg_degree"] = round(graph.average_degree(), 2)
    benchmark.extra_info["paper_vertices"] = spec.paper_vertices


def test_render_table3(benchmark):
    result = cached(
        ("table3", STATIC_VERTICES),
        lambda: table3_datasets(num_vertices=STATIC_VERTICES),
    )
    text = benchmark(result.render)
    publish(result)
    assert all(name in text for name in ALL_DATASETS)
