"""Scalability sweep — how the methods grow with |V| (EXPERIMENTS.md §Fig 2).

The paper's update experiments run at 10⁶–10⁷ vertices where Dagger's
insertion (ancestor-region maintenance, cost ∝ |V|) loses to BU's
(label-neighborhood cost).  Our stand-ins cannot reach that crossover, so
this bench documents the trend lines instead: build, query and update cost
for BU, Dagger and BFS at geometrically growing sizes of the go-uniprot
stand-in.  The recorded series back the scale-divergence discussion in
EXPERIMENTS.md.
"""

import pytest

from repro import datasets as ds
from repro.bench.harness import build_method, measure_queries, measure_updates
from repro.bench.tables import format_millis, format_seconds, format_table
from repro.bench.workloads import generate_queries, generate_updates

from _config import QUICK, RESULTS_DIR, cached

SIZES = [80, 160] if QUICK else [300, 600, 1200, 2400]
METHODS = ["BU", "Dagger", "BFS"]
DATASET = "go-uniprot"
NUM_QUERIES = 60 if QUICK else 400
NUM_UPDATES = 3 if QUICK else 12


def _measure(size: int, method: str) -> dict:
    graph = ds.load(DATASET, num_vertices=size)
    queries = generate_queries(graph, NUM_QUERIES, seed=6)
    updates = generate_updates(graph, NUM_UPDATES, seed=7)
    import time

    start = time.perf_counter()
    index = build_method(method, graph)
    build_s = time.perf_counter() - start
    query_s = measure_queries(index, queries)
    timings = measure_updates(index, graph, updates)
    return {
        "build_s": build_s,
        "query_s": query_s,
        "insert_s": timings.avg_insert_seconds,
        "delete_s": timings.avg_delete_seconds,
    }


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("size", SIZES)
def test_scaling_point(benchmark, size, method):
    result = benchmark.pedantic(_measure, args=(size, method), rounds=1, iterations=1)
    cached(("scaling", size, method), lambda: result)
    benchmark.extra_info.update(
        {k: round(v, 6) for k, v in result.items()}
    )


def test_render_scalability(benchmark):
    rows = []
    for size in SIZES:
        for method in METHODS:
            cell = cached(
                ("scaling", size, method),
                lambda s=size, m=method: _measure(s, m),
            )
            rows.append([
                f"{DATASET}@{size}/{method}",
                format_seconds(cell["build_s"]),
                format_millis(cell["query_s"]),
                format_millis(cell["insert_s"]),
                format_millis(cell["delete_s"]),
            ])
    table = format_table(
        "Scalability: cost growth with |V| (go-uniprot stand-in)",
        ["size/method", "build", f"{NUM_QUERIES} queries", "avg insert", "avg delete"],
        rows,
        note="Trend lines behind the Figure-2 scale discussion in EXPERIMENTS.md.",
    )
    benchmark(lambda: table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "scalability.txt").write_text(table + "\n", encoding="utf-8")
    print("\n" + table)

    # Query cost of BU must stay essentially flat while BFS grows: the
    # index's raison d'être.  Too noisy to hold at smoke scale.
    if QUICK:
        return
    bu_small = cached(("scaling", SIZES[0], "BU"), lambda: None)
    bu_large = cached(("scaling", SIZES[-1], "BU"), lambda: None)
    bfs_small = cached(("scaling", SIZES[0], "BFS"), lambda: None)
    bfs_large = cached(("scaling", SIZES[-1], "BFS"), lambda: None)
    bu_growth = bu_large["query_s"] / bu_small["query_s"]
    bfs_growth = bfs_large["query_s"] / bfs_small["query_s"]
    assert bu_growth < bfs_growth
