"""Benchmark profile: scales, representative cells, shared result cache."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro import datasets as ds
from repro.bench.experiments import ExperimentResult

#: Where the rendered figure/table text files land.
RESULTS_DIR = Path(__file__).parent / "results"

#: Uniform stand-in size for the figure sweeps (None = registry defaults).
#: 600 keeps the dense RG40 rows tractable for the update figures while
#: preserving every qualitative shape; the static figures afford more.
UPDATE_VERTICES: Optional[int] = 600
STATIC_VERTICES: Optional[int] = 900
REDUCTION_VERTICES: Optional[int] = 300

#: Workload sizes (scaled from the paper's 10^6 queries / 10^4 updates).
NUM_QUERIES = 1000
NUM_UPDATES = 25

#: All 15 paper datasets, in Table-3 order.
ALL_DATASETS = list(ds.DATASET_NAMES)

#: Table 4 skips RG20/RG40 like the paper (its DL/TF runs exhausted 48GB
#: there).  The paper also omits TF on RG10 for time; at stand-in scale we
#: can afford to keep that row.
REDUCTION_DATASETS = [d for d in ALL_DATASETS if d not in ("RG20", "RG40")]

#: Representative cells for the fine-grained pytest-benchmark timings
#: (one per dataset family plus the dense RG row).
CELL_DATASETS = ["RG5", "RG20", "uniprot100m", "wiki", "go-uniprot"]

_memo: dict = {}


def cached(key, thunk):
    """Session-scoped memo so figures sharing a sweep compute it once."""
    if key not in _memo:
        _memo[key] = thunk()
    return _memo[key]


def publish(result: ExperimentResult) -> str:
    """Write a rendered experiment table under results/ and return it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = result.render()
    (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
    return text
