"""Benchmark profile: scales, representative cells, shared result cache."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro import datasets as ds
from repro.bench.experiments import ExperimentResult

#: Where the rendered figure/table text files land.
RESULTS_DIR = Path(__file__).parent / "results"

#: Uniform stand-in size for the figure sweeps (None = registry defaults).
#: 600 keeps the dense RG40 rows tractable for the update figures while
#: preserving every qualitative shape; the static figures afford more.
UPDATE_VERTICES: Optional[int] = 600
STATIC_VERTICES: Optional[int] = 900
REDUCTION_VERTICES: Optional[int] = 300

#: Workload sizes (scaled from the paper's 10^6 queries / 10^4 updates).
NUM_QUERIES = 1000
NUM_UPDATES = 25

#: All 15 paper datasets, in Table-3 order.
ALL_DATASETS = list(ds.DATASET_NAMES)

#: Table 4 skips RG20/RG40 like the paper (its DL/TF runs exhausted 48GB
#: there).  The paper also omits TF on RG10 for time; at stand-in scale we
#: can afford to keep that row.
REDUCTION_DATASETS = [d for d in ALL_DATASETS if d not in ("RG20", "RG40")]

#: Representative cells for the fine-grained pytest-benchmark timings
#: (one per dataset family plus the dense RG row).
CELL_DATASETS = ["RG5", "RG20", "uniprot100m", "wiki", "go-uniprot"]

#: Whether the profile has been shrunk to smoke scale (``--quick``).
QUICK = False


def enable_quick() -> None:
    """Shrink the whole profile to smoke-test scale.

    Activated by ``pytest benchmarks/ --quick`` (the CI ``bench-smoke``
    step): tiny graphs, one representative dataset per sweep, a handful
    of queries/updates.  Numbers produced at this scale mean nothing —
    the point is that every benchmark file still imports, builds and
    measures, in seconds instead of minutes.

    Must run before the benchmark modules are imported (they bind these
    constants with ``from _config import ...`` at collection time), which
    is why ``conftest.pytest_configure`` calls it.
    """
    global QUICK, RESULTS_DIR, UPDATE_VERTICES, STATIC_VERTICES
    global REDUCTION_VERTICES, NUM_QUERIES, NUM_UPDATES
    global ALL_DATASETS, REDUCTION_DATASETS, CELL_DATASETS
    QUICK = True
    # Keep smoke-scale tables away from the committed full-scale ones.
    RESULTS_DIR = Path(__file__).parent / "results-smoke"
    UPDATE_VERTICES = 120
    STATIC_VERTICES = 150
    REDUCTION_VERTICES = 80
    NUM_QUERIES = 60
    NUM_UPDATES = 4
    ALL_DATASETS = ["RG5", "uniprot22m", "wiki"]
    REDUCTION_DATASETS = list(ALL_DATASETS)
    CELL_DATASETS = ["RG5"]


_memo: dict = {}


def cached(key, thunk):
    """Session-scoped memo so figures sharing a sweep compute it once."""
    if key not in _memo:
        _memo[key] = thunk()
    return _memo[key]


def publish(result: ExperimentResult) -> str:
    """Write a rendered experiment table under results/ and return it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = result.render()
    (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
    return text
