"""Serving-layer benchmark — mixed read/write throughput vs threads/cache.

The paper's evaluation times queries and updates separately; a serving
deployment runs them together.  This bench drives the concurrent
:class:`~repro.service.server.ReachabilityService` with a Zipf-skewed
query stream (the regime caches are built for) and measures:

* query throughput as reader threads scale (GIL-bound: expect roughly
  flat totals, not linear speedup — the point is that correctness and
  latency hold under contention, and that the lock does not collapse);
* the effect of cache size (off / small / large) on the same stream;
* mixed throughput with one writer thread batching updates through the
  coalescing queue while readers hammer queries;
* steady-state write-path overhead of the durability layer (WAL off vs
  each fsync policy), so the crash-safety tax is a measured number;
* the protocol/serialization tax of the network front end: the same
  Zipfian batch stream in-process vs over a loopback socket through
  :mod:`repro.net`, so "what does the wire cost" is a measured number.
"""

import itertools
import threading
import time

import pytest

from repro import datasets as ds
from repro.bench.trace import generate_trace
from repro.bench.workloads import generate_zipfian_queries
from repro.net.client import ReachabilityClient
from repro.net.server import BackgroundServer
from repro.service.durability import DurabilityManager
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp

from _config import QUICK, cached

DATASET = "citeseerx"
NUM_VERTICES = 600
NUM_QUERIES = 2000
ZIPF_SKEW = 1.1


def _graph():
    return ds.load(DATASET, num_vertices=NUM_VERTICES)


def _queries():
    return cached(
        ("service-queries", DATASET, NUM_VERTICES, NUM_QUERIES),
        lambda: generate_zipfian_queries(
            _graph(), NUM_QUERIES, skew=ZIPF_SKEW, seed=13
        ),
    )


def _run_readers(service, pairs, num_threads):
    """Partition *pairs* across *num_threads* batch-querying readers."""
    chunk = (len(pairs) + num_threads - 1) // num_threads
    threads = [
        threading.Thread(
            target=lambda lo=i * chunk: service.query_batch(
                pairs[lo:lo + chunk]
            )
        )
        for i in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


@pytest.mark.parametrize("num_threads", [1, 2, 4, 8])
def test_read_throughput_vs_threads(benchmark, num_threads):
    service = cached(
        ("service", DATASET, NUM_VERTICES),
        lambda: ReachabilityService(_graph(), cache_size=8192),
    )
    pairs = list(_queries().pairs)
    benchmark.pedantic(
        lambda: _run_readers(service, pairs, num_threads),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["queries"] = NUM_QUERIES
    benchmark.extra_info["threads"] = num_threads


@pytest.mark.parametrize("cache_size", [0, 256, 8192])
def test_read_throughput_vs_cache_size(benchmark, cache_size):
    service = ReachabilityService(_graph(), cache_size=cache_size)
    pairs = list(_queries().pairs)
    benchmark.pedantic(
        lambda: _run_readers(service, pairs, 4),
        rounds=3, iterations=1,
    )
    stats = service.cache.stats()
    benchmark.extra_info["cache_size"] = cache_size
    benchmark.extra_info["hit_rate"] = stats["hit_rate"]
    if cache_size:
        # The Zipf head must actually produce repeat hits.
        assert stats["hit_rate"] and stats["hit_rate"] > 0


@pytest.mark.parametrize("flush_threshold", [1, 16])
def test_mixed_readers_plus_writer(benchmark, flush_threshold):
    graph = _graph()
    trace = generate_trace(graph, 60, seed=14, query_fraction=0.0)
    mutations = [UpdateOp.from_trace_op(op) for op in trace]
    pairs = list(_queries().pairs)

    def run():
        service = ReachabilityService(
            graph, cache_size=8192, flush_threshold=flush_threshold
        )

        def writer():
            for op in mutations:
                service.submit_update(op)
            service.flush()

        threads = [
            threading.Thread(
                target=lambda lo=i * 500: service.query_batch(
                    pairs[lo:lo + 500]
                )
            )
            for i in range(4)
        ]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return service

    service = benchmark.pedantic(run, rounds=2, iterations=1)
    snap = service.snapshot()
    benchmark.extra_info["flush_threshold"] = flush_threshold
    benchmark.extra_info["batches"] = snap["queue"]["drained_batches"]
    benchmark.extra_info["coalesced"] = snap["queue"]["coalesced"]
    assert snap["epoch"] > 0
    # Operation counts live under the "counters" sub-dict (they used to
    # be merged flat into the snapshot, colliding with recorder keys).
    assert snap["counters"]["queries"] > 0
    assert snap["counters"]["updates_applied"] > 0


def test_writer_throughput_by_engine(benchmark):
    """Pure-writer throughput through the service, flat vs object engine.

    The same mutation trace is batched through the coalescing queue of
    one service per engine; ``extra_info`` records writer ops/s for both
    and their ratio.  This is the serving-layer view of the
    ``BENCH_update.json`` kernel gate: the flat engine must be visibly
    faster end-to-end, queue and service bookkeeping included.
    """
    graph = _graph()
    num_ops = 40 if QUICK else 200
    trace = generate_trace(graph, num_ops, seed=16, query_fraction=0.0)
    mutations = [UpdateOp.from_trace_op(op) for op in trace]

    def drive(engine):
        service = ReachabilityService(
            graph, cache_size=0, flush_threshold=16, engine=engine
        )
        start = time.perf_counter()
        for op in mutations:
            service.submit_update(op)
        service.flush()
        elapsed = time.perf_counter() - start
        applied = service.snapshot()["counters"]["updates_applied"]
        assert applied > 0
        return len(mutations) / elapsed

    # Warm both (service construction, caches), then time interleaved.
    best = {"csr": 0.0, "object": 0.0}
    rounds = 2 if QUICK else 3
    for engine in best:
        drive(engine)
    for _ in range(rounds):
        for engine in best:
            best[engine] = max(best[engine], drive(engine))
    benchmark.pedantic(lambda: drive("csr"), rounds=1, iterations=1)
    benchmark.extra_info["writer_ops_per_second_csr"] = round(best["csr"], 1)
    benchmark.extra_info["writer_ops_per_second_object"] = round(
        best["object"], 1
    )
    benchmark.extra_info["writer_speedup_vs_object"] = round(
        best["csr"] / best["object"], 3
    )
    assert best["csr"] > best["object"], (
        "flat engine must beat the object engine on the service write "
        f"path: {best['csr']:.1f} vs {best['object']:.1f} ops/s"
    )


@pytest.mark.parametrize("wal", ["off", "never", "batch", "always"])
def test_write_path_wal_overhead(benchmark, wal, tmp_path):
    """Update throughput with the WAL off vs each fsync policy.

    Same mutation trace through the same service; the only variable is
    the durability configuration, so the delta *is* the WAL tax.
    ``never`` isolates the encode+write cost, ``batch`` adds one fsync
    per flushed batch (the recommended setting), ``always`` pays one per
    record.
    """
    graph = _graph()
    num_ops = 12 if QUICK else 120
    trace = generate_trace(graph, num_ops, seed=15, query_fraction=0.0)
    mutations = [UpdateOp.from_trace_op(op) for op in trace]
    fresh = itertools.count()

    def run():
        durability = None
        if wal != "off":
            durability = DurabilityManager(
                tmp_path / f"wal-{next(fresh)}",
                fsync=wal,
                checkpoint_every=0,  # isolate the log from snapshot cost
            )
        service = ReachabilityService(
            graph, cache_size=0, flush_threshold=8, durability=durability
        )
        for op in mutations:
            service.submit_update(op)
        service.flush()
        if durability is not None:
            durability.close()
        return service

    service = benchmark.pedantic(run, rounds=2, iterations=1)
    snap = service.snapshot()
    benchmark.extra_info["wal"] = wal
    benchmark.extra_info["updates"] = num_ops
    if wal != "off":
        benchmark.extra_info["wal_records"] = snap["wal"]["records_appended"]
        benchmark.extra_info["wal_fsyncs"] = snap["wal"]["fsyncs"]
        assert snap["wal"]["records_appended"] > 0
    assert snap["counters"]["updates_applied"] > 0


@pytest.mark.parametrize("transport", ["inproc", "socket"])
def test_network_protocol_overhead(benchmark, transport):
    """The wire tax: the same query stream in-process vs over loopback.

    ``inproc`` calls :meth:`ReachabilityService.query_batch` directly;
    ``socket`` sends the same batches through the framed protocol to a
    :class:`~repro.net.server.BackgroundServer` on 127.0.0.1.  The qps
    delta between the two rows is the protocol + serialization +
    event-loop overhead, recorded in ``extra_info`` so the BENCH report
    can quote it.
    """
    service = cached(
        ("service", DATASET, NUM_VERTICES),
        lambda: ReachabilityService(_graph(), cache_size=8192),
    )
    pairs = list(_queries().pairs)
    batch = 64
    batches = [
        pairs[lo:lo + batch] for lo in range(0, len(pairs), batch)
    ]
    if QUICK:
        batches = batches[: max(1, len(batches) // 4)]
    num_queries = sum(len(b) for b in batches)

    if transport == "inproc":
        def run():
            start = time.perf_counter()
            for chunk in batches:
                service.query_batch(chunk)
            return time.perf_counter() - start

        elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    else:
        with BackgroundServer(service) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                def run():
                    start = time.perf_counter()
                    for chunk in batches:
                        client.query_many(chunk)
                    return time.perf_counter() - start

                elapsed = benchmark.pedantic(run, rounds=3, iterations=1)

    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["queries"] = num_queries
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["qps"] = num_queries / elapsed if elapsed > 0 else 0.0
