# Convenience targets for the TOL reproduction.

PYTHON ?= python

.PHONY: install test faults bench bench-smoke bench-update profile ruff reproduce examples serve serve-demo loadgen serve-smoke metrics-demo health-demo recover-demo lint-docs clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Fault-injection suite: the crash matrix (every named crash point vs
# the BFS oracle), WAL/checkpoint units, quarantine and degraded mode.
# See docs/robustness.md.
faults:
	$(PYTHON) -m pytest tests/service/test_durability.py \
		tests/service/test_recovery.py tests/service/test_faults.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Smoke-test scale: every benchmark family builds and measures on tiny
# graphs (numbers are meaningless; the point is nothing is broken).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/ --quick -q

# Update-kernel headline at full scale: refreshes BENCH_update.json and
# gates the flat engine at >= 1.5x the object engine on churn throughput.
bench-update:
	$(PYTHON) -m pytest benchmarks/bench_update_kernels.py -q

# cProfile of butterfly_build on random_dag(5000, 20000), top 25 by
# cumulative time (see benchmarks/profile_build.py for --engine/--prune).
profile:
	$(PYTHON) benchmarks/profile_build.py

ruff:
	ruff check src tests benchmarks examples

# The two artifacts the reproduction protocol asks for.
outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

reproduce:
	$(PYTHON) examples/reproduce_paper.py --profile quick

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/social_network.py --users 300 --events 50
	$(PYTHON) examples/citation_analysis.py --papers 800
	$(PYTHON) examples/trace_replay.py --vertices 400 --ops 200

# Boot the asyncio network front end on a demo graph (see
# docs/network.md): length-prefixed JSON protocol on 127.0.0.1:7421.
serve:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro serve .demo/graph.txt --port 7421

# Drive a self-spawned server with 4 Zipfian client processes and write
# the repo-root BENCH_serve.json headline (qps, p50/p99 latency).
loadgen:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro loadgen .demo/graph.txt --spawn --clients 4 --verify

# CI gate: a quick verified load run plus an overload run that must
# shed (structured `overloaded` errors) while admitted answers stay
# correct against the BFS oracle.
serve-smoke:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro loadgen .demo/graph.txt --spawn --quick --verify
	$(PYTHON) -m repro loadgen .demo/graph.txt --spawn --quick --verify \
		--expect-shed --server-max-pending 24 --server-batch-delay 0.02 \
		--output BENCH_serve_overload.json

# Replay a mixed query/update trace through the concurrent serving layer
# (see docs/service.md) and print the metrics snapshot.
serve-demo:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro trace-generate .demo/graph.txt .demo/ops.trace \
		--ops 600 --query-fraction 0.6
	$(PYTHON) -m repro serve-replay .demo/graph.txt .demo/ops.trace \
		--readers 8 --rounds 2 --flush-threshold 8

# Replay a trace with full core-span tracing and print the Prometheus
# rendering of the unified metric registry (see docs/observability.md).
metrics-demo:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro trace-generate .demo/graph.txt .demo/ops.trace \
		--ops 600 --query-fraction 0.6
	$(PYTHON) -m repro metrics .demo/graph.txt .demo/ops.trace \
		--events .demo/ops.jsonl

# Build an index on a generated graph and print its health report:
# label-size distribution, order-quality score, cache/scratch state
# (see docs/observability.md; use `repro health --connect HOST:PORT`
# against a live `repro serve`).
health-demo:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro health .demo/graph.txt

# Replay a trace with the write-ahead log on, then recover the service
# from the durability directory alone and self-audit it against BFS
# (see docs/robustness.md).
recover-demo:
	mkdir -p .demo
	$(PYTHON) -m repro generate citeseerx .demo/graph.txt --vertices 400
	$(PYTHON) -m repro trace-generate .demo/graph.txt .demo/ops.trace \
		--ops 600 --query-fraction 0.6
	$(PYTHON) -m repro serve-replay .demo/graph.txt .demo/ops.trace \
		--readers 4 --flush-threshold 8 --wal .demo/state
	$(PYTHON) -m repro recover .demo/state --checkpoint

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results benchmarks/results-smoke .benchmarks .demo
	find . -name __pycache__ -type d -exec rm -rf {} +
