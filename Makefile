# Convenience targets for the TOL reproduction.

PYTHON ?= python

.PHONY: install test bench reproduce examples lint-docs clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The two artifacts the reproduction protocol asks for.
outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

reproduce:
	$(PYTHON) examples/reproduce_paper.py --profile quick

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/social_network.py --users 300 --events 50
	$(PYTHON) examples/citation_analysis.py --papers 800
	$(PYTHON) examples/trace_replay.py --vertices 400 --ops 200

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
