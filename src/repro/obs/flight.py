"""Flight recorder: a ring buffer of metric snapshots for post-mortems.

A Prometheus scrape tells you the system *is* degraded; it rarely tells
you what the ten seconds before looked like, and after a crash there is
no scrape at all.  The flight recorder keeps that history in-process: a
background thread snapshots the shared
:class:`~repro.obs.registry.MetricRegistry` every ``interval`` seconds
into a bounded ring (``collections.deque(maxlen=...)`` — appends are
atomic under the GIL, so writers never block readers and readers never
block writers), and :meth:`FlightRecorder.dump` serializes the whole
ring as a JSONL timeline.

The serving layer wires dumps to the moments that need a post-mortem:
degraded-mode entry, update quarantine, recovery, and SIGQUIT (the
operator's "tell me what you were doing" signal — see ``repro serve
--flight-dir``).  Markers (:meth:`note`) interleave those trigger events
with the periodic snapshots so the timeline reads causally: *snapshots …
marker: quarantine … snapshots*.

Dump format: the first line is a header
``{"kind": "dump", "reason": ..., "ts": ...}``; each following line is
one ring entry, oldest first — either
``{"kind": "snapshot", "ts": ..., "metrics": {...}}`` or
``{"kind": "marker", "ts": ..., "event": ..., "attrs": {...}}``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Optional, Union

from .registry import MetricRegistry

__all__ = ["FlightRecorder"]

PathLike = Union[str, Path]


class FlightRecorder:
    """Periodic registry snapshots in a bounded, lock-free ring.

    Parameters
    ----------
    registry:
        The :class:`MetricRegistry` to snapshot (normally the service's
        shared one, so snapshots carry service, cache, net and WAL
        metrics together).
    capacity:
        Ring size: how many snapshots/markers the timeline retains.
    interval:
        Seconds between periodic snapshots once :meth:`start` is called.
    dump_dir:
        Where :meth:`auto_dump` writes timelines (``flight-<reason>-<n>
        .jsonl``).  ``None`` means auto-dump only records a marker.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        *,
        capacity: int = 256,
        interval: float = 1.0,
        dump_dir: Optional[PathLike] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.registry = registry
        self.capacity = capacity
        self.interval = interval
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._ring: deque = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._dump_lock = threading.Lock()
        self._dump_count = 0
        self.ticks = 0
        self.dumps = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def tick(self) -> dict:
        """Take one registry snapshot now and append it to the ring."""
        entry = {
            "kind": "snapshot",
            "ts": time.time(),
            "metrics": self.registry.snapshot(),
        }
        self._ring.append(entry)
        self.ticks += 1
        return entry

    def note(self, event: str, /, **attrs) -> None:
        """Append a marker entry (a named trigger point) to the ring."""
        self._ring.append(
            {"kind": "marker", "ts": time.time(), "event": event,
             "attrs": attrs}
        )

    def snapshots(self) -> list[dict]:
        """A stable copy of the ring, oldest entry first."""
        return list(self._ring)

    # ------------------------------------------------------------------
    # The background sampler
    # ------------------------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Launch the periodic sampler thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="flight-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread (the ring stays readable)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - telemetry must not crash serving
                self.note("flight.tick_error")

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def dump(self, path: PathLike, reason: str) -> Path:
        """Write the current timeline (plus one fresh snapshot) to *path*."""
        self.tick()  # the dump moment itself belongs in the timeline
        entries = self.snapshots()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._dump_lock:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(
                        {"kind": "dump", "reason": reason, "ts": time.time(),
                         "entries": len(entries)},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                for entry in entries:
                    fh.write(
                        json.dumps(entry, default=str, separators=(",", ":"))
                        + "\n"
                    )
            self.dumps += 1
        return path

    def auto_dump(self, reason: str, /, **attrs) -> Optional[Path]:
        """Marker + dump into :attr:`dump_dir` (marker only when unset).

        *reason* is positional-only so callers can attach a ``reason=``
        attribute to the marker (e.g. why degraded mode tripped) without
        colliding with the dump's own reason.

        This is the hook the service calls on degraded-mode entry,
        quarantine and recovery, and the SIGQUIT handler calls from the
        CLI.  Never raises: a failing post-mortem dump must not take
        down the serving path it is documenting.
        """
        self.note(reason, **attrs)
        if self.dump_dir is None:
            return None
        with self._dump_lock:
            self._dump_count += 1
            count = self._dump_count
        safe = reason.replace("/", "_").replace(".", "-")
        target = self.dump_dir / f"flight-{safe}-{count:04d}.jsonl"
        try:
            return self.dump(target, reason)
        except OSError:
            return None

    def stats(self) -> dict:
        """Counters for snapshots/health: ring depth, ticks, dumps."""
        return {
            "depth": len(self._ring),
            "capacity": self.capacity,
            "interval_s": self.interval,
            "ticks": self.ticks,
            "dumps": self.dumps,
            "running": self._thread is not None and self._thread.is_alive(),
        }

    def __enter__(self) -> "FlightRecorder":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"interval={self.interval}, depth={len(self._ring)})"
        )
