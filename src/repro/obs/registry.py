"""The unified metric registry: counters, gauges, histograms, stats.

Every telemetry number in the system — the serving layer's query-latency
percentiles, the core's per-operation span durations, the cache's
hit-rate — lives in (or is readable through) one
:class:`MetricRegistry`, so a single :meth:`MetricRegistry.snapshot`
covers the whole stack and a single exporter call
(:func:`repro.obs.export.render_prometheus`) serializes it.

Four instrument kinds, each thread-safe on its own internal mutex:

* :class:`Counter` — a monotonically increasing integer (``incr``);
* :class:`Gauge` — a last-write-wins number (``set``);
* :class:`LatencyHistogram` — geometric-bucket duration recorder with
  one-bucket-accurate percentiles (moved here from
  ``repro.service.metrics``, which now re-exports it);
* :class:`RunningStats` — count/mean/min/max of an arbitrary numeric
  stream (ditto).

Instruments are created on first use (``registry.counter(name)`` is
get-or-create) and a name is permanently bound to its kind — asking for
the same name as a different kind raises, which is what turns the old
"flat dict merge" key-collision hazard into a loud error.  For values
owned by another component (e.g. the cache's hit counters), register a
zero-argument callable with :meth:`MetricRegistry.register_callback`;
it is invoked at snapshot/export time and rendered as a gauge.

Metric names are dotted lowercase paths (``service.query_latency``,
``span.tol.insert``); the Prometheus exporter maps dots to underscores.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable
from typing import Optional

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "RunningStats",
    "MetricRegistry",
]

#: Geometric bucket upper bounds for latencies, in seconds: 1 µs up to
#: ~67 s doubling each step; anything slower lands in a final overflow
#: bucket.  26 buckets cover every rate this pure-Python index can hit.
BUCKET_BOUNDS = tuple(1e-6 * 2**i for i in range(26))

# Backwards-compatible alias (pre-obs code imported the private name).
_BOUNDS = BUCKET_BOUNDS


class Counter:
    """A thread-safe monotonically increasing integer."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def incr(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value})"


class Gauge:
    """A thread-safe last-write-wins number."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by *delta* (gauges may go down)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value})"


class LatencyHistogram:
    """A fixed-bucket geometric histogram of durations in seconds.

    Thread-safe; all mutation happens under an internal mutex.  Quantiles
    are upper bounds of the containing bucket, i.e. conservative to within
    one power of two.
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        idx = bisect_left(BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> Optional[float]:
        """Mean of the observations, or ``None`` if there are none."""
        with self._lock:
            return self._sum / self._count if self._count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimated *q*-quantile (0 < q <= 1), or ``None`` when empty.

        Returns the upper bound of the bucket containing the quantile
        rank; observations beyond the last bound report the maximum seen.
        """
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> Optional[float]:
        if not self._count:
            return None
        rank = q * self._count
        seen = 0
        for idx, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= rank:
                if idx < len(BUCKET_BOUNDS):
                    return min(BUCKET_BOUNDS[idx], self._max)
                return self._max
        return self._max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> dict:
        """``{count, mean, p50, p95, p99, max}`` with seconds as values.

        The whole snapshot is produced under *one* lock acquisition, so
        the fields are mutually consistent even while other threads keep
        recording (the old per-field reads could tear: a ``count`` from
        before a burst paired with a ``p99`` from after it).
        """
        with self._lock:
            count = self._count
            return {
                "count": count,
                "mean": self._sum / count if count else None,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "max": self._max if count else None,
            }

    def cumulative_buckets(self) -> tuple[list[tuple[float, int]], int, float]:
        """``([(upper_bound, cumulative_count), ...], count, sum)``.

        Prometheus histogram exposition needs cumulative bucket counts;
        the final entry is the ``+Inf`` overflow bucket (bound
        ``float("inf")``).  Taken under one lock acquisition.
        """
        with self._lock:
            buckets: list[tuple[float, int]] = []
            cumulative = 0
            for bound, n in zip(BUCKET_BOUNDS, self._counts):
                cumulative += n
                buckets.append((bound, cumulative))
            cumulative += self._counts[-1]
            buckets.append((float("inf"), cumulative))
            return buckets, self._count, self._sum

    def __repr__(self) -> str:
        return f"{type(self).__name__}(count={self.count}, mean={self.mean})"


class RunningStats:
    """Count / mean / min / max of a stream of numbers (thread-safe)."""

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def record(self, value: float) -> None:
        """Add one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def snapshot(self) -> dict:
        """``{count, mean, min, max}``; mean is ``None`` when empty."""
        with self._lock:
            return {
                "count": self._count,
                "mean": self._sum / self._count if self._count else None,
                "min": self._min,
                "max": self._max,
            }

    def __repr__(self) -> str:
        s = self.snapshot()
        return f"{type(self).__name__}(count={s['count']}, mean={s['mean']})"


class MetricRegistry:
    """A thread-safe, get-or-create store of named instruments.

    One registry per "deployment unit": :class:`ReachabilityService`
    creates (or adopts) one and the trace layer can be pointed at the
    same instance, so serving metrics and core-algorithm telemetry land
    in a single exportable snapshot.

    Examples
    --------
    >>> reg = MetricRegistry()
    >>> reg.counter("service.queries").incr(3)
    >>> reg.counter("service.queries").value
    3
    >>> reg.histogram("service.query_latency").record(2e-6)
    >>> sorted(reg.snapshot())
    ['counters', 'gauges', 'histograms', 'stats']
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._stats: dict[str, RunningStats] = {}
        self._callbacks: dict[str, Callable[[], object]] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------

    def _get_or_create(self, table: dict, name: str, factory):
        with self._lock:
            instrument = table.get(name)
            if instrument is None:
                self._check_unbound(name, table)
                instrument = table[name] = factory()
            return instrument

    def _check_unbound(self, name: str, target: dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
            ("stats", self._stats),
            ("callback", self._callbacks),
        ):
            if table is not target and name in table:
                raise ValueError(
                    f"metric name {name!r} is already bound to a {kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created at zero on first use."""
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created at zero on first use."""
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str) -> LatencyHistogram:
        """The latency histogram named *name*, created empty on first use."""
        return self._get_or_create(self._histograms, name, LatencyHistogram)

    def stats(self, name: str) -> RunningStats:
        """The running-stats recorder named *name*."""
        return self._get_or_create(self._stats, name, RunningStats)

    def register_callback(self, name: str, fn: Callable[[], object]) -> None:
        """Publish a value owned elsewhere (rendered as a gauge).

        *fn* is called with no arguments at snapshot/export time; a
        ``None`` return means "no value yet" and is skipped by the
        Prometheus exporter.  Re-registering a name replaces the
        callback (components may be rebuilt), but a name bound to a
        real instrument cannot be shadowed.
        """
        with self._lock:
            self._check_unbound(name, self._callbacks)
            self._callbacks[name] = fn

    # ------------------------------------------------------------------
    # Convenience mutators
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """``counter(name).incr(amount)``."""
        self.counter(name).incr(amount)

    def observe(self, name: str, value: float) -> None:
        """``stats(name).record(value)``."""
        self.stats(name).record(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def histograms(self) -> dict[str, LatencyHistogram]:
        """A shallow copy of the name -> histogram table.

        The Prometheus exporter uses this to reach the raw cumulative
        buckets, which :meth:`snapshot` deliberately summarizes away.
        """
        with self._lock:
            return dict(self._histograms)

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        with self._lock:
            return sorted(
                [
                    *self._counters,
                    *self._gauges,
                    *self._histograms,
                    *self._stats,
                    *self._callbacks,
                ]
            )

    def snapshot(self) -> dict:
        """Everything, as one nested plain dict.

        Shape: ``{"counters": {name: int}, "gauges": {name: number},
        "histograms": {name: hist.snapshot()}, "stats":
        {name: stats.snapshot()}}``.  Callback values appear under
        ``gauges``.  Instrument snapshots are each internally
        consistent (one lock hold per instrument); the registry-level
        composition is not a global atomic cut — no reader needs one.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            stats = dict(self._stats)
            callbacks = dict(self._callbacks)
        gauge_values: dict[str, object] = {
            name: g.value for name, g in gauges.items()
        }
        for name, fn in callbacks.items():
            gauge_values[name] = fn()
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": gauge_values,
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
            "stats": {name: s.snapshot() for name, s in stats.items()},
        }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"{type(self).__name__}("
                f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, stats={len(self._stats)}, "
                f"callbacks={len(self._callbacks)})"
            )
