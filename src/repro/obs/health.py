"""Live index-health introspection for the serving stack.

TOL's operational promise is *bounded label sizes under a good total
order* (PAPER.md §4–6) — so index health is not one number but a shape:
the per-side label-size distribution, where in the total order the
label mass concentrates, how much scratch the update kernels have
claimed, and how far the WAL has run ahead of the last checkpoint.
:func:`collect_health` assembles all of it from a live
:class:`~repro.service.server.ReachabilityService` into one JSON-safe
dict, served three ways:

* the ``health`` wire op (``ReachabilityClient.health()``);
* the ``repro health`` CLI (local index file or ``--connect`` to a
  running server);
* Prometheus gauges via :func:`bind_health_gauges` (TTL-cached so a
  scrape never pays the full distribution walk twice a second).

Payload shape (``None``-valued sections mean "not configured")::

    {"epoch": ..., "degraded": ..., "quarantine_depth": ...,
     "queue_depth": ...,
     "index": {"num_vertices": ..., "num_edges": ..., "total_labels": ...,
               "labels": {"in":  {"mean":, "p50":, "p95":, "max":},
                          "out": {"mean":, "p50":, "p95":, "max":}},
               "order": {"decile_coverage": [f, ...x10], "quality": f},
               "scratch": {"capacity":, "generation":} | None},
     "wal": {"lag_ops":, "lag_bytes":, "last_seq":, "checkpointed_seq":,
             "checkpoint_age_s": f | None, "checkpoints":} | None,
     "snapshot": {"generation":, "epoch":, "bytes":, "age_s":,
                  "publishes":, "segments_unlinked":, "worker_restarts":,
                  "workers": [{"worker":, "pid":, "generation":,
                               "epoch":, "requests":, "forwarded":,
                               "snapshot_age_s":, "alive":}, ...]} | None,
     "cache": {...}}

``order.decile_coverage[d]`` is the fraction of all label entries that
reference a vertex ranked in the *d*-th decile of the total order
(decile 0 = highest-ranked).  A healthy TOL order front-loads coverage:
most entries point at top-ranked hubs.  ``order.quality`` compresses
that into one score, ``1 - mean(normalized rank of referenced
vertices)`` — near 1.0 when labels concentrate at the top of the order,
near 0.5 when references are spread uniformly (an order no better than
random), and 0.0 for an empty labeling.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from .registry import MetricRegistry

__all__ = [
    "collect_health",
    "labeling_health",
    "bind_health_gauges",
    "render_health",
]


def _side_distribution(buffers, live_ids) -> dict:
    """mean/p50/p95/max of one side's per-vertex label counts."""
    counts = sorted(len(buffers[i]) for i in live_ids)
    n = len(counts)
    if not n:
        return {"mean": 0.0, "p50": 0, "p95": 0, "max": 0, "total": 0}
    total = sum(counts)
    return {
        "mean": total / n,
        "p50": counts[min(n - 1, int(round(0.50 * (n - 1))))],
        "p95": counts[min(n - 1, int(round(0.95 * (n - 1))))],
        "max": counts[-1],
        "total": total,
    }


def labeling_health(labeling) -> dict:
    """The index section of the health payload for one live labeling.

    O(|V| + |L|): one pass over the order to rank it, one pass over
    the label buffers to bucket their references by rank decile.
    """
    live_ids = list(labeling.interner.ids.values())
    in_dist = _side_distribution(labeling.in_ids, live_ids)
    out_dist = _side_distribution(labeling.out_ids, live_ids)

    # Rank every live id by its position in the total order (0 = top).
    position_of: dict[int, int] = {}
    for position, vertex in enumerate(labeling.order):
        i = labeling.interner.ids.get(vertex)
        if i is not None:
            position_of[i] = position
    n = len(position_of)

    decile_counts = [0] * 10
    rank_sum = 0.0
    entries = 0
    if n:
        for i in live_ids:
            for buf in (labeling.in_ids[i], labeling.out_ids[i]):
                for ref in buf:
                    pos = position_of.get(ref)
                    if pos is None:
                        continue
                    decile_counts[min(9, pos * 10 // n)] += 1
                    rank_sum += pos / max(1, n - 1)
                    entries += 1
    coverage = (
        [c / entries for c in decile_counts] if entries else [0.0] * 10
    )
    quality = (1.0 - rank_sum / entries) if entries else 0.0

    return {
        "total_labels": in_dist["total"] + out_dist["total"],
        "labels": {
            "in": {k: v for k, v in in_dist.items() if k != "total"},
            "out": {k: v for k, v in out_dist.items() if k != "total"},
        },
        "order": {
            "decile_coverage": [round(c, 6) for c in coverage],
            "quality": round(quality, 6),
        },
        "scratch": labeling.scratch_stats(),
    }


def collect_health(service) -> dict:
    """Assemble the full health payload from a live service.

    Takes the read lock briefly (with a short timeout so a stuck writer
    degrades the payload to mirror-derived numbers instead of hanging
    the health probe), the WAL stats lock, and nothing else.
    """
    out = {
        "ts": time.time(),
        "epoch": service.epoch,
        "degraded": service.degraded,
        "quarantine_depth": len(service.quarantined),
        "queue_depth": service.queue_depth,
        "cache": service.cache.stats(),
    }

    index = {"num_vertices": None, "num_edges": None}
    # The label walk needs a consistent labeling; try-lock so health
    # probes survive a wedged writer (they are how you notice one).
    if service._rwlock.acquire_read(timeout=1.0):
        try:
            idx = service._index
            index["num_vertices"] = idx.num_vertices
            index["num_edges"] = idx.num_edges
            index.update(labeling_health(idx.tol.labeling))
        finally:
            service._rwlock.release_read()
    else:
        index["stale"] = True
    out["index"] = index

    durability = service.durability
    if durability is None:
        out["wal"] = None
    else:
        wal_stats = durability.stats()
        lag_ops = wal_stats["last_seq"] - wal_stats["checkpointed_seq"]
        try:
            lag_bytes = durability.wal.path.stat().st_size
        except OSError:
            lag_bytes = 0
        checkpoint_age = None
        paths = durability.checkpoints.paths()
        if paths:
            try:
                checkpoint_age = time.time() - paths[-1].stat().st_mtime
            except OSError:
                pass
        out["wal"] = {
            "lag_ops": lag_ops,
            "lag_bytes": lag_bytes,
            "last_seq": wal_stats["last_seq"],
            "checkpointed_seq": wal_stats["checkpointed_seq"],
            "checkpoint_age_s": checkpoint_age,
            "checkpoints": wal_stats["checkpoints"],
        }

    # Multi-process serving: the snapshot plane (shared-memory segment
    # generation/size/age and the per-worker attach state).
    publisher = getattr(service, "shm_publisher", None)
    if publisher is None:
        out["snapshot"] = None
    else:
        # Respawn counters live in the control block (the supervisor
        # increments them; the writer — a different process since the
        # failover rework — merely reads), so health_section() already
        # carries worker_restarts / writer_restarts.
        out["snapshot"] = publisher.health_section()
    return out


def bind_health_gauges(
    registry: MetricRegistry, service, *, ttl: float = 5.0
) -> None:
    """Register ``health.*`` gauge callbacks over a TTL-cached collect.

    One :func:`collect_health` walk feeds every gauge for *ttl* seconds,
    so a Prometheus scrape reads the distribution once, not once per
    metric.
    """
    lock = threading.Lock()
    cache: dict = {"at": 0.0, "payload": None}

    def cached() -> dict:
        now = time.monotonic()
        with lock:
            if cache["payload"] is None or now - cache["at"] > ttl:
                cache["payload"] = collect_health(service)
                cache["at"] = now
            return cache["payload"]

    def gauge(path):
        def read():
            node = cached()
            for part in path:
                if node is None:
                    return None
                node = node.get(part)
            return node
        return read

    for name, path in {
        "health.labels.in_mean": ("index", "labels", "in", "mean"),
        "health.labels.in_p95": ("index", "labels", "in", "p95"),
        "health.labels.in_max": ("index", "labels", "in", "max"),
        "health.labels.out_mean": ("index", "labels", "out", "mean"),
        "health.labels.out_p95": ("index", "labels", "out", "p95"),
        "health.labels.out_max": ("index", "labels", "out", "max"),
        "health.order.quality": ("index", "order", "quality"),
        "health.scratch.capacity": ("index", "scratch", "capacity"),
        "health.wal.lag_ops": ("wal", "lag_ops"),
        "health.wal.lag_bytes": ("wal", "lag_bytes"),
        "health.wal.checkpoint_age_s": ("wal", "checkpoint_age_s"),
    }.items():
        registry.register_callback(name, gauge(path))


def render_health(payload: dict) -> str:
    """Human-readable rendering for the ``repro health`` CLI."""
    lines = [
        f"epoch {payload['epoch']}  "
        f"degraded {payload['degraded']}  "
        f"quarantine {payload['quarantine_depth']}  "
        f"queue {payload['queue_depth']}"
    ]
    index = payload.get("index") or {}
    if index.get("stale"):
        lines.append("index: STALE (read lock busy; numbers omitted)")
    elif "labels" in index:
        lin, lout = index["labels"]["in"], index["labels"]["out"]
        lines.append(
            f"index: |V|={index['num_vertices']} |E|={index['num_edges']} "
            f"|L|={index['total_labels']}"
        )
        lines.append(
            f"  Lin  mean={lin['mean']:.2f} p50={lin['p50']} "
            f"p95={lin['p95']} max={lin['max']}"
        )
        lines.append(
            f"  Lout mean={lout['mean']:.2f} p50={lout['p50']} "
            f"p95={lout['p95']} max={lout['max']}"
        )
        order = index["order"]
        top3 = sum(order["decile_coverage"][:3])
        lines.append(
            f"  order quality {order['quality']:.3f} "
            f"(top-3-decile coverage {top3:.1%})"
        )
        scratch = index.get("scratch")
        if scratch is not None:
            lines.append(
                f"  scratch capacity {scratch['capacity']} "
                f"(generation {scratch['generation']})"
            )
    wal = payload.get("wal")
    if wal is not None:
        age = wal["checkpoint_age_s"]
        age_text = f"{age:.1f}s" if age is not None else "never"
        lines.append(
            f"wal: lag {wal['lag_ops']} ops / {wal['lag_bytes']} bytes "
            f"(seq {wal['last_seq']}, checkpointed {wal['checkpointed_seq']}); "
            f"checkpoint age {age_text} ({wal['checkpoints']} kept)"
        )
    snapshot = payload.get("snapshot")
    if snapshot is not None:
        age = snapshot.get("age_s")
        age_text = f"{age:.1f}s" if age is not None else "never"
        lines.append(
            f"snapshot: generation {snapshot['generation']} "
            f"epoch {snapshot['epoch']} ({snapshot['bytes']:,} bytes, "
            f"age {age_text}); {snapshot['publishes']} publishes, "
            f"{snapshot['segments_unlinked']} unlinked "
            f"(grace {snapshot['grace_period_s']}s), "
            f"{snapshot.get('worker_restarts', 0)} worker restarts"
        )
        for w in snapshot.get("workers", ()):
            w_age = w.get("snapshot_age_s")
            w_age_text = f"{w_age:.1f}s" if w_age is not None else "-"
            alive = "up" if w.get("alive") else "DOWN"
            lines.append(
                f"  worker {w['worker']} [{alive}] pid={w['pid']} "
                f"generation={w['generation']} epoch={w['epoch']} "
                f"requests={w['requests']} forwarded={w['forwarded']} "
                f"snapshot_age={w_age_text}"
            )
    cache = payload.get("cache") or {}
    if cache:
        lines.append(
            "cache: "
            + "  ".join(f"{k}={v}" for k, v in sorted(cache.items()))
        )
    return "\n".join(lines)
