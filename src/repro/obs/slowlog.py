"""Slow-query log: threshold- and sample-gated structured JSONL sink.

Aggregate histograms answer "how slow is the p99?" but not "why was
*this* query slow?".  The slow-query log keeps the individual evidence:
every request whose total latency crosses ``threshold_ms`` is written as
one JSON line carrying its trace id, pair count, first pair, epoch,
outcome and the per-stage timing breakdown the network front end
measured (admission wait, batch coalesce, lock wait, cache/index probe).
Requests *below* the threshold are probabilistically sampled at
``sample_rate`` so the log also holds a baseline of normal traffic to
compare the outliers against.

The record schema (one JSON object per line)::

    {"ts": 1754489000.1, "trace": "9f2a...", "dur_ms": 83.2,
     "slow": true, "outcome": "ok", "pairs": 16,
     "pair": ["a", "b"], "epoch": 412, "degraded": false,
     "stages": {"admission_ms": 0.1, "coalesce_ms": 41.0,
                "lock_ms": 38.5, "probe_ms": 3.2, ...}}

``outcome`` is ``"ok"``, ``"shed"`` (admission control refused the
request — shed replies are always logged when a threshold is set to 0,
otherwise they obey the same gate) or ``"error"``.

Writers call :meth:`SlowQueryLog.record`; readers use
:func:`read_slowlog` / :func:`aggregate_slowlog` or the ``repro
slowlog`` CLI, which tails and aggregates the file.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from random import Random
from typing import Optional, Union

__all__ = ["SlowQueryLog", "read_slowlog", "aggregate_slowlog"]

PathLike = Union[str, Path]


class SlowQueryLog:
    """Append-only JSONL sink gated by a latency threshold and a sampler.

    Parameters
    ----------
    path:
        The JSONL file (created if missing, appended to otherwise, so a
        server restart continues the same log).
    threshold_ms:
        Requests at or above this total latency are always written.
    sample_rate:
        Probability in ``[0, 1]`` that a request *below* the threshold
        is written anyway (the normal-traffic baseline).  0 disables
        sampling.
    seed:
        Seed for the sampling RNG (deterministic tests).

    Thread-safe: one lock guards the file handle and the sampler.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        threshold_ms: float = 50.0,
        sample_rate: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.path = Path(path)
        self.threshold_ms = threshold_ms
        self.sample_rate = sample_rate
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self.seen = 0
        self.written = 0
        self.sampled = 0

    def record(
        self,
        *,
        trace: Optional[str],
        dur_ms: float,
        stages: Optional[dict] = None,
        pairs: int = 0,
        pair=None,
        epoch: Optional[int] = None,
        outcome: str = "ok",
        degraded: bool = False,
    ) -> bool:
        """Offer one finished request; return whether it was written.

        Above-threshold requests always land (``"slow": true``); the
        rest are sampled at :attr:`sample_rate` (``"slow": false``).
        """
        with self._lock:
            self.seen += 1
            slow = dur_ms >= self.threshold_ms
            if not slow:
                if not self.sample_rate or self._rng.random() >= self.sample_rate:
                    return False
                self.sampled += 1
            entry = {
                "ts": time.time(),
                "trace": trace,
                "dur_ms": round(dur_ms, 4),
                "slow": slow,
                "outcome": outcome,
                "pairs": pairs,
                "pair": list(pair) if isinstance(pair, tuple) else pair,
                "epoch": epoch,
                "degraded": degraded,
            }
            if stages:
                entry["stages"] = {
                    k: (round(v, 4) if isinstance(v, float) else v)
                    for k, v in stages.items()
                }
            if self._file.closed:
                return False
            self._file.write(
                json.dumps(entry, default=str, separators=(",", ":")) + "\n"
            )
            self._file.flush()
            self.written += 1
            return True

    def stats(self) -> dict:
        """Counters: requests offered, written, sampled-in below threshold."""
        with self._lock:
            return {
                "seen": self.seen,
                "written": self.written,
                "sampled": self.sampled,
                "threshold_ms": self.threshold_ms,
                "sample_rate": self.sample_rate,
            }

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "SlowQueryLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({str(self.path)!r}, "
            f"threshold_ms={self.threshold_ms}, written={self.written})"
        )


def read_slowlog(path: PathLike, *, tail: Optional[int] = None) -> list[dict]:
    """Parse a slow-query log; optionally only the last *tail* records.

    Malformed lines (a crash mid-write) are skipped, not raised.
    """
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    if tail is not None and tail >= 0:
        records = records[-tail:] if tail else []
    return records


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[position]


def aggregate_slowlog(records: list[dict]) -> dict:
    """Summarize slow-log records for the ``repro slowlog --aggregate`` view.

    Returns counts by outcome, the latency distribution, mean per-stage
    milliseconds over records that carried a breakdown, and the slowest
    few trace ids (for follow-up grepping).
    """
    durations = sorted(
        r["dur_ms"] for r in records if isinstance(r.get("dur_ms"), (int, float))
    )
    by_outcome: dict[str, int] = {}
    stage_totals: dict[str, float] = {}
    stage_counts: dict[str, int] = {}
    for r in records:
        by_outcome[r.get("outcome", "ok")] = (
            by_outcome.get(r.get("outcome", "ok"), 0) + 1
        )
        for name, value in (r.get("stages") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                stage_totals[name] = stage_totals.get(name, 0.0) + value
                stage_counts[name] = stage_counts.get(name, 0) + 1
    slowest = sorted(
        (
            r
            for r in records
            if isinstance(r.get("dur_ms"), (int, float))
        ),
        key=lambda r: -r["dur_ms"],
    )[:5]
    return {
        "count": len(records),
        "slow": sum(1 for r in records if r.get("slow")),
        "by_outcome": by_outcome,
        "dur_ms": {
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "p99": _percentile(durations, 0.99),
            "max": durations[-1] if durations else 0.0,
            "mean": sum(durations) / len(durations) if durations else 0.0,
        },
        "stage_means_ms": {
            name: stage_totals[name] / stage_counts[name]
            for name in sorted(stage_totals)
        },
        "slowest_traces": [
            {"trace": r.get("trace"), "dur_ms": r["dur_ms"],
             "outcome": r.get("outcome", "ok")}
            for r in slowest
        ],
    }
