"""Observability: unified metric registry, span tracing, exporters.

The paper's claims are cost claims — how many candidate levels an
insertion sweeps (Algorithm 3), how large a deletion's repair frontier
is (Algorithm 4), how fast a reduction round converges (Section 6).
This subpackage makes those costs observable end to end:

* :mod:`repro.obs.registry` — :class:`MetricRegistry`, one thread-safe
  home for counters, gauges, :class:`LatencyHistogram` and
  :class:`RunningStats` (both moved here from ``repro.service.metrics``,
  which re-exports them);
* :mod:`repro.obs.trace` — nestable spans and point events with a
  near-zero-cost disabled path and an optional :class:`JsonlSink`;
  the core algorithms are instrumented with it;
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  renderers over any registry (`repro metrics`, ``--metrics-out``);
* :mod:`repro.obs.slowlog` — the threshold/sample-gated slow-query log
  the network front end writes per-request timing breakdowns into;
* :mod:`repro.obs.flight` — the flight recorder, a bounded ring of
  periodic registry snapshots dumped on degraded-mode entry,
  quarantine, recovery, and SIGQUIT;
* :mod:`repro.obs.health` — live index-health introspection
  (label-size distribution, order quality, scratch high-water marks,
  WAL lag, checkpoint age) behind the ``health`` wire op and CLI.

Metric names, the span taxonomy and the JSONL schema are documented in
``docs/observability.md``.
"""

from . import trace
from .export import (
    render_json,
    render_prometheus,
    render_prometheus_snapshot,
    write_metrics,
)
from .flight import FlightRecorder
from .health import bind_health_gauges, collect_health, render_health
from .registry import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricRegistry,
    RunningStats,
)
from .slowlog import SlowQueryLog, aggregate_slowlog, read_slowlog
from .trace import JsonlSink, new_trace_id

__all__ = [
    "trace",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "RunningStats",
    "BUCKET_BOUNDS",
    "JsonlSink",
    "new_trace_id",
    "SlowQueryLog",
    "read_slowlog",
    "aggregate_slowlog",
    "FlightRecorder",
    "collect_health",
    "bind_health_gauges",
    "render_health",
    "render_prometheus",
    "render_prometheus_snapshot",
    "render_json",
    "write_metrics",
]
