"""Observability: unified metric registry, span tracing, exporters.

The paper's claims are cost claims — how many candidate levels an
insertion sweeps (Algorithm 3), how large a deletion's repair frontier
is (Algorithm 4), how fast a reduction round converges (Section 6).
This subpackage makes those costs observable end to end:

* :mod:`repro.obs.registry` — :class:`MetricRegistry`, one thread-safe
  home for counters, gauges, :class:`LatencyHistogram` and
  :class:`RunningStats` (both moved here from ``repro.service.metrics``,
  which re-exports them);
* :mod:`repro.obs.trace` — nestable spans and point events with a
  near-zero-cost disabled path and an optional :class:`JsonlSink`;
  the core algorithms are instrumented with it;
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  renderers over any registry (`repro metrics`, ``--metrics-out``).

Metric names, the span taxonomy and the JSONL schema are documented in
``docs/observability.md``.
"""

from . import trace
from .export import render_json, render_prometheus, write_metrics
from .registry import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricRegistry,
    RunningStats,
)
from .trace import JsonlSink

__all__ = [
    "trace",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "RunningStats",
    "BUCKET_BOUNDS",
    "JsonlSink",
    "render_prometheus",
    "render_json",
    "write_metrics",
]
