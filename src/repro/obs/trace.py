"""Nestable span tracing with a near-zero-cost disabled path.

The core algorithms are instrumented with *spans* — named, timed,
attribute-carrying regions::

    from repro.obs import trace

    with trace.span("tol.insert", vertex="v17") as sp:
        ...
        sp.set("labels_added", added)

and *events* — timestamped point records for per-iteration telemetry
(one per Butterfly peeling level, one per reduction round)::

    trace.event("tol.build.level", k=k, v_k=len(residual), e_k=edges)

Tracing is **off by default** and the off path is designed to be
invisible in profiles: :func:`span` checks one attribute and returns a
shared no-op context manager; :func:`event` checks the same attribute
and returns.  The no-op span is *falsy* (``bool(sp) is False``), so
call sites can guard genuinely expensive attribute computation::

    with trace.span("tol.delete") as sp:
        if sp:  # only pay for labeling.size() when someone is watching
            before = labeling.size()

``benchmarks/bench_obs_overhead.py`` enforces the budget: with tracing
disabled, ``butterfly_build`` must stay within 3% of an uninstrumented
baseline.

When enabled (:func:`enable` / :func:`capture`), every finished span
lands in up to two places:

* a :class:`~repro.obs.registry.MetricRegistry` — duration into the
  histogram ``span.<name>``, each numeric attribute into the running
  stats ``span.<name>.<attr>`` (events use ``event.<name>`` counters and
  ``event.<name>.<attr>`` stats);
* a sink — any object with a ``write(dict)`` method, normally a
  :class:`JsonlSink`, receiving one structured record per span/event
  (see the JSONL schema in ``docs/observability.md``).

Spans nest: a per-thread stack tracks the active span, and each record
carries its parent's name (``"parent": null`` at top level).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Optional, Union

from .registry import MetricRegistry

__all__ = [
    "span",
    "event",
    "active",
    "enable",
    "disable",
    "capture",
    "current_registry",
    "current_sink",
    "new_trace_id",
    "Span",
    "JsonlSink",
]


def new_trace_id() -> str:
    """Mint a compact request-scoped trace id (16 hex chars).

    Trace ids are minted once per request — by
    :class:`~repro.net.client.ReachabilityClient` normally, or at
    admission by the server for untraced peers — and carried through the
    wire envelope, the batching consumer, the slow-query log, the WAL
    and the quarantine records, so one grep correlates a client-visible
    reply with every server-side artifact it produced.  64 random bits:
    collision-free in practice, cheap to log, JSON-safe.
    """
    return os.urandom(8).hex()


class _State:
    """Module-level trace configuration (one attribute read on hot paths)."""

    __slots__ = ("enabled", "registry", "sink")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: Optional[MetricRegistry] = None
        self.sink = None


_state = _State()
_stack = threading.local()  # .spans: list[str] — active span names


def _current_stack() -> list:
    spans = getattr(_stack, "spans", None)
    if spans is None:
        spans = _stack.spans = []
    return spans


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set(self, key: str, value) -> None:
        """Discard the attribute (tracing is off)."""

    def incr(self, key: str, amount: int = 1) -> None:
        """Discard the increment (tracing is off)."""


_NOOP = _NoopSpan()


class Span:
    """One live traced region; created by :func:`span`, never directly.

    Truthy (unlike the no-op span), so ``if sp:`` gates work that only
    matters when tracing is on.  Attributes set via :meth:`set` /
    :meth:`incr` are flushed on ``__exit__`` to the registry and sink
    captured at creation time.
    """

    __slots__ = ("name", "attrs", "_registry", "_sink", "_start", "_parent")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._registry = _state.registry
        self._sink = _state.sink
        self._start = 0.0
        self._parent: Optional[str] = None

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def incr(self, key: str, amount: int = 1) -> None:
        """Add *amount* to a numeric attribute (creating it at zero)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        stack = _current_stack()
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = _current_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        registry = self._registry
        if registry is not None:
            registry.histogram(f"span.{self.name}").record(duration)
            for key, value in self.attrs.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    registry.observe(f"span.{self.name}.{key}", value)
        sink = self._sink
        if sink is not None:
            sink.write(
                {
                    "ts": time.time(),
                    "kind": "span",
                    "name": self.name,
                    "parent": self._parent,
                    "dur_s": duration,
                    "attrs": self.attrs,
                }
            )
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, attrs={self.attrs!r})"


def span(name: str, **attrs) -> Union[Span, _NoopSpan]:
    """Open a traced region named *name* (use as a context manager).

    Returns the shared no-op span when tracing is disabled — one
    attribute check, no allocation.
    """
    if not _state.enabled:
        return _NOOP
    return Span(name, attrs)


def event(name: str, **attrs) -> None:
    """Record one point-in-time event (no duration).

    No-op when tracing is disabled.  When enabled: bumps the counter
    ``event.<name>``, records numeric attributes into the stats
    ``event.<name>.<attr>``, and writes one JSONL record to the sink.
    """
    if not _state.enabled:
        return
    registry = _state.registry
    if registry is not None:
        registry.incr(f"event.{name}")
        for key, value in attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                registry.observe(f"event.{name}.{key}", value)
    sink = _state.sink
    if sink is not None:
        stack = _current_stack()
        sink.write(
            {
                "ts": time.time(),
                "kind": "event",
                "name": name,
                "parent": stack[-1] if stack else None,
                "attrs": attrs,
            }
        )


def active() -> bool:
    """Is tracing currently enabled?"""
    return _state.enabled


def enable(
    registry: Optional[MetricRegistry] = None, sink=None
) -> MetricRegistry:
    """Turn tracing on, routing spans to *registry* and/or *sink*.

    Returns the registry in effect (a fresh one if none was passed and
    none was configured before).  Re-enabling replaces the previous
    destinations.  Spans already open keep the destinations they
    captured at creation.
    """
    if registry is None:
        registry = MetricRegistry()
    _state.registry = registry
    _state.sink = sink
    _state.enabled = True
    return registry


def disable() -> None:
    """Turn tracing off and drop the registry/sink references."""
    _state.enabled = False
    _state.registry = None
    _state.sink = None


def current_registry() -> Optional[MetricRegistry]:
    """The registry spans are recording into, or ``None``."""
    return _state.registry


def current_sink():
    """The sink spans are writing to, or ``None``."""
    return _state.sink


@contextmanager
def capture(registry: Optional[MetricRegistry] = None, sink=None):
    """Enable tracing for a ``with`` block; yields the registry.

    Restores the previous trace configuration on exit (so tests and
    CLI commands can nest without trampling a caller's setup).
    """
    previous = (_state.enabled, _state.registry, _state.sink)
    registry = enable(registry, sink)
    try:
        yield registry
    finally:
        _state.enabled, _state.registry, _state.sink = previous


class JsonlSink:
    """A thread-safe JSONL event sink over a path or file object.

    Each :meth:`write` serializes one record as a single JSON line.
    Non-JSON-serializable attribute values are stringified rather than
    raising — telemetry must never take down the operation it observes.

    Use as a context manager, or call :meth:`close` (closing is a no-op
    for file objects the sink does not own).
    """

    def __init__(self, target) -> None:
        self._lock = threading.Lock()
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one record as a JSON line."""
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            self._file.write(line + "\n")
            self.records_written += 1

    def close(self) -> None:
        """Flush and close the file if the sink opened it."""
        with self._lock:
            if self._owns and not self._file.closed:
                self._file.close()
            elif not self._owns and not getattr(self._file, "closed", False):
                self._file.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(records_written={self.records_written})"
        )
