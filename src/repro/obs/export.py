"""Render a :class:`~repro.obs.registry.MetricRegistry` for export.

Two formats:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): counters as ``_total`` series, gauges/callbacks as
  gauges, :class:`LatencyHistogram` as native Prometheus histograms with
  cumulative ``le`` buckets, and :class:`RunningStats` as a small gauge
  family (``_count``/``_sum``/``_min``/``_max``).
* :func:`render_json` — the registry snapshot as indented JSON, for
  dashboards and tests that want structure rather than scrape format.

:func:`write_metrics` picks the format from the file extension
(``.json`` → JSON, anything else → Prometheus text), which is what the
``--metrics-out`` flag of ``repro serve-replay`` and the ``repro
metrics`` subcommand use.

Metric names are sanitized to Prometheus rules (dots and dashes become
underscores; a leading digit gains a ``_`` prefix).  Values of ``None``
(e.g. a hit-rate before the first lookup, an empty histogram's mean)
are simply omitted — absent is the correct scrape-format spelling of
"no data yet".
"""

from __future__ import annotations

import json
import math
import re

from .registry import MetricRegistry

__all__ = [
    "render_prometheus",
    "render_prometheus_snapshot",
    "render_json",
    "write_metrics",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar."""
    cleaned = _NAME_OK.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value) -> str:
    """Format one sample value as Prometheus expects."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    raise TypeError(f"cannot render {value!r} as a Prometheus sample")


def render_prometheus(registry: MetricRegistry) -> str:
    """The whole registry in Prometheus text exposition format.

    Deterministic: metric families are emitted in sorted-name order, so
    the output is directly comparable in golden-file tests.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []
    _emit_counters_gauges(snapshot, lines)

    # Histograms need raw cumulative buckets, not the percentile summary.
    histograms = registry.histograms()
    for name in sorted(histograms):
        pname = _sanitize(name) + "_seconds"
        buckets, count, total = histograms[name].cumulative_buckets()
        lines.append(f"# TYPE {pname} histogram")
        for bound, cumulative in buckets:
            lines.append(
                f'{pname}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        lines.append(f"{pname}_sum {_fmt(total)}")
        lines.append(f"{pname}_count {count}")

    _emit_stats(snapshot, lines)
    return "\n".join(lines) + "\n"


def render_prometheus_snapshot(snapshot: dict) -> str:
    """Prometheus text format from a registry *snapshot dict*.

    For registries living in another process — ``repro metrics
    --connect`` fetches the server's snapshot over the ``stats`` wire op
    and renders it here.  Raw histogram buckets don't cross the wire, so
    histograms are rendered from their percentile summaries as a
    quantile-labelled gauge family (``_count`` / ``_mean`` /
    ``{quantile="0.5"}`` …) instead of native ``le`` buckets.
    """
    lines: list[str] = []
    _emit_counters_gauges(snapshot, lines)

    for name in sorted(snapshot.get("histograms", ())):
        pname = _sanitize(name) + "_seconds"
        summary = snapshot["histograms"][name]
        lines.append(f"# TYPE {pname} summary")
        for label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if summary.get(key) is not None:
                lines.append(
                    f'{pname}{{quantile="{label}"}} {_fmt(summary[key])}'
                )
        lines.append(f"{pname}_count {summary['count']}")
        for key in ("mean", "max"):
            if summary.get(key) is not None:
                lines.append(f"{pname}_{key} {_fmt(summary[key])}")

    _emit_stats(snapshot, lines)
    return "\n".join(lines) + "\n"


def _emit_counters_gauges(snapshot: dict, lines: list) -> None:
    for name in sorted(snapshot["counters"]):
        pname = _sanitize(name)
        lines.append(f"# TYPE {pname}_total counter")
        lines.append(f"{pname}_total {_fmt(snapshot['counters'][name])}")

    for name in sorted(snapshot["gauges"]):
        value = snapshot["gauges"][name]
        if value is None:
            continue
        if not isinstance(value, (int, float)):
            continue  # callbacks may publish non-numeric diagnostics
        pname = _sanitize(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")


def _emit_stats(snapshot: dict, lines: list) -> None:
    for name in sorted(snapshot["stats"]):
        pname = _sanitize(name)
        summary = snapshot["stats"][name]
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}_count {summary['count']}")
        for key in ("mean", "min", "max"):
            if summary[key] is not None:
                lines.append(f"{pname}_{key} {_fmt(summary[key])}")


def render_json(registry: MetricRegistry, *, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_metrics(registry: MetricRegistry, path) -> str:
    """Write the registry to *path*; format chosen by extension.

    ``.json`` gets :func:`render_json`, everything else the Prometheus
    text format.  Returns the format written (``"json"`` or
    ``"prometheus"``).
    """
    text_format = "json" if str(path).endswith(".json") else "prometheus"
    text = (
        render_json(registry)
        if text_format == "json"
        else render_prometheus(registry)
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    return text_format
