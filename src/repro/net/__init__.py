"""`repro.net` — the network serving subsystem.

Everything the in-process :class:`~repro.service.server.ReachabilityService`
can do, reachable over a socket:

* :mod:`repro.net.protocol` — the length-prefixed JSON wire format
  (framing, request/response envelopes, structured error codes);
* :mod:`repro.net.server` — the asyncio TCP front end with
  cross-connection query batching, admission control and graceful drain;
* :mod:`repro.net.client` — a blocking client for scripts, tests and
  load-generator worker processes;
* :mod:`repro.net.loadgen` — the multi-process Zipfian load generator
  behind ``repro loadgen`` and ``BENCH_serve.json``.

See ``docs/network.md`` for the protocol spec and operational knobs.
"""

from .client import BatchReply, ReachabilityClient
from .protocol import PROTOCOL_VERSION
from .server import BackgroundServer, ReachabilityServer

__all__ = [
    "PROTOCOL_VERSION",
    "BatchReply",
    "ReachabilityClient",
    "ReachabilityServer",
    "BackgroundServer",
]
