"""The writer subprocess behind ``repro serve --workers``.

PR 9 ran the writer *in* the supervisor process, which made a writer
crash fatal to the whole assembly.  Now the writer is a child like the
readers, and this module is its ``main``: build (or **recover**) the
:class:`~repro.service.server.ReachabilityService`, attach a
:class:`~repro.shm.publisher.SnapshotPublisher` to the control block
the supervisor owns, and run the asyncio
:class:`~repro.net.server.ReachabilityServer` on the writer socket fd
inherited from the supervisor — the supervisor holds the listening
socket, so the writer's *port never changes* across respawns and
workers reconnect to the same address after a failover.

Boot sequence (identical for first boot and every respawn — the
filesystem decides which it is):

1. arm a chaos injector from ``REPRO_CHAOS`` if the harness set one
   (one-shot: the respawn after an injected kill boots clean);
2. if the WAL directory contains state, ``ReachabilityService.recover``
   replays checkpoint + WAL suffix — updates acknowledged before the
   crash survive it; otherwise build fresh from the graph/pack;
3. attach the publisher to the existing control block: repair a seqlock
   a mid-flip death left odd, floor published epochs at the inherited
   value, publish immediately (readers re-attach on their next request)
   and retire the dead writer's segment;
4. stamp our pid into the control block — readers use its liveness to
   fail forwarded ops fast while we are gone;
5. serve until SIGTERM, the supervisor dies (ppid watchdog), or the
   control block's shutdown flag rises.

Without ``--wal``, a respawned writer rebuilds from the original
source: acknowledged updates since boot are lost (readers notice the
epoch pinning at the floor).  That is the documented no-durability
contract — run ``--workers`` with ``--wal`` for real failover.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Optional

from ..obs import trace as obs_trace
from ..obs.flight import FlightRecorder
from ..obs.health import bind_health_gauges
from ..obs.registry import MetricRegistry
from ..obs.slowlog import SlowQueryLog
from ..service.server import ReachabilityService
from ..shm.publisher import SnapshotPublisher
from .chaos import injector_from_env

__all__ = ["run_writer_process", "wal_has_state"]


def wal_has_state(directory) -> bool:
    """Whether *directory* holds anything recovery could replay."""
    if not directory:
        return False
    root = Path(directory)
    if (root / "wal.log").exists():
        return True
    return any((root / "checkpoints").glob("ckpt-*.tolc"))


def _start_ppid_watchdog(on_orphaned, *, interval: float = 1.0) -> None:
    """Exit when the parent (the supervisor) disappears.

    A SIGKILLed supervisor cannot signal its children; without this the
    writer would hold the WAL and the port forever.  Reparenting (to
    pid 1 or a subreaper) changes ``getppid``, which is the signal.
    """
    parent = os.getppid()

    def watch() -> None:
        while True:
            time.sleep(interval)
            if os.getppid() != parent:
                on_orphaned()
                return

    threading.Thread(target=watch, name="ppid-watchdog",
                     daemon=True).start()


def _build_service(
    *,
    graph: Optional[str],
    snapshot: Optional[str],
    wal: Optional[str],
    fsync: str,
    checkpoint_every: int,
    registry,
    flight,
    injector,
    service_kwargs: dict,
) -> ReachabilityService:
    from ..graph.io import read_edge_list

    common = dict(service_kwargs)
    common.update(registry=registry, flight=flight)
    if injector is not None:
        common["injector"] = injector
    if wal_has_state(wal):
        return ReachabilityService.recover(
            wal,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            **common,
        )
    durability = None
    if wal:
        from ..service.durability import DurabilityManager

        durability = DurabilityManager(
            wal,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            **({"injector": injector} if injector is not None else {}),
        )
    if snapshot:
        from ..core.serialize import load_pack, reachability_index_from_pack

        frozen, meta = load_pack(snapshot)
        index = reachability_index_from_pack(
            frozen, meta, order=service_kwargs.get("order", "butterfly-u")
        )
        return ReachabilityService(index=index, durability=durability,
                                   **common)
    return ReachabilityService(read_edge_list(graph), durability=durability,
                               **common)


def run_writer_process(
    *,
    listen_fd: int,
    control_name: str,
    graph: Optional[str] = None,
    snapshot: Optional[str] = None,
    wal: Optional[str] = None,
    fsync: str = "batch",
    checkpoint_every: int = 256,
    publish_interval: float = 0.2,
    grace_period: float = 5.0,
    max_pending: int = 4096,
    max_batch: int = 1024,
    batch_delay: float = 0.0,
    drain_timeout: float = 10.0,
    slowlog_path: Optional[str] = None,
    slow_ms: float = 10.0,
    flight_dir: Optional[str] = None,
    metrics_out: Optional[str] = None,
    cache_size: int = 4096,
    flush_threshold: int = 1,
    order: str = "butterfly-u",
) -> int:
    """Entry point for the hidden ``repro serve-writer`` subcommand."""
    import asyncio
    import signal

    from .server import ReachabilityServer

    injector = injector_from_env()
    registry = MetricRegistry()
    if metrics_out:
        obs_trace.enable(registry)
    flight = None
    if flight_dir:
        flight = FlightRecorder(registry, dump_dir=flight_dir)
    slowlog = None
    if slowlog_path:
        slowlog = SlowQueryLog(slowlog_path, threshold_ms=slow_ms)

    service = _build_service(
        graph=graph, snapshot=snapshot, wal=wal, fsync=fsync,
        checkpoint_every=checkpoint_every, registry=registry, flight=flight,
        injector=injector,
        service_kwargs=dict(
            cache_size=cache_size, flush_threshold=flush_threshold,
            order=order,
        ),
    )
    bind_health_gauges(registry, service)

    publisher = SnapshotPublisher(
        service,
        control=control_name,
        grace_period=grace_period,
        registry=registry,
        injector=injector,
    )
    service.shm_publisher = publisher
    publisher.control.set_writer_pid(os.getpid())
    publisher.publish()

    writer_sock = socket.socket(fileno=listen_fd)
    server = ReachabilityServer(
        service,
        host="127.0.0.1",
        max_pending=max_pending,
        max_batch=max_batch,
        batch_delay=batch_delay,
        drain_timeout=drain_timeout,
        slowlog=slowlog,
        sock=writer_sock,
    )

    exit_code = 0
    try:
        async def run() -> None:
            stopping = asyncio.Event()
            loop = asyncio.get_event_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, stopping.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            _start_ppid_watchdog(
                lambda: loop.call_soon_threadsafe(stopping.set)
            )
            await server.start()
            publisher.start(publish_interval)
            if flight is not None:
                flight.start()
            await stopping.wait()
            await server.shutdown()

        asyncio.run(run())
    finally:
        try:
            publisher.control.set_writer_pid(0)
        except Exception:  # pragma: no cover - control block gone
            pass
        publisher.close()
        if flight is not None:
            flight.stop()
        if slowlog is not None:
            slowlog.close()
        if metrics_out:
            obs_trace.disable()
            from ..obs.export import write_metrics

            write_metrics(registry, metrics_out)
        if service.durability is not None:
            service.durability.close()
    return exit_code
