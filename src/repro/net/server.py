"""The asyncio TCP front end over :class:`ReachabilityService`.

Architecture
------------

::

    conn 1 ──┐                       ┌────────────────────────────┐
    conn 2 ──┼─► admission control ─►│ pending queue (micro-batch)│
    conn N ──┘   (bounded pairs;     └──────────────┬─────────────┘
                  excess answered                   │ one batcher task
                  `overloaded`)                     ▼
                               executor thread: service.query_batch(...)
                                                    │
                  futures fan results back ◄────────┘

Query requests from *all* connections are coalesced by a single batcher
task into calls to the service's deduplicating
:meth:`~repro.service.server.ReachabilityService.query_batch_with_epoch`
— so while one batch is being answered on an executor thread (the
service API is blocking: it takes the read lock), every request that
arrives in the meantime piles into the next batch.  Under load the
batch size grows and the per-query lock/dedup cost amortizes; when idle
a lone request is answered immediately.  Duplicate pairs across
connections cost one index probe per epoch (batch dedup within a call,
the epoch-stamped cache across calls).

Admission control is a bound on *queued pairs* (``max_pending``): a
query request that would push the backlog past the bound is answered
right away with a structured ``overloaded`` error (plus a
``retry_after_ms`` hint) instead of being buffered without bound —
shedding is counted in the shared metric registry under ``net.shed``,
and admitted requests keep their latency.  Replies also surface the
service's degraded mode (``"degraded": true``) so clients know an
answer came from the BFS mirror rather than the index.

Lifecycle: :meth:`ReachabilityServer.serve_forever` installs SIGTERM /
SIGINT handlers that trigger a graceful drain — stop accepting, answer
everything already admitted, flush the service (and its WAL/durability
stack, when configured), then return.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Optional

from ..errors import (
    ProtocolError,
    ReproError,
    UnknownVertexError,
    VertexNotFoundError,
)
from ..obs.trace import new_trace_id
from ..service.metrics import ScopedMetrics
from .protocol import (
    SUPPORTED_VERSIONS,
    decode_update_ops,
    encode_frame,
    error_fields_for,
    error_response,
    ok_response,
    read_frame,
    wire_pairs,
)

__all__ = ["ReachabilityServer", "BackgroundServer"]


class _PendingBatch:
    """One admitted query request waiting for the batcher.

    Carries the request's trace id and enqueue timestamp so the reply
    can report how long the request sat coalescing before the batcher
    picked it up — the stage that grows first under load.
    """

    __slots__ = ("pairs", "future", "trace", "enqueued_at", "want_timings")

    def __init__(self, pairs, future, trace=None, enqueued_at=0.0,
                 want_timings=False):
        self.pairs = pairs
        self.future = future
        self.trace = trace
        self.enqueued_at = enqueued_at
        self.want_timings = want_timings


class ReachabilityServer:
    """Serve a :class:`ReachabilityService` over length-prefixed JSON TCP.

    Parameters
    ----------
    service:
        The (thread-safe, blocking) service to front.  All blocking
        calls run on the event loop's default executor.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_pending:
        Admission-control bound on queued query *pairs*.  A request that
        would push the backlog past this bound is shed with a structured
        ``overloaded`` response.  ``0`` disables shedding (unbounded).
    max_batch:
        Most pairs handed to one ``query_batch`` call; a bigger backlog
        is split across successive calls.
    batch_delay:
        Artificial seconds of executor-side delay per batch.  A testing
        and demo knob (it makes overload reproducible on a fast
        machine); leave at ``0.0`` in production.
    drain_timeout:
        Seconds the graceful drain waits for admitted requests before
        failing the stragglers and shutting down anyway.
    slowlog:
        A :class:`repro.obs.slowlog.SlowQueryLog` to feed.  When set,
        every query request — admitted, shed, or failed — is offered to
        the log with its trace id and stage breakdown; the log's own
        threshold/sampling decides what is written.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 4096,
        max_batch: int = 1024,
        batch_delay: float = 0.0,
        drain_timeout: float = 10.0,
        slowlog=None,
        sock=None,
    ) -> None:
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_delay < 0:
            raise ValueError(f"batch_delay must be >= 0, got {batch_delay}")
        self.service = service
        self.host = host
        self._requested_port = port
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.batch_delay = batch_delay
        self.drain_timeout = drain_timeout
        self.slowlog = slowlog
        # A pre-bound listening socket (the multi-process path binds
        # before forking workers so the port is known to all of them).
        self._sock = sock

        self._metrics = ScopedMetrics(service.registry, prefix="net.")
        for name in (
            "connections",
            "requests",
            "queries",
            "shed",
            "shed_pairs",
            "errors",
            "batches",
            "updates_applied",
        ):
            self._metrics.registry.counter("net." + name)
        self._request_latency = self._metrics.histogram("request_latency")
        self._batch_pairs = self._metrics.stats("batch_pairs")
        self._metrics.registry.register_callback(
            "net.pending_pairs", lambda: self._pending_pairs
        )

        self._queue: deque[_PendingBatch] = deque()
        self._pending_pairs = 0
        self._work_available: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None
        self._connections: set[asyncio.Task] = set()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (valid after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and launch the batcher task."""
        if self._started:
            raise RuntimeError("server already started")
        self._work_available = asyncio.Event()
        self._stopping = asyncio.Event()
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port
            )
        self._batch_task = asyncio.ensure_future(self._batch_loop())
        self._started = True

    async def serve_forever(self, *, install_signal_handlers: bool = True):
        """Run until :meth:`shutdown` is requested (e.g. by SIGTERM).

        With *install_signal_handlers*, SIGTERM and SIGINT trigger the
        graceful drain instead of killing the process mid-request.
        """
        import signal

        if not self._started:
            await self.start()
        loop = asyncio.get_event_loop()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._stopping.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread / platforms without support
        await self._stopping.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, flush.

        The order matters: close the listening socket first (no new
        admissions), wait for the pending queue and in-flight
        connections to drain (bounded by ``drain_timeout``), then stop
        the batcher and flush the service so queued updates — and the
        WAL behind them, when durability is configured — are applied
        before the process exits.
        """
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout
        while self._pending_pairs and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Admitted work is settled (or timed out); give the connection
        # tasks a beat to write their last replies, then cut them off —
        # an idle keep-alive connection must not hold up the drain.
        await asyncio.sleep(0.05)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
        # Fail anything still parked in the queue (drain timeout hit).
        while self._queue:
            item = self._queue.popleft()
            self._pending_pairs -= len(item.pairs)
            if not item.future.done():
                item.future.set_exception(
                    ProtocolError("server shut down before answering")
                )
        await asyncio.get_event_loop().run_in_executor(
            None, self.service.flush
        )

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (what the signal handlers call)."""
        if self._stopping is not None:
            self._stopping.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self._metrics.incr("connections")
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # Tell the peer what was wrong with its bytes, then
                    # close: framing is gone, resync is impossible.
                    await self._send(
                        writer,
                        error_response(None, "bad_request", str(exc)),
                    )
                    self._metrics.incr("errors")
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer, payload: dict) -> None:
        writer.write(encode_frame(payload))
        await writer.drain()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        start = time.perf_counter()
        request_id = request.get("id")
        self._metrics.incr("requests")
        try:
            version = request.get("v", SUPPORTED_VERSIONS[-1])
            if version not in SUPPORTED_VERSIONS:
                supported = "/".join(f"v{v}" for v in SUPPORTED_VERSIONS)
                return error_response(
                    request_id,
                    "unsupported_version",
                    f"server speaks {supported}, got v{version!r}",
                )
            op = request.get("op")
            if op == "query":
                return await self._handle_query(request_id, request, start)
            if op == "update":
                return await self._handle_update(request_id, request)
            if op == "ping":
                return ok_response(
                    request_id,
                    pong=True,
                    epoch=self.service.epoch,
                    degraded=self.service.degraded,
                )
            if op == "stats":
                fields = {
                    "stats": self.service.snapshot(),
                    "net": self._metrics.scoped_counters(),
                }
                publisher = getattr(self.service, "shm_publisher", None)
                if publisher is not None:
                    # Multi-process serving: the per-worker breakdown
                    # lives in the shared control block's stats slots.
                    section = publisher.health_section()
                    fields["workers"] = section["workers"]
                    fields["writer_pid"] = section["writer_pid"]
                    fields["worker_restarts"] = section["worker_restarts"]
                    fields["writer_restarts"] = section["writer_restarts"]
                if request.get("registry"):
                    # Full registry snapshot for remote scraping
                    # (`repro metrics --connect`); gauge callbacks may
                    # briefly take service locks, so keep it off-loop.
                    fields["registry"] = await asyncio.get_event_loop(
                    ).run_in_executor(
                        None, self.service.registry.snapshot
                    )
                return ok_response(request_id, **fields)
            if op == "health":
                payload = await asyncio.get_event_loop().run_in_executor(
                    None, self.service.health
                )
                return ok_response(request_id, health=payload)
            return error_response(
                request_id, "unknown_op", f"unknown op {op!r}"
            )
        except ProtocolError as exc:
            self._metrics.incr("errors")
            return error_response(request_id, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            self._metrics.incr("errors")
            fields = error_fields_for(exc)
            return error_response(request_id, **fields)
        finally:
            self._request_latency.record(time.perf_counter() - start)

    async def _handle_query(
        self, request_id, request: dict, start: float
    ) -> dict:
        trace = request.get("trace")
        if not isinstance(trace, str) or not trace:
            # Untraced peer (a v1 client, or a v2 client that opted
            # out): mint an id at admission so server-side records —
            # slowlog lines, WAL stamps — still correlate.
            trace = new_trace_id()
        want_timings = bool(request.get("timings"))
        pairs = wire_pairs(request.get("pairs"))
        if not pairs:
            return ok_response(
                request_id,
                results=[],
                epoch=self.service.epoch,
                degraded=self.service.degraded,
                trace=trace,
            )
        if self.max_pending and (
            self._pending_pairs + len(pairs) > self.max_pending
        ):
            self._metrics.incr("shed")
            self._metrics.incr("shed_pairs", len(pairs))
            # Rough hint: current backlog at the rate one batch clears.
            retry_ms = max(1.0, 1e3 * self.batch_delay) * (
                1 + self._pending_pairs // max(1, self.max_batch)
            )
            self._record_slow(
                trace, start, pairs, outcome="shed",
                stages={"admission_ms": self._elapsed_ms(start)},
            )
            response = error_response(
                request_id,
                "overloaded",
                f"{self._pending_pairs} pairs queued (max {self.max_pending})",
                retry_after_ms=retry_ms,
            )
            response["trace"] = trace
            return response
        future = asyncio.get_event_loop().create_future()
        enqueued = time.perf_counter()
        self._queue.append(
            _PendingBatch(pairs, future, trace, enqueued, want_timings)
        )
        self._pending_pairs += len(pairs)
        self._work_available.set()
        try:
            results, epoch, degraded, batch_timings, picked_up = await future
        except ReproError as exc:
            self._record_slow(trace, start, pairs, outcome="error")
            response = error_response(request_id, **error_fields_for(exc))
            response["trace"] = trace
            return response
        self._metrics.incr("queries", len(pairs))
        stages = {
            "admission_ms": round((enqueued - start) * 1e3, 4),
            "coalesce_ms": round((picked_up - enqueued) * 1e3, 4),
        }
        if batch_timings:
            stages.update(batch_timings)
        stages["total_ms"] = self._elapsed_ms(start)
        self._record_slow(
            trace, start, pairs,
            outcome="ok", stages=stages, epoch=epoch, degraded=degraded,
        )
        response = ok_response(
            request_id, results=results, epoch=epoch, degraded=degraded,
            trace=trace,
        )
        if want_timings:
            response["timings"] = stages
        return response

    @staticmethod
    def _elapsed_ms(start: float) -> float:
        return round((time.perf_counter() - start) * 1e3, 4)

    def _record_slow(
        self, trace, start, pairs, *, outcome, stages=None,
        epoch=None, degraded=False,
    ) -> None:
        if self.slowlog is None:
            return
        try:
            self.slowlog.record(
                trace=trace,
                dur_ms=self._elapsed_ms(start),
                stages=stages,
                pairs=len(pairs),
                pair=pairs[0] if len(pairs) == 1 else None,
                epoch=epoch,
                outcome=outcome,
                degraded=degraded,
            )
        except OSError:
            self._metrics.registry.incr("net.slowlog_errors")

    async def _handle_update(self, request_id, request: dict) -> dict:
        trace = request.get("trace")
        if not isinstance(trace, str) or not trace:
            trace = new_trace_id()
        ops = decode_update_ops(request.get("ops"))
        service = self.service
        applied = await asyncio.get_event_loop().run_in_executor(
            None,
            lambda: service.apply_batch(ops, trace_id=trace),
        )
        self._metrics.incr("updates_applied", applied)
        return ok_response(
            request_id, applied=applied, epoch=self.service.epoch,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # The batcher
    # ------------------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Coalesce admitted query requests into ``query_batch`` calls.

        Single consumer: batches run strictly one after another, which
        is what makes "one index probe per distinct pair per epoch" hold
        across connections — concurrent arrivals meet in one call (batch
        dedup) or in consecutive calls (the epoch-stamped cache).
        """
        loop = asyncio.get_event_loop()
        while True:
            await self._work_available.wait()
            batch: list[_PendingBatch] = []
            total = 0
            while self._queue and total < self.max_batch:
                item = self._queue.popleft()
                batch.append(item)
                total += len(item.pairs)
            if not self._queue:
                self._work_available.clear()
            if not batch:
                continue
            combined = [p for item in batch for p in item.pairs]
            self._metrics.incr("batches")
            self._batch_pairs.record(len(combined))
            # The service-side stage clocks run when any waiter asked
            # for a breakdown or a slow-query log wants one; the shared
            # lock/probe numbers are then fanned to every waiter in the
            # batch (they shared the acquisition).
            timed = self.slowlog is not None or any(
                item.want_timings for item in batch
            )
            picked_up = time.perf_counter()
            try:
                outcome = await loop.run_in_executor(
                    None, self._run_batch, combined, timed
                )
            except (UnknownVertexError, VertexNotFoundError):
                # One poisoned pair must not fail every coalesced
                # waiter: fall back to per-request calls so only the
                # requests that named the unknown vertex see the error.
                await self._settle_individually(loop, batch, timed)
            except Exception as exc:  # noqa: BLE001 - fan the failure out
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
            else:
                results, epoch, degraded, batch_timings = outcome
                offset = 0
                for item in batch:
                    chunk = results[offset:offset + len(item.pairs)]
                    offset += len(item.pairs)
                    if not item.future.done():
                        item.future.set_result(
                            (chunk, epoch, degraded, batch_timings, picked_up)
                        )
            finally:
                for item in batch:
                    self._pending_pairs -= len(item.pairs)

    def _run_batch(self, pairs, timed=False):
        if self.batch_delay:
            time.sleep(self.batch_delay)
        return self._run_batch_undelayed(pairs, timed)

    async def _settle_individually(self, loop, batch, timed=False) -> None:
        for item in batch:
            picked_up = time.perf_counter()
            try:
                outcome = await loop.run_in_executor(
                    None, self._run_batch_undelayed, item.pairs, timed
                )
            except Exception as exc:  # noqa: BLE001 - per-request verdict
                if not item.future.done():
                    item.future.set_exception(exc)
            else:
                if not item.future.done():
                    item.future.set_result((*outcome, picked_up))

    def _run_batch_undelayed(self, pairs, timed):
        if timed:
            timings: dict = {}
            results, epoch, degraded = self.service.query_batch_with_epoch(
                pairs, timings=timings
            )
            return results, epoch, degraded, timings
        results, epoch, degraded = self.service.query_batch_with_epoch(pairs)
        return results, epoch, degraded, None


class BackgroundServer:
    """Run a :class:`ReachabilityServer` on a daemon thread.

    For tests, benchmarks and the in-process half of the network-tax
    comparison: ``with BackgroundServer(service) as bs:`` yields a
    started server whose ``bs.host`` / ``bs.port`` a blocking client can
    connect to, and tears it down (graceful drain included) on exit.
    """

    def __init__(self, service, **server_kwargs) -> None:
        self._service = service
        self._kwargs = server_kwargs
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[ReachabilityServer] = None
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="reachability-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self.server is not None:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = ReachabilityServer(self._service, **self._kwargs)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced in __enter__
            self._error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(
                self.server.serve_forever(install_signal_handlers=False)
            )
        finally:
            loop.close()
