"""Atomic ``--port-file`` handling with stale-instance detection.

The port file is the readiness signal for everything that drives a
spawned server (tests, loadgen, CI): its *appearance* means "connect
now".  Three failure modes the naive ``open().write()`` had:

* a reader could see an empty or half-written file (no atomicity);
* a crashed run left the file behind, so the next reader connected to a
  port nobody listens on (or worse, somebody else's);
* two servers pointed at the same path silently clobbered each other.

Format: two lines, ``port`` then ``pid``.  The first line is the
contract consumers already parse (``int(text.split()[0])``); the pid
line lets the next ``repro serve`` distinguish a *stale* file (owner
dead — overwrite it) from a *live* one (owner alive — refuse, the
operator pointed two servers at one path).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from ..errors import NetworkError
from ..shm.control import pid_alive

__all__ = ["PortFileBusyError", "read_port_file", "write_port_file",
           "remove_port_file"]


class PortFileBusyError(NetworkError):
    """The port file belongs to a server that is still running."""

    def __init__(self, path, port: int, pid: int) -> None:
        super().__init__(
            f"port file {path} is owned by live pid {pid} (port {port}); "
            f"refusing to clobber a running server"
        )
        self.path = str(path)
        self.port = port
        self.pid = pid


def read_port_file(path) -> tuple[Optional[int], Optional[int]]:
    """Parse ``(port, pid)`` from *path*; ``(None, None)`` if unusable.

    Tolerates the one-line legacy format (pid ``None``) and garbage
    content (a crashed writer from before atomic writes existed).
    """
    try:
        lines = Path(path).read_text(encoding="utf-8").split()
    except (OSError, UnicodeDecodeError):
        return None, None
    try:
        port = int(lines[0])
    except (IndexError, ValueError):
        return None, None
    try:
        pid = int(lines[1])
    except (IndexError, ValueError):
        pid = None
    return port, pid


def write_port_file(path, port: int, *, pid: Optional[int] = None) -> None:
    """Atomically publish ``port`` (+ owning ``pid``) at *path*.

    Temp-file-plus-rename in the destination directory, so a concurrent
    reader sees either nothing or the complete file — never a torn one.
    Raises :class:`PortFileBusyError` when the path already names a
    server whose pid is still alive.
    """
    path = Path(path)
    old_port, old_pid = read_port_file(path)
    if old_pid is not None and old_pid != os.getpid() and pid_alive(old_pid):
        raise PortFileBusyError(path, old_port or 0, old_pid)
    pid = os.getpid() if pid is None else pid
    tmp = path.with_name(f".{path.name}.{pid}.tmp")
    tmp.write_text(f"{port}\n{pid}\n", encoding="utf-8")
    os.replace(tmp, path)


def remove_port_file(path, *, pid: Optional[int] = None) -> bool:
    """Remove *path* iff this process (or *pid*) still owns it.

    The ownership check keeps a slow shutdown from deleting a port file
    a newer server instance has already republished.
    """
    path = Path(path)
    pid = os.getpid() if pid is None else pid
    _port, owner = read_port_file(path)
    if owner is not None and owner != pid:
        return False
    try:
        path.unlink()
    except FileNotFoundError:
        return False
    return True
