"""Wire protocol: length-prefixed JSON frames and typed error codes.

Framing
-------

Every message — request or response — is one *frame*::

    +----------------+----------------------------------+
    | length (4B !I) | UTF-8 JSON payload (length bytes)|
    +----------------+----------------------------------+

The length prefix is an unsigned big-endian 32-bit integer counting the
payload bytes only.  Frames above :data:`MAX_FRAME_BYTES` are rejected
before any allocation, so a garbage prefix cannot make the server
allocate gigabytes.

Envelopes
---------

Requests carry ``{"v": 2, "op": ..., "id": ...}`` plus op-specific
fields (``pairs`` for ``query``, ``ops`` for ``update``).  Responses
echo ``v`` and ``id`` and carry either ``"ok": true`` with result fields
— queries additionally report the ``epoch`` the answers are valid at and
whether the server answered in ``degraded`` mode — or ``"ok": false``
with a structured ``error`` object::

    {"v": 2, "id": 7, "ok": false,
     "error": {"code": "unknown_vertex", "message": "...", "vertex": 99}}

Protocol v2 (backward compatible — servers accept every version in
:data:`SUPPORTED_VERSIONS`) adds the observability envelope fields:

* requests may carry ``"trace"``, a compact hex trace id minted by
  :func:`repro.obs.trace.new_trace_id` (the server mints one at
  admission for untraced peers), and ``query`` requests may set
  ``"timings": true`` to opt into the stage breakdown;
* replies echo ``"trace"`` and, when timings were requested, carry
  ``"timings"``: per-request admission/coalesce waits plus the batch's
  shared lock-wait, probe time, and cache hit/miss counts;
* the ``health`` op returns the live index-health payload
  (:func:`repro.obs.health.collect_health`), and ``stats`` accepts
  ``"registry": true`` to include a full metric-registry snapshot for
  remote scraping (``repro metrics --connect``).

v1 peers see none of this: their envelopes carry no ``trace`` field and
their replies are byte-compatible with the v1 server's.

Error codes are stable strings (:data:`ERROR_CODES`); the client maps
them back onto the library's exception hierarchy with
:func:`raise_for_error`, so ``UnknownVertexError`` thrown inside the
index surfaces as ``UnknownVertexError`` in the caller's process — a
structured response, not a connection teardown.

JSON round-trips tuple vertices as lists; :func:`wire_vertex` restores
them on the way in.

The ``update`` envelope's ``ops`` field carries
:meth:`repro.core.ops.UpdateOp.to_dict` dicts — the same encoding WAL
records use — via :func:`encode_update_ops` / :func:`decode_update_ops`,
so the queue, the log, and the wire all speak one format.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from ..core.ops import UpdateOp
from ..errors import (
    OverloadedError,
    ProtocolError,
    ReproError,
    SerializationError,
    UnknownVertexError,
    VertexNotFoundError,
    WriterUnavailableError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "send_frame_sync",
    "recv_frame_sync",
    "recv_frame_file",
    "ok_response",
    "error_response",
    "error_fields_for",
    "raise_for_error",
    "wire_vertex",
    "wire_pairs",
    "encode_update_ops",
    "decode_update_ops",
]

#: Version tag new clients send; bumped when the envelope grows.
PROTOCOL_VERSION = 2

#: Every version the server still speaks.  v1 lacks the trace/timings
#: envelope fields and the ``health`` op, but its query/update/ping/stats
#: requests are served unchanged.
SUPPORTED_VERSIONS = (1, 2)

#: Hard ceiling on one frame's JSON payload (16 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("!I")

#: code -> human description.  ``retryable`` codes are transient
#: conditions a client may retry; the rest are caller mistakes or
#: persistent server-side failures.
ERROR_CODES = {
    "bad_request": "malformed request envelope or fields",
    "unsupported_version": "protocol version not spoken by this server",
    "unknown_op": "request op not recognized",
    "unknown_vertex": "a queried or updated vertex is not indexed",
    "serialization": "a persisted artifact failed to decode server-side",
    "overloaded": "request shed by admission control; retry later",
    "writer_unavailable": "the writer process is down/restarting; "
                          "retry after the hinted backoff",
    "internal": "unexpected server-side failure",
}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(payload: dict) -> bytes:
    """Serialize *payload* as one length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload is {len(body)} bytes; max {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame's JSON payload into a dict."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(reader) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`~repro.errors.ProtocolError` on a truncated frame or an
    oversized length prefix.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds max {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(body)


def send_frame_sync(sock, payload: dict) -> None:
    """Blocking-socket counterpart of :func:`read_frame` (send side)."""
    sock.sendall(encode_frame(payload))


def recv_frame_sync(sock) -> Optional[dict]:
    """Read one frame from a blocking socket (``None`` on clean EOF)."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds max {MAX_FRAME_BYTES}"
        )
    body = _recv_exact(sock, length)
    return decode_payload(body)


def recv_frame_file(rfile) -> Optional[dict]:
    """Read one frame from a buffered binary reader (``None`` on EOF).

    The buffered counterpart of :func:`recv_frame_sync`: with *rfile*
    from ``sock.makefile("rb")``, the header and body of a typical
    frame come out of one underlying ``recv``, where the unbuffered
    path pays at least two syscalls per frame.  Callers that hold a
    request/reply socket (the client, the worker's writer link) want
    this; anything that might pipeline must keep its own buffer.
    """
    header = rfile.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-frame")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds max {MAX_FRAME_BYTES}"
        )
    body = rfile.read(length)
    if body is None or len(body) < length:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(body)


def _recv_exact(sock, n: int, *, allow_eof: bool = False):
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------

def ok_response(request_id, **fields) -> dict:
    """A success envelope echoing *request_id*."""
    out = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    out.update(fields)
    return out


def error_response(request_id, code: str, message: str, **extra) -> dict:
    """A structured-error envelope echoing *request_id*."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error,
    }


def error_fields_for(exc: BaseException) -> dict:
    """Map an exception onto ``{"code": ..., "message": ..., ...}``.

    The inverse of :func:`raise_for_error`: whatever the service layer
    throws becomes a structured, connection-preserving error reply.
    """
    # UnknownVertexError comes from the index/service layers,
    # VertexNotFoundError from graph-backed paths (the condensation
    # front-end, the degraded BFS mirror); on the wire they are the
    # same condition.
    if isinstance(exc, (UnknownVertexError, VertexNotFoundError)):
        return {
            "code": "unknown_vertex",
            "message": str(exc),
            "vertex": exc.vertex,
        }
    if isinstance(exc, SerializationError):
        return {"code": "serialization", "message": str(exc)}
    if isinstance(exc, OverloadedError):
        return {
            "code": "overloaded",
            "message": str(exc),
            "retry_after_ms": exc.retry_after_ms,
        }
    if isinstance(exc, WriterUnavailableError):
        return {
            "code": "writer_unavailable",
            "message": str(exc),
            "retry_after_ms": exc.retry_after_ms,
        }
    if isinstance(exc, ProtocolError):
        return {"code": "bad_request", "message": str(exc)}
    return {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}


def raise_for_error(error: dict) -> None:
    """Re-raise the exception a response's ``error`` object encodes."""
    code = error.get("code", "internal")
    message = error.get("message", "")
    if code == "unknown_vertex":
        raise UnknownVertexError(wire_vertex(error.get("vertex")))
    if code == "serialization":
        raise SerializationError(message)
    if code == "overloaded":
        raise OverloadedError(message, error.get("retry_after_ms", 0.0))
    if code == "writer_unavailable":
        raise WriterUnavailableError(
            message, error.get("retry_after_ms", 500.0)
        )
    if code in ("bad_request", "unsupported_version", "unknown_op"):
        raise ProtocolError(f"{code}: {message}")
    raise ReproError(f"{code}: {message}")


# ----------------------------------------------------------------------
# Vertex coding
# ----------------------------------------------------------------------

def wire_vertex(v):
    """Restore a JSON-round-tripped vertex (lists become tuples)."""
    return tuple(wire_vertex(x) for x in v) if isinstance(v, list) else v


def encode_update_ops(ops) -> list:
    """Encode an ``update`` envelope's ``ops`` field.

    Each element must be an :class:`~repro.core.ops.UpdateOp`; the
    result is a list of its canonical :meth:`to_dict` dicts.  (Raw
    pre-encoded dicts are deprecated — construct ``UpdateOp`` values.)
    """
    out = []
    for op in ops:
        out.append(op.to_dict() if isinstance(op, UpdateOp) else op)
    return out


def decode_update_ops(raw) -> list:
    """Validate and decode a request's ``ops`` field into UpdateOps.

    Accepts legacy short-kind dicts (versioned
    :meth:`~repro.core.ops.UpdateOp.from_dict`), so older clients keep
    working.

    Raises
    ------
    ProtocolError
        When *raw* is not a non-empty list of decodable op dicts.
    """
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'ops' must be a non-empty list of update dicts")
    try:
        return [UpdateOp.from_dict(o) for o in raw]
    except ReproError as exc:
        raise ProtocolError(f"bad update op: {exc}") from None


def wire_pairs(raw) -> list:
    """Validate and decode a request's ``pairs`` field.

    Raises
    ------
    ProtocolError
        When *raw* is not a list of two-element ``[source, target]``
        entries.
    """
    if not isinstance(raw, list):
        raise ProtocolError(
            f"'pairs' must be a list, got {type(raw).__name__}"
        )
    pairs = []
    append = pairs.append
    for entry in raw:
        # Scalar-vertex fast path: the overwhelmingly common shape is
        # [s, t] with JSON scalars, which needs no per-vertex recursion.
        if type(entry) is list and len(entry) == 2:
            s, t = entry
            if type(s) is not list and type(t) is not list:
                append((s, t))
            else:
                append((wire_vertex(s), wire_vertex(t)))
            continue
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ProtocolError(
                f"each pair must be [source, target], got {entry!r}"
            )
        append((wire_vertex(entry[0]), wire_vertex(entry[1])))
    return pairs
