"""Process-level chaos: deterministic faults injected across processes.

PR 5's :class:`~repro.service.faults.FaultInjector` arms named crash
points *inside one process*.  The multi-process plane needs the same
determinism across a process boundary: the test (or the loadgen chaos
leg) runs in the supervisor's parent and the crash must happen inside
the **writer subprocess**, at an exact point in its execution — not
"roughly now" via an external ``kill`` race.

The bridge is one environment variable.  ``REPRO_CHAOS`` carries a
spec like::

    service.apply:kill:after=2
    shm.publish.flip:kill
    wal.sync:kill:after=1;shm.publish.flip:kill:after=3

The writer process parses it at boot (:func:`injector_from_env`) into a
regular :class:`FaultInjector` armed with the ``kill`` action — the
``SIGKILL``-self action added for exactly this harness — and threads it
through the service, durability layer and publisher like any other
injector.  Execution reaching the armed point dies with ``kill -9``
semantics: no ``finally`` blocks, no flushes, a genuinely torn WAL tail
or a seqlock stuck odd.  Only the *first incarnation* of the writer
arms the spec (``REPRO_CHAOS_DONE`` marks spent specs via a sidecar
file) so the respawned writer recovers instead of dying in the same
spot forever.

:data:`SCENARIOS` is the process fault matrix the chaos tests and the
``loadgen --chaos`` leg iterate: each entry names the victim, the spec
that kills it, and the bound the assembly must recover within.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..service.faults import CRASH_POINTS, SHM_CRASH_POINTS, FaultInjector

__all__ = [
    "CHAOS_ENV",
    "ChaosScenario",
    "SCENARIOS",
    "parse_chaos_spec",
    "injector_from_env",
    "spent_marker",
]

#: Environment variable carrying the chaos spec into child processes.
CHAOS_ENV = "REPRO_CHAOS"

#: Sidecar path (set via ``REPRO_CHAOS_SPENT``) marking a one-shot spec
#: as consumed, so a respawned victim boots clean.
SPENT_ENV = "REPRO_CHAOS_SPENT"

_VALID_POINTS = frozenset(CRASH_POINTS) | frozenset(SHM_CRASH_POINTS)


def parse_chaos_spec(spec: str) -> list[tuple[str, str, int, int]]:
    """Parse ``point:action[:after=N][:times=M]`` entries (``;``-joined).

    Returns ``[(point, action, after, times), ...]``; raises
    ``ValueError`` on unknown points or malformed entries so a typo in
    a CI job fails loudly instead of silently injecting nothing.
    """
    armed = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"chaos entry {entry!r} needs at least point:action"
            )
        point, action = parts[0], parts[1]
        if point not in _VALID_POINTS:
            raise ValueError(f"unknown chaos point {point!r}")
        after, times = 1, 1
        for extra in parts[2:]:
            key, _, value = extra.partition("=")
            if key == "after":
                after = int(value)
            elif key == "times":
                times = int(value)
            else:
                raise ValueError(f"unknown chaos option {extra!r}")
        armed.append((point, action, after, times))
    return armed


def spent_marker(env: Optional[dict] = None) -> Optional[str]:
    """Path of the one-shot marker file, if the harness configured one."""
    source = os.environ if env is None else env
    return source.get(SPENT_ENV) or None


def injector_from_env(env: Optional[dict] = None) -> Optional[FaultInjector]:
    """Build an armed injector from ``REPRO_CHAOS``, or ``None``.

    When ``REPRO_CHAOS_SPENT`` names a file that already exists, the
    spec has fired in a previous incarnation of this process and is
    skipped — the respawn must recover, not die again.  When the
    marker is configured but absent, it is created *before* arming, so
    even a kill at the very first armed point leaves it behind.
    """
    source = os.environ if env is None else env
    spec = source.get(CHAOS_ENV)
    if not spec:
        return None
    marker = spent_marker(source)
    if marker:
        try:
            # O_EXCL: exactly one incarnation arms the spec.
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return None
        except OSError:  # pragma: no cover - unwritable marker dir
            pass
    injector = FaultInjector()
    for point, action, after, times in parse_chaos_spec(spec):
        injector.arm(point, action, after=after, times=times)
    return injector


@dataclass(frozen=True)
class ChaosScenario:
    """One entry of the process fault matrix.

    ``spec`` is the ``REPRO_CHAOS`` value that produces the fault
    deterministically inside the victim; ``signal_target`` scenarios
    instead signal a live process from outside (stalls and worker
    kills have no in-process crash point).  ``recovery_s`` bounds how
    long the assembly may take to return to full service.
    """

    name: str
    victim: str                       # writer | publisher | worker
    spec: Optional[str] = None        # REPRO_CHAOS value, if any
    signal_target: Optional[str] = None  # "worker" / "writer-stop" ...
    recovery_s: float = 15.0
    description: str = ""
    expectations: tuple = field(default_factory=tuple)


#: The process fault matrix (docs/robustness.md).  Every scenario must
#: yield zero incorrect answers against the BFS oracle; reads keep
#: flowing throughout; recovery completes within ``recovery_s``.
SCENARIOS = (
    ChaosScenario(
        name="kill-writer-mid-batch",
        victim="writer",
        spec="service.apply:kill:after=2",
        description=(
            "SIGKILL the writer between WAL append and index apply; "
            "recovery replays the WAL, readers stale-serve meanwhile"
        ),
        expectations=("wal-replay", "stale-serve", "writer-respawn"),
    ),
    ChaosScenario(
        name="kill-publisher-mid-flip",
        victim="writer",
        # after=2: the first flip is the boot publish — dying there
        # aborts the whole assembly by design (the supervisor refuses
        # to come up without a first snapshot).  The second flip is the
        # first *update-driven* republish, the window that matters.
        spec="shm.publish.flip:kill:after=2",
        description=(
            "SIGKILL the writer while the seqlock sequence is odd; the "
            "respawned writer must repair the seqlock before publishing"
        ),
        expectations=("seqlock-repair", "stale-serve", "writer-respawn"),
    ),
    ChaosScenario(
        name="kill-worker",
        victim="worker",
        signal_target="worker",
        description=(
            "SIGKILL one reader worker; siblings keep accepting on the "
            "shared fd and the supervisor respawns the slot"
        ),
        expectations=("worker-respawn",),
    ),
    ChaosScenario(
        name="stall-publisher",
        victim="writer",
        signal_target="writer-stop",
        description=(
            "SIGSTOP the writer: forwards time out and degrade to "
            "writer_unavailable; snapshot reads continue; SIGCONT heals"
        ),
        expectations=("stale-serve", "bounded-timeout"),
    ),
)
