"""Multi-process serving: a supervisor over writer + N reader workers.

The supervisor (what ``repro serve --workers N`` becomes) owns only the
things that must survive any child's death:

* the **public listening socket** — bound before any child exists, its
  fd inherited by every worker, so the kernel load-balances accepts and
  the port never changes;
* the **writer listening socket** — same trick for the loopback socket
  forwarded traffic lands on, so a respawned writer reappears at the
  same address and worker reconnects just work;
* the **control block** — created here (owner pid = supervisor pid, the
  janitor's liveness anchor) and attached by every child, so worker
  stats slots and the snapshot triple survive writer failover;
* the **port file** — written atomically once the assembly is ready,
  removed on shutdown.

Everything else runs in children, spawned as fresh interpreters via
``subprocess.Popen(pass_fds=...)`` (no ``os.fork`` from a threaded
parent):

* ``repro serve-writer`` (:mod:`repro.net.writerproc`) builds or
  *recovers* the service, attaches the publisher to the control block
  and serves forwarded ops on the writer socket;
* ``repro serve-worker`` (:mod:`repro.net.worker`) answers queries from
  the shared snapshot.

Supervision treats the writer exactly like a worker: a dead child is
respawned with the same argv and the same inherited fds.  The respawned
writer finds the WAL on disk and recovers; readers keep answering from
the last published snapshot the whole time (bounded-staleness mode —
see docs/robustness.md).  Boot also runs the shm janitor: segment
families whose owning supervisor is dead are unlinked before we create
our own.

Shutdown (SIGTERM/SIGINT) drains in dependency order: stop respawning,
SIGTERM the workers (each drains its connections), SIGTERM the writer
(drains + final WAL sync), close the sockets, then unlink the control
block and sweep any segments the writer's exit left linked.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Optional

from ..shm.control import ControlBlock, new_base_name
from ..shm.janitor import reap_orphans, sweep_family
from .portfile import remove_port_file, write_port_file

__all__ = ["MultiProcessServer"]

#: Give up respawning after this many restarts per worker slot on
#: average — a crash-looping worker binary should fail the server, not
#: spin forever.
MAX_RESTARTS_PER_WORKER = 50

#: Same guard for the writer: a writer that cannot finish recovery this
#: many times in a row is not going to.
MAX_WRITER_RESTARTS = 20


def _child_env() -> dict:
    """Child env with ``repro``'s source root on ``PYTHONPATH``."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    return env


class _Child:
    """One supervised subprocess slot (spawn and respawn identically)."""

    def __init__(self, name: str, argv: list, env: dict,
                 pass_fds: tuple) -> None:
        self.name = name
        self.argv = argv
        self.env = env
        self.pass_fds = pass_fds
        self.proc: Optional[subprocess.Popen] = None
        self.restarts = 0

    def spawn(self) -> None:
        self.proc = subprocess.Popen(
            self.argv, env=self.env, pass_fds=self.pass_fds
        )

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def poll(self):
        return self.proc.poll() if self.proc is not None else None

    def terminate(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout: float) -> None:
        if self.proc is None:
            return
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=5.0)


class MultiProcessServer:
    """Supervise the writer + readers + shared-memory assembly."""

    def __init__(
        self,
        *,
        workers: int,
        writer_args: list,
        host: str = "127.0.0.1",
        port: int = 0,
        max_staleness: float = 0.0,
        forward_timeout: float = 5.0,
        janitor: bool = True,
        writer_boot_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.host = host

        if janitor:
            reaped = reap_orphans()
            if reaped:
                names = sum(len(v) for v in reaped.values())
                print(
                    f"shm janitor: reaped {names} orphaned segment(s) "
                    f"from {len(reaped)} dead server(s)",
                    flush=True,
                )

        self.base = new_base_name()
        self.control = ControlBlock.create(self.base, num_workers=workers)

        # Public socket: bound and listening before any child exists,
        # so the port is known, connections queue in the backlog from
        # the first instant, and every worker shares the same fd.
        self._public = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._public.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._public.bind((host, port))
        self._public.listen(512)
        self._public.set_inheritable(True)
        self.port = self._public.getsockname()[1]

        # Writer socket: loopback-only, forwarded traffic + admin ops.
        # The supervisor holds the listening fd so the writer's address
        # is stable across respawns.
        self._writer_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._writer_sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._writer_sock.bind(("127.0.0.1", 0))
        self._writer_sock.listen(128)
        self._writer_sock.set_inheritable(True)
        self.writer_port = self._writer_sock.getsockname()[1]

        env = _child_env()
        writer_fd = self._writer_sock.fileno()
        public_fd = self._public.fileno()
        self._writer = _Child(
            "writer",
            [
                sys.executable, "-m", "repro", "serve-writer",
                "--fd", str(writer_fd),
                "--control", self.control.name,
                *writer_args,
            ],
            env,
            (writer_fd,),
        )
        self._readers = [
            _Child(
                f"worker-{i}",
                [
                    sys.executable, "-m", "repro", "serve-worker",
                    "--fd", str(public_fd),
                    "--control", self.control.name,
                    "--writer-port", str(self.writer_port),
                    "--worker-id", str(i),
                    "--max-staleness", str(max_staleness),
                    "--forward-timeout", str(forward_timeout),
                ],
                env,
                (public_fd,),
            )
            for i in range(workers)
        ]
        self._writer_boot_timeout = writer_boot_timeout
        self._stopping = threading.Event()
        self._failed = False
        self._port_file: Optional[str] = None

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, *, port_file: Optional[str] = None, on_ready=None) -> int:
        """Serve until SIGTERM/SIGINT; returns a process exit code."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(sig, lambda *_: self._stopping.set())
            except ValueError:  # pragma: no cover - non-main thread
                pass

        try:
            self._writer.spawn()
            if not self._await_writer_published():
                print("writer failed to publish a first snapshot; aborting",
                      flush=True)
                self._failed = True
                return 1
            for reader in self._readers:
                reader.spawn()
            # Only declare readiness once every worker has registered
            # its control-block slot — the port file is the "ready"
            # signal for clients, and a stats/health probe right after
            # it appears should see the full roster.
            self._await_workers_registered()
            if port_file:
                write_port_file(port_file, self.port)
                self._port_file = port_file
            if on_ready is not None:
                on_ready(self)
            self._supervise()
        finally:
            self._shutdown()
        return 1 if self._failed else 0

    def _await_writer_published(self) -> bool:
        """Wait (bounded) for the first snapshot and writer registration.

        Workers attach eagerly at boot; spawning them before generation
        1 exists would just burn their bounded attach retries.  Recovery
        from a big WAL takes real time, hence the generous default.
        """
        deadline = time.monotonic() + self._writer_boot_timeout
        while time.monotonic() < deadline and not self._stopping.is_set():
            if self.control.generation > 0 and self.control.writer_pid > 0:
                return True
            if self._writer.poll() is not None:
                return False
            time.sleep(0.05)
        return False

    def _await_workers_registered(self, timeout: float = 15.0) -> None:
        """Wait (bounded) until every worker slot carries a live pid."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and not self._stopping.is_set():
            stats = self.control.workers()
            if len(stats) == self.workers and all(
                s["pid"] > 0 for s in stats
            ):
                return
            if any(r.poll() is not None for r in self._readers):
                return  # dead already; the supervisor owns respawning
            time.sleep(0.05)

    def _supervise(self) -> None:
        """Respawn dead children until asked to stop.

        Writer death: clear its control-block pid *first* (workers use
        the liveness probe to fail forwarded ops fast instead of
        timing out), then respawn; the new writer recovers from the
        WAL, repairs the seqlock if needed, and re-registers itself.
        """
        total_worker_restarts = 0
        while not self._stopping.wait(0.25):
            code = self._writer.poll()
            if self._writer.proc is not None and code is not None:
                self.control.set_writer_pid(0)
                self._writer.restarts += 1
                self.control.incr_writer_restarts()
                print(
                    f"writer exited with code {code}; respawning "
                    f"(restart #{self._writer.restarts})",
                    flush=True,
                )
                if self._writer.restarts > MAX_WRITER_RESTARTS:
                    print("writer is crash-looping; shutting down",
                          flush=True)
                    self._failed = True
                    return
                self._writer.spawn()
            for reader in self._readers:
                code = reader.poll()
                if reader.proc is not None and code is not None:
                    reader.restarts += 1
                    total_worker_restarts += 1
                    self.control.incr_worker_restarts()
                    print(
                        f"{reader.name} exited with code {code}; "
                        f"respawning (restart #{reader.restarts})",
                        flush=True,
                    )
                    if (
                        total_worker_restarts
                        > self.workers * MAX_RESTARTS_PER_WORKER
                    ):
                        print("workers are crash-looping; shutting down",
                              flush=True)
                        self._failed = True
                        return
                    reader.spawn()

    def _shutdown(self) -> None:
        # Tell late readers the assembly is going away, then drain
        # children in dependency order: readers first (each drains its
        # own connections), writer last (final WAL sync + checkpoint).
        self.control.set_shutdown()
        for reader in self._readers:
            reader.terminate()
        deadline = time.monotonic() + 10.0
        for reader in self._readers:
            reader.wait(max(0.1, deadline - time.monotonic()))
        self._writer.terminate()
        self._writer.wait(10.0)
        for sock in (self._public, self._writer_sock):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self.control.close()
        self.control.unlink()
        # The writer's publisher leaves the current data segment linked
        # (readers may still be attached at the instant it exits); with
        # every child gone, sweep whatever remains so a kill-loop leaks
        # nothing.
        sweep_family(self.base)
        if self._port_file:
            remove_port_file(self._port_file)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def control_block_workers(self) -> list:
        return self.control.workers()

    def worker_pids(self) -> list:
        return [r.pid for r in self._readers]

    def writer_pid(self) -> Optional[int]:
        return self._writer.pid

    def restarts(self) -> int:
        return sum(r.restarts for r in self._readers)

    def writer_restarts(self) -> int:
        return self._writer.restarts
