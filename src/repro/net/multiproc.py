"""Multi-process serving: one writer, N reader workers, one shared port.

The parent process (what ``repro serve --workers N`` becomes):

1. builds the :class:`~repro.service.server.ReachabilityService` (or
   boots it from a ``.tolf`` pack);
2. creates a :class:`~repro.shm.publisher.SnapshotPublisher`, publishes
   generation 1, and starts the republish thread;
3. binds the public listening socket itself, marks the fd inheritable,
   and binds a loopback *writer* socket for forwarded traffic;
4. spawns N ``repro serve-worker`` subprocesses via
   ``subprocess.Popen(pass_fds=[fd])`` — a fresh interpreter per worker
   (no ``os.fork`` from a threaded parent), each reconstructing the
   listening socket from the inherited fd so the kernel load-balances
   accepts across all of them;
5. runs the existing single-process :class:`~repro.net.server.
   ReachabilityServer` on the writer socket — updates, degraded-mode
   queries, stats/health and snapshot-miss queries all land here;
6. supervises the workers: a dead reader is respawned (same argv, same
   inherited fd) and ``net.worker_restarts`` is incremented.

Shutdown (SIGTERM/SIGINT) drains in reverse: stop respawning, SIGTERM
the workers (each drains its own connections), then drain the writer
server, then close the publisher (unlinking every segment).
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

from ..shm.publisher import SnapshotPublisher
from .server import ReachabilityServer

__all__ = ["MultiProcessServer"]

#: Give up respawning after this many restarts per worker slot on
#: average — a crash-looping worker binary should fail the server, not
#: spin forever.
MAX_RESTARTS_PER_WORKER = 50


def _child_env() -> dict:
    """Child env with ``repro``'s source root on ``PYTHONPATH``."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    return env


class _Worker:
    """One reader-worker subprocess slot (spawn and respawn identically)."""

    def __init__(self, worker_id: int, argv: list, env: dict,
                 listen_fd: int) -> None:
        self.worker_id = worker_id
        self.argv = argv
        self.env = env
        self.listen_fd = listen_fd
        self.proc: Optional[subprocess.Popen] = None
        self.restarts = 0

    def spawn(self) -> None:
        self.proc = subprocess.Popen(
            self.argv, env=self.env, pass_fds=[self.listen_fd]
        )

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def poll(self):
        return self.proc.poll() if self.proc is not None else None

    def terminate(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout: float) -> None:
        if self.proc is None:
            return
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=5.0)


class MultiProcessServer:
    """Own the whole writer + readers + publisher assembly."""

    def __init__(
        self,
        service,
        *,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        publish_interval: float = 0.2,
        grace_period: float = 5.0,
        max_pending: int = 4096,
        max_batch: int = 1024,
        batch_delay: float = 0.0,
        drain_timeout: float = 10.0,
        slowlog=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.service = service
        self.workers = workers
        self.host = host
        self.publish_interval = publish_interval

        # Public socket: bound and listening before any worker exists,
        # so the port is known, connections queue in the backlog from
        # the first instant, and every worker shares the same fd.
        self._public = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._public.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._public.bind((host, port))
        self._public.listen(512)
        self._public.set_inheritable(True)
        self.port = self._public.getsockname()[1]

        # Writer socket: loopback-only, forwarded traffic + admin ops.
        writer_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        writer_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        writer_sock.bind(("127.0.0.1", 0))
        writer_sock.listen(128)
        self.writer_port = writer_sock.getsockname()[1]

        self.publisher = SnapshotPublisher(
            service,
            num_workers=workers,
            grace_period=grace_period,
            registry=service.registry,
        )
        self.publisher.publish()
        # Expose the publisher on the service so the stats/health paths
        # (net server, obs.health) can report the snapshot plane.
        service.shm_publisher = self.publisher

        self.writer_server = ReachabilityServer(
            service,
            host="127.0.0.1",
            max_pending=max_pending,
            max_batch=max_batch,
            batch_delay=batch_delay,
            drain_timeout=drain_timeout,
            slowlog=slowlog,
            sock=writer_sock,
        )

        env = _child_env()
        fd = self._public.fileno()
        self._workers = [
            _Worker(
                i,
                [
                    sys.executable, "-m", "repro", "serve-worker",
                    "--fd", str(fd),
                    "--control", self.publisher.control_name,
                    "--writer-port", str(self.writer_port),
                    "--worker-id", str(i),
                ],
                env,
                fd,
            )
            for i in range(workers)
        ]
        self._stopping: Optional[asyncio.Event] = None
        self._failed = False

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    async def _supervise(self) -> None:
        registry = self.service.registry
        total_restarts = 0
        while not self._stopping.is_set():
            for worker in self._workers:
                code = worker.poll()
                if worker.proc is not None and code is not None:
                    worker.restarts += 1
                    total_restarts += 1
                    registry.incr("net.worker_restarts")
                    print(
                        f"worker {worker.worker_id} exited with code "
                        f"{code}; respawning "
                        f"(restart #{worker.restarts})",
                        flush=True,
                    )
                    if total_restarts > self.workers * MAX_RESTARTS_PER_WORKER:
                        print(
                            "workers are crash-looping; shutting down",
                            flush=True,
                        )
                        self._failed = True
                        self._stopping.set()
                        return
                    worker.spawn()
            try:
                await asyncio.wait_for(self._stopping.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                pass

    async def run(self, *, port_file: Optional[str] = None,
                  on_ready=None) -> int:
        """Serve until SIGTERM/SIGINT; returns a process exit code."""
        self._stopping = asyncio.Event()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stopping.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

        await self.writer_server.start()
        self.publisher.start(self.publish_interval)
        for worker in self._workers:
            worker.spawn()
        # Only declare readiness once every worker has registered its
        # control-block slot — the port file is the "ready" signal for
        # clients, and a stats/health probe right after it appears
        # should see the full roster.
        await self._await_workers_registered()
        if port_file:
            Path(port_file).write_text(f"{self.port}\n")
        if on_ready is not None:
            on_ready(self)

        supervisor = asyncio.ensure_future(self._supervise())
        try:
            await self._stopping.wait()
        finally:
            supervisor.cancel()
            try:
                await supervisor
            except asyncio.CancelledError:
                pass
            await self._shutdown()
        return 1 if self._failed else 0

    async def _await_workers_registered(self, timeout: float = 15.0) -> None:
        """Wait (bounded) until every worker slot carries a live pid.

        The public socket accepts from the first instant (connections
        queue in the backlog), but a ``stats``/``health`` probe that
        lands before a worker writes its control-block slot would show
        a half-empty roster.  A worker that dies during the wait is
        left to the supervisor; the bound keeps a crash-looping spawn
        from stalling startup forever.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and not self._stopping.is_set():
            stats = self.control_block_workers()
            if len(stats) == self.workers and all(
                s["pid"] > 0 for s in stats
            ):
                return
            if any(w.poll() is not None for w in self._workers):
                return  # dead already; supervisor owns respawning
            await asyncio.sleep(0.05)

    def control_block_workers(self) -> list:
        return self.publisher.control.workers()

    async def _shutdown(self) -> None:
        # Readers first: each drains its own connections on SIGTERM.
        for worker in self._workers:
            worker.terminate()
        deadline = time.monotonic() + 10.0
        for worker in self._workers:
            worker.wait(max(0.1, deadline - time.monotonic()))
        try:
            self._public.close()
        except OSError:  # pragma: no cover
            pass
        await self.writer_server.shutdown()
        self.publisher.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def worker_pids(self) -> list:
        return [w.pid for w in self._workers]

    def restarts(self) -> int:
        return sum(w.restarts for w in self._workers)
