"""A blocking client for the :mod:`repro.net` wire protocol.

Deliberately synchronous: the consumers are scripts, tests and the
load-generator worker *processes* — none of which want an event loop.
One socket, serial request/response, structured errors re-raised as the
library's own exception types (:class:`~repro.errors.UnknownVertexError`,
:class:`~repro.errors.SerializationError`,
:class:`~repro.errors.OverloadedError`, ...), so calling over the wire
feels like calling :class:`~repro.service.server.ReachabilityService`
in-process — just with an ``epoch``/``degraded`` stamp on every batch
reply.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Optional

from ..core.ops import UpdateOp
from ..errors import ProtocolError
from ..obs.trace import new_trace_id
from .protocol import (
    PROTOCOL_VERSION,
    encode_update_ops,
    raise_for_error,
    recv_frame_file,
    send_frame_sync,
)

__all__ = ["BatchReply", "ReachabilityClient"]


@dataclass(frozen=True)
class BatchReply:
    """A query-batch answer plus its consistency metadata.

    ``results`` are booleans in request order; ``epoch`` is the index
    version they are valid at; ``degraded`` says the server answered
    from its BFS mirror rather than the index.  ``trace`` is the request
    trace id the server saw (the one this client minted, or one minted
    at admission for v1-style requests); ``timings`` is the per-stage
    breakdown when the call opted in with ``timings=True``, else
    ``None``.
    """

    results: list[bool]
    epoch: int
    degraded: bool
    trace: Optional[str] = None
    timings: Optional[dict] = None

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class ReachabilityClient:
    """Blocking TCP client speaking protocol v2 (trace-aware).

    Usable as a context manager; not thread-safe (one socket, serial
    framing) — give each thread or process its own client.  Every query
    and update request carries a compact trace id (minted here unless
    the caller supplies one), which the server echoes on the reply and
    stamps on its own records — slow-query-log lines, WAL records,
    retry/quarantine events — so one id follows the request across
    process boundaries.

    Examples
    --------
    ::

        with ReachabilityClient("127.0.0.1", 7421) as client:
            client.query("a", "b")            # bool
            reply = client.query_many([("a", "b"), ("b", "a")])
            reply.results, reply.epoch, reply.degraded
            timed = client.query_many([("a", "b")], timings=True)
            timed.trace, timed.timings["lock_ms"]
    """

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Buffered read side: one recv typically yields a whole reply
        # frame (header + body), where raw recv pays two syscalls.
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def query(self, s, t) -> bool:
        """Answer one reachability query ``s -> t``."""
        return self.query_many([(s, t)]).results[0]

    def query_many(
        self, pairs, *, timings: bool = False, trace: Optional[str] = None
    ) -> BatchReply:
        """Answer a batch of ``(source, target)`` pairs in one frame.

        *timings=True* asks the server for the stage breakdown
        (admission wait, coalesce wait, lock wait, probe time, cache
        hits/misses) on :attr:`BatchReply.timings`.  *trace* propagates
        an existing trace id instead of minting a fresh one — pass it
        when this query is part of a larger traced operation.
        """
        request = {
            "op": "query",
            "pairs": [[s, t] for s, t in pairs],
            "trace": trace or new_trace_id(),
        }
        if timings:
            request["timings"] = True
        payload = self._call(request)
        return BatchReply(
            results=list(payload["results"]),
            epoch=payload["epoch"],
            degraded=payload.get("degraded", False),
            trace=payload.get("trace"),
            timings=payload.get("timings"),
        )

    def apply(self, op: UpdateOp, *, trace: Optional[str] = None) -> int:
        """Apply one :class:`~repro.core.ops.UpdateOp`; return ops accepted."""
        return self.apply_batch([op], trace=trace)

    def apply_batch(self, ops, *, trace: Optional[str] = None) -> int:
        """Apply :class:`~repro.core.ops.UpdateOp` values in one frame;
        return the number accepted.

        This is the unified update entry point, mirroring
        :meth:`ReachabilityService.apply_batch` server-side.  Passing
        raw pre-encoded wire dicts still works but is deprecated —
        construct :class:`UpdateOp` values instead.  The batch's trace
        id (minted here unless *trace* is given) ends up on every WAL
        record the batch produces.
        """
        ops = encode_update_ops(ops)
        return self._call(
            {"op": "update", "ops": ops, "trace": trace or new_trace_id()}
        )["applied"]

    # Historical name for apply_batch.
    update = apply_batch

    def insert_vertex(self, v, in_neighbors=(), out_neighbors=()) -> int:
        """Convenience single-op update (routes through :meth:`apply`)."""
        return self.apply(UpdateOp.insert_vertex(v, in_neighbors, out_neighbors))

    def delete_vertex(self, v) -> int:
        """Convenience single-op update."""
        return self.apply(UpdateOp.delete_vertex(v))

    def insert_edge(self, tail, head) -> int:
        """Convenience single-op update."""
        return self.apply(UpdateOp.insert_edge(tail, head))

    def delete_edge(self, tail, head) -> int:
        """Convenience single-op update."""
        return self.apply(UpdateOp.delete_edge(tail, head))

    def ping(self) -> dict:
        """Round-trip liveness probe; returns the pong envelope."""
        return self._call({"op": "ping"})

    def stats(self) -> dict:
        """The server's :meth:`ReachabilityService.snapshot` dict."""
        return self._call({"op": "stats"})["stats"]

    def net_stats(self) -> dict:
        """The front end's own counters (requests, batches, shed, ...)."""
        return self._call({"op": "stats"})["net"]

    def registry_snapshot(self) -> dict:
        """The server's full metric-registry snapshot (for remote scraping).

        Everything :meth:`MetricRegistry.snapshot` reports — counters,
        gauges (including the ``health.*`` gauges when bound), histogram
        and stats summaries — as plain JSON.  ``repro metrics --connect``
        renders this.
        """
        return self._call({"op": "stats", "registry": True})["registry"]

    def health(self) -> dict:
        """The server's live index-health payload.

        Label-size distribution, order-quality score, scratch high-water
        marks, WAL lag, checkpoint age (see
        :func:`repro.obs.health.collect_health`).
        """
        return self._call({"op": "health"})["health"]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _call(self, fields: dict) -> dict:
        self._next_id += 1
        request = {"v": PROTOCOL_VERSION, "id": self._next_id}
        request.update(fields)
        send_frame_sync(self._sock, request)
        response = recv_frame_file(self._rfile)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.get("id") not in (None, self._next_id):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            raise_for_error(response.get("error", {}))
        return response

    def close(self) -> None:
        """Close the socket (idempotent)."""
        for closer in (self._rfile, self._sock):
            try:
                closer.close()
            except OSError:
                pass

    def __enter__(self) -> "ReachabilityClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.host!r}, {self.port})"
