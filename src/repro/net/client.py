"""A blocking client for the :mod:`repro.net` wire protocol.

Deliberately synchronous: the consumers are scripts, tests and the
load-generator worker *processes* — none of which want an event loop.
One socket, serial request/response, structured errors re-raised as the
library's own exception types (:class:`~repro.errors.UnknownVertexError`,
:class:`~repro.errors.SerializationError`,
:class:`~repro.errors.OverloadedError`, ...), so calling over the wire
feels like calling :class:`~repro.service.server.ReachabilityService`
in-process — just with an ``epoch``/``degraded`` stamp on every batch
reply.

Since the failover rework the client is also the resilience boundary:

* **reconnect-on-reset** — a server restart used to surface as a raw
  ``ConnectionResetError``/``BrokenPipeError``; now the client dials a
  fresh socket and retries, so a supervised respawn is invisible to
  idempotent callers;
* **bounded retries with jittered backoff** — transport failures only;
  structured server errors (``overloaded``, ``writer_unavailable``,
  ``unknown_vertex``, ...) are the caller's to handle and are never
  retried here;
* **per-request deadlines** — ``deadline=`` caps the whole attempt
  loop (connect + send + recv + backoff), raising
  :class:`~repro.errors.DeadlineExceededError` when the budget runs
  out;
* **a circuit breaker** — after ``breaker_threshold`` *consecutive*
  transport failures the client fails fast with
  :class:`~repro.errors.CircuitOpenError` for ``breaker_reset``
  seconds instead of hammering a dead endpoint.

Updates are the one non-idempotent op: they are retried **only when
the send itself failed** (no byte of the request reached the kernel's
send buffer), because a reply lost after a successful send could mean
the batch was applied — retrying would double-apply it.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Optional

from ..core.ops import UpdateOp
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
)
from ..obs.trace import new_trace_id
from .protocol import (
    PROTOCOL_VERSION,
    encode_update_ops,
    raise_for_error,
    recv_frame_file,
    send_frame_sync,
)

__all__ = ["BatchReply", "ReachabilityClient"]


@dataclass(frozen=True)
class BatchReply:
    """A query-batch answer plus its consistency metadata.

    ``results`` are booleans in request order; ``epoch`` is the index
    version they are valid at; ``degraded`` says the server answered
    from its BFS mirror rather than the index.  ``trace`` is the request
    trace id the server saw (the one this client minted, or one minted
    at admission for v1-style requests); ``timings`` is the per-stage
    breakdown when the call opted in with ``timings=True``, else
    ``None``.  ``stale_ms`` is set (milliseconds) when a multi-process
    reader answered from its last snapshot while the writer was down —
    the bounded-staleness contract made visible.
    """

    results: list[bool]
    epoch: int
    degraded: bool
    trace: Optional[str] = None
    timings: Optional[dict] = None
    stale_ms: Optional[float] = None

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class _Attempt(Exception):
    """Internal: one transport attempt failed; carries whether the
    request had already been (at least partially) sent."""

    def __init__(self, cause: BaseException, *, sent: bool) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.sent = sent


class ReachabilityClient:
    """Blocking TCP client speaking protocol v2 (trace-aware).

    Usable as a context manager; not thread-safe (one socket, serial
    framing) — give each thread or process its own client.  Every query
    and update request carries a compact trace id (minted here unless
    the caller supplies one), which the server echoes on the reply and
    stamps on its own records — slow-query-log lines, WAL records,
    retry/quarantine events — so one id follows the request across
    process boundaries.

    Resilience knobs (see the module docstring for semantics):

    ``retries``
        Extra transport attempts per request after the first
        (default 2; 0 restores the old fail-on-first-reset behaviour).
    ``backoff`` / ``backoff_max``
        Base and cap of the jittered exponential backoff between
        attempts, in seconds.
    ``breaker_threshold`` / ``breaker_reset``
        Consecutive transport failures that open the circuit, and how
        long it stays open.  ``breaker_threshold=0`` disables the
        breaker.

    Examples
    --------
    ::

        with ReachabilityClient("127.0.0.1", 7421) as client:
            client.query("a", "b")            # bool
            reply = client.query_many([("a", "b"), ("b", "a")])
            reply.results, reply.epoch, reply.degraded
            timed = client.query_many([("a", "b")], timings=True)
            timed.trace, timed.timings["lock_ms"]
            client.query_many([("a", "b")], deadline=0.25)
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_max: float = 1.0,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self._rng = random.Random()
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        #: Local resilience counters (inspected by the load generator's
        #: availability report and by tests).
        self.resilience = {
            "reconnects": 0,
            "retries": 0,
            "breaker_opens": 0,
        }
        # Eager connect: constructing a client against a dead endpoint
        # should fail here, not on the first call (tests and scripts
        # use this as the "is the server up yet?" probe).
        self._connect(self._deadline_from(None))

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def query(self, s, t, *, deadline: Optional[float] = None) -> bool:
        """Answer one reachability query ``s -> t``."""
        return self.query_many([(s, t)], deadline=deadline).results[0]

    def query_many(
        self,
        pairs,
        *,
        timings: bool = False,
        trace: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> BatchReply:
        """Answer a batch of ``(source, target)`` pairs in one frame.

        *timings=True* asks the server for the stage breakdown
        (admission wait, coalesce wait, lock wait, probe time, cache
        hits/misses) on :attr:`BatchReply.timings`.  *trace* propagates
        an existing trace id instead of minting a fresh one — pass it
        when this query is part of a larger traced operation.
        *deadline* caps the whole call (all transport attempts and
        backoff) at that many seconds.
        """
        request = {
            "op": "query",
            "pairs": [[s, t] for s, t in pairs],
            "trace": trace or new_trace_id(),
        }
        if timings:
            request["timings"] = True
        payload = self._call(request, deadline=deadline)
        return BatchReply(
            results=list(payload["results"]),
            epoch=payload["epoch"],
            degraded=payload.get("degraded", False),
            trace=payload.get("trace"),
            timings=payload.get("timings"),
            stale_ms=payload.get("stale_ms"),
        )

    def apply(
        self, op: UpdateOp, *, trace: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Apply one :class:`~repro.core.ops.UpdateOp`; return ops accepted."""
        return self.apply_batch([op], trace=trace, deadline=deadline)

    def apply_batch(
        self, ops, *, trace: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Apply :class:`~repro.core.ops.UpdateOp` values in one frame;
        return the number accepted.

        This is the unified update entry point, mirroring
        :meth:`ReachabilityService.apply_batch` server-side.  Passing
        raw pre-encoded wire dicts still works but is deprecated —
        construct :class:`UpdateOp` values instead.  The batch's trace
        id (minted here unless *trace* is given) ends up on every WAL
        record the batch produces.

        Updates are **not** idempotent: the client retries only when
        the send itself failed, never after a reply went missing (the
        server may have applied the batch).
        """
        ops = encode_update_ops(ops)
        return self._call(
            {"op": "update", "ops": ops, "trace": trace or new_trace_id()},
            deadline=deadline,
            idempotent=False,
        )["applied"]

    # Historical name for apply_batch.
    update = apply_batch

    def insert_vertex(self, v, in_neighbors=(), out_neighbors=()) -> int:
        """Convenience single-op update (routes through :meth:`apply`)."""
        return self.apply(UpdateOp.insert_vertex(v, in_neighbors, out_neighbors))

    def delete_vertex(self, v) -> int:
        """Convenience single-op update."""
        return self.apply(UpdateOp.delete_vertex(v))

    def insert_edge(self, tail, head) -> int:
        """Convenience single-op update."""
        return self.apply(UpdateOp.insert_edge(tail, head))

    def delete_edge(self, tail, head) -> int:
        """Convenience single-op update."""
        return self.apply(UpdateOp.delete_edge(tail, head))

    def ping(self, *, deadline: Optional[float] = None) -> dict:
        """Round-trip liveness probe; returns the pong envelope."""
        return self._call({"op": "ping"}, deadline=deadline)

    def stats(self) -> dict:
        """The server's :meth:`ReachabilityService.snapshot` dict."""
        return self._call({"op": "stats"})["stats"]

    def net_stats(self) -> dict:
        """The front end's own counters (requests, batches, shed, ...)."""
        return self._call({"op": "stats"})["net"]

    def registry_snapshot(self) -> dict:
        """The server's full metric-registry snapshot (for remote scraping).

        Everything :meth:`MetricRegistry.snapshot` reports — counters,
        gauges (including the ``health.*`` gauges when bound), histogram
        and stats summaries — as plain JSON.  ``repro metrics --connect``
        renders this.
        """
        return self._call({"op": "stats", "registry": True})["registry"]

    def health(self) -> dict:
        """The server's live index-health payload.

        Label-size distribution, order-quality score, scratch high-water
        marks, WAL lag, checkpoint age (see
        :func:`repro.obs.health.collect_health`).
        """
        return self._call({"op": "health"})["health"]

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------

    def _deadline_from(self, deadline: Optional[float]) -> Optional[float]:
        """Absolute monotonic deadline for one request, or ``None``."""
        budget = deadline if deadline is not None else self.timeout
        if budget is None:
            return None
        return time.monotonic() + budget

    def _remaining(self, until: Optional[float]) -> Optional[float]:
        if until is None:
            return None
        left = until - time.monotonic()
        if left <= 0:
            raise DeadlineExceededError(
                f"request deadline exceeded talking to "
                f"{self.host}:{self.port}"
            )
        return left

    def _connect(self, until: Optional[float]) -> None:
        """(Re)dial the server; replaces any existing socket."""
        self._drop_socket()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self._remaining(until)
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Buffered read side: one recv typically yields a whole reply
        # frame (header + body), where raw recv pays two syscalls.
        self._rfile = self._sock.makefile("rb")

    def _drop_socket(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None

    def _check_breaker(self) -> None:
        if self.breaker_threshold <= 0:
            return
        now = time.monotonic()
        if now < self._breaker_open_until:
            raise CircuitOpenError(
                f"circuit breaker open for {self.host}:{self.port} "
                f"after {self._breaker_failures} consecutive transport "
                "failures",
                retry_after_ms=(self._breaker_open_until - now) * 1e3,
            )

    def _record_transport_failure(self) -> None:
        self._breaker_failures += 1
        if (
            self.breaker_threshold > 0
            and self._breaker_failures >= self.breaker_threshold
        ):
            self._breaker_open_until = time.monotonic() + self.breaker_reset
            self.resilience["breaker_opens"] += 1

    def _attempt(self, request: dict, until: Optional[float]) -> dict:
        """One send/recv round; raises :class:`_Attempt` on transport
        failure with ``sent`` recording whether bytes left this process."""
        if self._sock is None:
            try:
                self._connect(until)
            except OSError as exc:
                raise _Attempt(exc, sent=False) from exc
            self.resilience["reconnects"] += 1
        sent = False
        try:
            self._sock.settimeout(self._remaining(until))
            send_frame_sync(self._sock, request)
            sent = True
            response = recv_frame_file(self._rfile)
        except (OSError, EOFError) as exc:
            # TimeoutError is an OSError: a timed-out socket is also a
            # *corrupt* one (the reply may still arrive later), so every
            # transport failure drops the connection.
            raise _Attempt(exc, sent=sent) from exc
        except ProtocolError as exc:
            # A ProtocolError out of the recv path (mid-frame cut,
            # undecodable body) means the stream is hosed — transport
            # failure, not a server verdict.
            raise _Attempt(exc, sent=sent) from exc
        if response is None:
            raise _Attempt(
                ProtocolError("server closed the connection mid-request"),
                sent=True,
            )
        return response

    def _call(
        self,
        fields: dict,
        *,
        deadline: Optional[float] = None,
        idempotent: bool = True,
    ) -> dict:
        self._check_breaker()
        until = self._deadline_from(deadline)
        attempt = 0
        while True:
            self._next_id += 1
            request = {"v": PROTOCOL_VERSION, "id": self._next_id}
            request.update(fields)
            try:
                response = self._attempt(request, until)
            except _Attempt as failure:
                self._drop_socket()
                self._record_transport_failure()
                if isinstance(failure.cause, DeadlineExceededError):
                    raise failure.cause
                # Non-idempotent requests whose bytes reached the wire
                # must not be replayed: the server may have applied them.
                retryable = idempotent or not failure.sent
                if not retryable or attempt >= self.retries:
                    raise self._transport_error(failure.cause)
                attempt += 1
                self.resilience["retries"] += 1
                self._sleep_backoff(attempt, until)
                continue
            # A parsed reply — transport is healthy again.
            self._breaker_failures = 0
            self._breaker_open_until = 0.0
            if response.get("id") not in (None, self._next_id):
                raise ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {self._next_id}"
                )
            if not response.get("ok"):
                # Structured server errors are never retried here: the
                # server is alive and said no (overloaded, unknown
                # vertex, writer_unavailable...) — policy belongs to
                # the caller.
                raise_for_error(response.get("error", {}))
            return response

    def _sleep_backoff(self, attempt: int, until: Optional[float]) -> None:
        delay = min(self.backoff * (2 ** (attempt - 1)), self.backoff_max)
        delay *= 0.5 + self._rng.random() * 0.5  # full-jitter halves
        if until is not None:
            delay = min(delay, max(0.0, self._remaining(until)))
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _transport_error(cause: BaseException) -> BaseException:
        if isinstance(cause, TimeoutError):
            return DeadlineExceededError(f"request timed out: {cause}")
        if isinstance(cause, ProtocolError):
            return cause
        return ProtocolError(
            f"transport failure: {type(cause).__name__}: {cause}"
        )

    def close(self) -> None:
        """Close the socket (idempotent)."""
        self._drop_socket()

    def __enter__(self) -> "ReachabilityClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.host!r}, {self.port})"
