"""Reader-worker process: serve queries from the shared snapshot.

Each worker is a separate process spawned by :mod:`repro.net.multiproc`
with two inherited handles: the already-listening public TCP socket
(all workers share it; the kernel load-balances accepts) and the name of
the shared-memory control block.  The worker answers ``query`` and
``ping`` inline from the attached :class:`~repro.shm.reader.
AttachedSnapshot` — no executor hop, no cross-request batching; the
snapshot is immutable so a query is just dict lookups and bisects over
shared buffers.

Because every client connection is strictly serial (one request in
flight at a time — the protocol has no pipelining) and the fast path is
fully synchronous, the worker does not run an event loop at all: it is
a blocking accept loop handing each connection to a thread that does
``recv`` → compute → ``sendall``.  Threads parked in ``recv`` cost
nothing, the GIL is irrelevant on the saturated single-core boxes this
targets (at most one request is computing anyway), and cutting the
event-loop machinery — task scheduling, epoll registration, stream
buffering — roughly halves the per-request CPU next to the asyncio
front end the single-process server uses.  That per-request efficiency,
not parallelism, is where the multi-process speedup comes from on a
small host; on a many-core host the N processes parallelize on top.

Everything the snapshot cannot answer is forwarded verbatim to the
writer process over a private loopback connection and the writer's
reply relayed unchanged (ids and trace ids survive the hop):

* ``update`` — only the writer mutates;
* ``stats`` / ``health`` — the writer owns the service and the
  publisher (the per-worker breakdown lives in the control block);
* queries while the control block's degraded flag is set — the writer
  serves those from its BFS mirror;
* queries naming vertices the snapshot does not know — the live index
  may have learned them after the snapshot was frozen.

A forward runs in the connection's own thread, so per-connection reply
order is preserved by construction.

Writer outage (docs/robustness.md): when the writer process is dead or
restarting, snapshot-answerable queries keep flowing in
**bounded-staleness mode** — replies carry a ``stale_ms`` stamp, and
``--max-staleness`` (seconds; 0 = unbounded) turns answers older than
the bound into ``writer_unavailable`` errors instead.  Forwarded ops
fail fast with a structured ``writer_unavailable`` error carrying a
``retry_after_ms`` hint — the connection survives; the supervisor is
already respawning the writer.  Liveness comes from the writer pid the
control block carries (cleared by the supervisor the moment it reaps a
dead writer), probed at most every 50 ms so the hot path stays
syscall-free.

Replies are stamped with the snapshot's epoch.  Per-connection epoch
monotonicity holds because the worker only ever moves to *newer*
generations and the writer's epoch is ≥ any published one.

A per-snapshot answer memo (cleared on re-attach, size-capped) plays
the role the epoch-LRU cache plays in the single-process service:
under a Zipf-skewed load most pairs repeat, and the memo turns them
into one dict probe.
"""

from __future__ import annotations

import gc
import os
import signal
import socket
import struct
import threading
import time

from ..errors import ProtocolError, SnapshotError, WriterUnavailableError
from ..obs.registry import MetricRegistry
from ..obs.trace import new_trace_id
from ..service.metrics import ScopedMetrics
from ..shm.control import (
    SLOT_ATTACH_TS,
    SLOT_EPOCH,
    SLOT_FORWARDED,
    SLOT_GENERATION,
    SLOT_PID,
    SLOT_REQUESTS,
)
from ..shm.reader import SnapshotReader
from .protocol import (
    MAX_FRAME_BYTES,
    SUPPORTED_VERSIONS,
    decode_payload,
    encode_frame,
    error_fields_for,
    error_response,
    ok_response,
    recv_frame_file,
    send_frame_sync,
    wire_pairs,
)

__all__ = ["run_reader_worker"]

#: Per-snapshot answer memo bound (entries, i.e. distinct pairs).
MEMO_LIMIT = 200_000

#: Per-connection receive chunk — one recv typically drains one frame.
_RECV_CHUNK = 65536

_HEADER = struct.Struct("!I")


class _WriterLink:
    """A lazy, lock-serialized frame pipe to the writer process.

    *timeout* bounds the connect and every send/recv: the supervisor
    holds the writer's listening fd, so while the writer is dead a
    connect *succeeds* and the request then sits in the backlog — only
    a deadline gets the calling thread back.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile = None
        self._lock = threading.Lock()

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def _drop(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = None
        self._rfile = None

    def forward(self, request: dict) -> dict:
        """Round-trip *request* to the writer; one reconnect on a dead pipe."""
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    self._connect()
                try:
                    send_frame_sync(self._sock, request)
                    reply = recv_frame_file(self._rfile)
                    if reply is None:
                        raise ConnectionResetError("writer closed the pipe")
                    return reply
                except (OSError, ProtocolError):
                    self._drop()
                    if attempt:
                        raise
            raise ConnectionResetError("unreachable")  # pragma: no cover

    def close(self) -> None:
        with self._lock:
            self._drop()


class _ReaderWorker:
    def __init__(
        self,
        *,
        listen_fd: int,
        control_name: str,
        writer_host: str,
        writer_port: int,
        worker_id: int,
        max_staleness: float = 0.0,
        forward_timeout: float = 5.0,
    ) -> None:
        self.worker_id = worker_id
        self.max_staleness = max_staleness
        self.sock = socket.socket(fileno=listen_fd)
        self.reader = SnapshotReader(control_name)
        self.link = _WriterLink(writer_host, writer_port,
                                timeout=forward_timeout)
        self.registry = MetricRegistry()
        self.metrics = ScopedMetrics(self.registry, prefix="net.")
        self.slot = self.reader.control.worker_cells(worker_id)
        self.slot[SLOT_PID] = os.getpid()
        self._memo: dict = {}
        self._memo_generation = -1
        self._attach_lock = threading.Lock()
        self._requests = 0
        self._forwarded = 0
        self._stopping = threading.Event()
        # Cached writer-liveness probe (a signal-0 syscall): refreshed
        # at most every 50 ms so the per-request hot path stays free of
        # it while outage detection stays prompt.
        self._writer_alive_cached = True
        self._writer_checked = 0.0

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _snapshot(self):
        snap = self.reader.current()
        if snap.generation != self._memo_generation:
            # Connection threads race here on a republish; the lock only
            # serializes the (rare) re-attach bookkeeping, never queries.
            with self._attach_lock:
                if snap.generation != self._memo_generation:
                    self._memo = {}
                    self._memo_generation = snap.generation
                    self.slot[SLOT_GENERATION] = snap.generation
                    self.slot[SLOT_EPOCH] = snap.epoch
                    self.slot[SLOT_ATTACH_TS] = snap.attached_at_ns
        return snap

    def _writer_alive(self) -> bool:
        now = time.monotonic()
        if now - self._writer_checked >= 0.05:
            self._writer_checked = now
            self._writer_alive_cached = self.reader.control.writer_alive()
        return self._writer_alive_cached

    def _dispatch(self, request: dict) -> dict:
        """Answer one request (inline or via the writer). Never raises."""
        self._requests += 1
        self.slot[SLOT_REQUESTS] = self._requests
        request_id = request.get("id")
        try:
            version = request.get("v", SUPPORTED_VERSIONS[-1])
            if version not in SUPPORTED_VERSIONS:
                supported = "/".join(f"v{v}" for v in SUPPORTED_VERSIONS)
                return error_response(
                    request_id,
                    "unsupported_version",
                    f"server speaks {supported}, got v{version!r}",
                )
            op = request.get("op")
            if op == "query":
                response = self._fast_query(request_id, request)
                if response is None:
                    response = self._forward(request)
                return response
            if op == "ping":
                try:
                    snap = self._snapshot()
                    epoch = snap.epoch
                except SnapshotError:
                    epoch = 0
                return ok_response(
                    request_id,
                    pong=True,
                    epoch=epoch,
                    degraded=self.reader.degraded,
                    worker=self.worker_id,
                )
            if op in ("update", "stats", "health"):
                return self._forward(request)  # writer-owned
            return error_response(
                request_id, "unknown_op", f"unknown op {op!r}"
            )
        except WriterUnavailableError as exc:
            self.metrics.incr("writer_unavailable")
            return error_response(request_id, **error_fields_for(exc))
        except ProtocolError as exc:
            self.metrics.incr("errors")
            return error_response(request_id, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            self.metrics.incr("errors")
            return error_response(request_id, **error_fields_for(exc))

    def _fast_query(self, request_id, request: dict):
        """Snapshot-plane answer, or ``None`` when the writer must."""
        if self.reader.degraded:
            # The index is rebuilding; the writer's BFS mirror is the
            # only correct answer source.
            return None
        start = time.perf_counter() if request.get("timings") else 0.0
        pairs = wire_pairs(request.get("pairs"))
        try:
            snap = self._snapshot()
        except SnapshotError:
            # No attachable snapshot (corrupt segment, stalled seqlock,
            # nothing published) and nothing held to stale-serve: the
            # writer's live index is the fallback plane.
            return None
        trace = request.get("trace")
        if not isinstance(trace, str) or not trace:
            trace = new_trace_id()
        memo = self._memo
        comp_of = snap.component_of
        frozen_query = snap.frozen.query
        results = []
        append = results.append
        try:
            for pair in pairs:
                r = memo.get(pair)
                if r is None:
                    s, t = pair
                    cs = comp_of[s]
                    ct = comp_of[t]
                    r = cs == ct or frozen_query(cs, ct)
                    if len(memo) < MEMO_LIMIT:
                        memo[pair] = r
                append(r)
        except (KeyError, TypeError):
            # A vertex the snapshot has never heard of (or an unhashable
            # one): the live index may know better — let the writer
            # answer the whole request.
            return None
        response = ok_response(
            request_id, results=results, epoch=snap.epoch, degraded=False,
            trace=trace,
        )
        if not self._writer_alive():
            # Bounded-staleness mode: the snapshot cannot advance while
            # the writer is down, so stamp how old the answers are, and
            # refuse them entirely past the operator's bound.
            stale_ms = snap.age_ms()
            if (
                self.max_staleness > 0
                and stale_ms > self.max_staleness * 1000.0
            ):
                self.metrics.incr("staleness_refused")
                return error_response(
                    request_id,
                    "writer_unavailable",
                    f"snapshot is {stale_ms:.0f}ms stale, past the "
                    f"{self.max_staleness}s bound, and the writer is down",
                    retry_after_ms=500.0,
                )
            response["stale_ms"] = round(stale_ms, 1)
        if start:
            elapsed_ms = round((time.perf_counter() - start) * 1e3, 4)
            response["timings"] = {
                "probe_ms": elapsed_ms,
                "total_ms": elapsed_ms,
                "worker": self.worker_id,
                "generation": snap.generation,
            }
        return response

    def _forward(self, request: dict) -> dict:
        if not self.reader.control.writer_alive():
            # Uncached probe: forwards are rare and the fast-fail must
            # not lag recovery.  The supervisor zeroes the pid the
            # moment it reaps a dead writer; the respawned writer
            # re-registers before it starts accepting.
            raise WriterUnavailableError(
                "writer process is down; the supervisor is respawning it"
            )
        self._forwarded += 1
        self.slot[SLOT_FORWARDED] = self._forwarded
        self.metrics.incr("forwarded")
        try:
            return self.link.forward(request)
        except (OSError, ProtocolError) as exc:
            # Both attempts (including one reconnect) failed: the writer
            # died mid-conversation or is wedged past the timeout.
            raise WriterUnavailableError(
                f"writer connection failed ({type(exc).__name__}: {exc})"
            ) from exc

    # ------------------------------------------------------------------
    # Serving loop (blocking sockets, one thread per connection)
    # ------------------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        self.metrics.incr("connections")
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        buf = bytearray()
        unpack_len = _HEADER.unpack_from
        recv_into = conn.recv
        send = conn.sendall
        try:
            while not self._stopping.is_set():
                # Parse every complete frame already buffered before
                # blocking in recv again.
                while True:
                    if len(buf) < 4:
                        break
                    (length,) = unpack_len(buf)
                    if length > MAX_FRAME_BYTES:
                        raise ProtocolError(
                            f"frame length {length} exceeds max "
                            f"{MAX_FRAME_BYTES}"
                        )
                    end = 4 + length
                    if len(buf) < end:
                        break
                    body = bytes(buf[4:end])
                    del buf[:end]
                    send(encode_frame(self._dispatch(decode_payload(body))))
                chunk = recv_into(_RECV_CHUNK)
                if not chunk:
                    return  # clean EOF
                buf += chunk
        except ProtocolError as exc:
            # Unrecoverable framing: best-effort structured reply, then
            # hang up — resync inside a byte stream is not possible.
            self.metrics.incr("errors")
            try:
                send(encode_frame(error_response(None, "bad_request",
                                                 str(exc))))
            except OSError:
                pass
        except OSError:
            pass  # peer went away mid-frame
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _stop(self, *_args) -> None:
        self._stopping.set()
        # Unblock the accept loop; a closed listening socket raises
        # OSError there, which is the shutdown signal.
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def _start_ppid_watchdog(self, interval: float = 1.0) -> None:
        """Exit when the supervisor disappears (it cannot signal us then).

        Without this, a SIGKILLed supervisor leaves workers holding the
        public port forever — the next server cannot bind it and the
        shm janitor cannot reap the family (worker pids are alive).
        """
        parent = os.getppid()

        def watch() -> None:
            while not self._stopping.is_set():
                time.sleep(interval)
                if os.getppid() != parent:
                    self._stop()
                    return

        threading.Thread(target=watch, name="ppid-watchdog",
                         daemon=True).start()

    def run(self) -> int:
        signal.signal(signal.SIGTERM, self._stop)
        signal.signal(signal.SIGINT, self._stop)
        self._start_ppid_watchdog()
        # Attach eagerly so the first request doesn't pay the attach and
        # the parent's health report shows the worker immediately.  A
        # worker respawned mid-outage may find nothing attachable yet;
        # it still serves (forwarding, attach-on-demand).
        try:
            self._snapshot()
        except SnapshotError:
            pass
        # The worker's long-lived heap is immutable (code, the attached
        # snapshot, the memo's tuples/bools); per-request garbage is
        # acyclic and dies by refcount.  Freeze the baseline out of the
        # young generations and make collections rare so the cyclic GC
        # stops scanning the request path.
        gc.collect()
        gc.freeze()
        gc.set_threshold(100_000, 50, 50)
        # Accept with a timeout: a close() from the ppid watchdog's
        # thread does not wake a thread already blocked in accept() (a
        # signal would, but a dead supervisor cannot send one), so the
        # loop must come up for air to notice _stopping.  Accepted
        # connections are switched back to blocking by socket.accept().
        self.sock.settimeout(0.5)
        try:
            while not self._stopping.is_set():
                try:
                    conn, _addr = self.sock.accept()
                except TimeoutError:
                    continue  # re-check _stopping
                except OSError:
                    break  # listening socket closed by _stop
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    daemon=True,
                    name=f"conn-w{self.worker_id}",
                )
                thread.start()
        finally:
            self._stopping.set()
            try:
                self.sock.close()
            except OSError:
                pass
            self.link.close()
            self.slot.release()
            self.reader.close()
        return 0


def run_reader_worker(
    *,
    listen_fd: int,
    control_name: str,
    writer_host: str,
    writer_port: int,
    worker_id: int,
    max_staleness: float = 0.0,
    forward_timeout: float = 5.0,
) -> int:
    """Entry point for the hidden ``repro serve-worker`` subcommand."""
    worker = _ReaderWorker(
        listen_fd=listen_fd,
        control_name=control_name,
        writer_host=writer_host,
        writer_port=writer_port,
        worker_id=worker_id,
        max_staleness=max_staleness,
        forward_timeout=forward_timeout,
    )
    return worker.run()
