"""Multi-process load generator for the network serving subsystem.

Drives N independent **client processes** (real processes, not threads —
the point is to stress the server from outside its GIL) against a
running :mod:`repro.net` server.  Each worker owns one socket and one
seeded :class:`~repro.bench.workloads.ZipfianPairSource` and sends
query batches back-to-back until its deadline; the parent merges the
per-worker reports into one headline — aggregate qps, p50/p99 request
latency, shed/error counts — and can write it as the repo-root
``BENCH_serve.json`` artifact.

Two extras make the harness a correctness tool, not just a stopwatch:

* ``verify=True`` checks every admitted answer against a bidirectional
  BFS oracle over the same graph inside the worker, so an overload run
  demonstrates the admission-control contract: shed requests get a
  structured ``overloaded`` error while *admitted* ones stay correct;
* :func:`spawned_server` boots ``repro serve`` as a real subprocess
  (fresh interpreter, own signal handling) and tears it down with
  SIGTERM — which is also how the graceful-drain path gets exercised
  end-to-end in CI.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    NetworkError,
    OverloadedError,
    ReproError,
    WriterUnavailableError,
)
from .protocol import PROTOCOL_VERSION

__all__ = [
    "run_loadgen",
    "spawned_server",
    "SpawnedServer",
    "write_bench_json",
    "percentile",
    "CHAOS_MODES",
]

#: Per-worker cap on retained latency samples (reservoir-free: beyond
#: this, new samples stop being recorded and the count is flagged).
MAX_LATENCY_SAMPLES = 200_000

#: Chaos legs the parent can inject mid-run (``chaos=`` / ``--chaos``).
CHAOS_MODES = ("kill-writer",)

#: Width of the error-timeline buckets (seconds).  Outage windows are
#: measured against these, so the recovery-time resolution is one bucket.
BUCKET_S = 0.1


def _bucket_key(now: float) -> int:
    return int(now / BUCKET_S)


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    rank = max(1, int(q * len(sorted_values) + 0.999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ----------------------------------------------------------------------
# The worker (runs in a child process; keep everything picklable)
# ----------------------------------------------------------------------

def _worker_main(cfg: dict, out_queue) -> None:
    """One client process: Zipfian batches until the deadline."""
    from ..bench.workloads import ZipfianPairSource
    from .client import ReachabilityClient

    report = {
        "worker": cfg["worker"],
        "queries": 0,
        "requests": 0,
        "shed": 0,
        "errors": 0,
        "unavailable": 0,
        "stale_replies": 0,
        "degraded_replies": 0,
        "verify_failures": 0,
        "latencies": [],
        "shed_latencies": [],
        "buckets": {},
        "elapsed": 0.0,
        "fatal": None,
    }
    oracle = None
    oracle_cache: dict = {}
    if cfg.get("verify_edges") is not None:
        from ..graph.digraph import DiGraph
        from ..graph.traversal import forward_reachable

        graph = DiGraph()
        for v in cfg["vertices"]:
            graph.add_vertex(v)
        for tail, head in cfg["verify_edges"]:
            graph.add_edge(tail, head)

        # Cache the full descendant set per *source*: a Zipf-skewed
        # stream revisits head sources constantly, so one BFS per
        # source amortizes to a set-membership probe per pair — the
        # oracle must stay much cheaper than the server under test or
        # the measured qps is the harness, not the server.
        def oracle(s, t):
            reach = oracle_cache.get(s)
            if reach is None:
                # include_source: the server answers query(v, v) True.
                reach = oracle_cache[s] = forward_reachable(
                    graph, s, include_source=True
                )
            return t in reach

    try:
        source = ZipfianPairSource(
            cfg["vertices"], skew=cfg["skew"], seed=cfg["seed"]
        )
        client = ReachabilityClient(
            cfg["host"], cfg["port"], timeout=cfg["timeout"]
        )
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report["fatal"] = f"{type(exc).__name__}: {exc}"
        out_queue.put(report)
        return

    latencies = report["latencies"]
    shed_latencies = report["shed_latencies"]
    buckets = report["buckets"]

    def record(outcome_ok: bool) -> None:
        # 100ms availability timeline keyed by *wall-clock* bucket so
        # the parent can line every worker up against its chaos events.
        cell = buckets.setdefault(_bucket_key(time.time()), [0, 0])
        cell[0 if outcome_ok else 1] += 1

    start = time.monotonic()
    deadline = start + cfg["duration"]
    try:
        with client:
            while time.monotonic() < deadline:
                pairs = source.pairs(cfg["batch"])
                report["requests"] += 1
                t0 = time.perf_counter()
                try:
                    reply = client.query_many(pairs)
                except OverloadedError as exc:
                    # A shed reply is still a request the client waited
                    # on — its round-trip belongs in the headline
                    # percentiles, or overload runs under-report p99.
                    if len(shed_latencies) < MAX_LATENCY_SAMPLES:
                        shed_latencies.append(time.perf_counter() - t0)
                    report["shed"] += 1
                    # Shedding is admission control *working*, so it
                    # counts as available in the timeline.
                    record(True)
                    # Back off by the server's hint, capped so the
                    # flood keeps flooding during overload runs.
                    time.sleep(min(exc.retry_after_ms / 1e3, 0.02))
                    continue
                except (
                    WriterUnavailableError,
                    CircuitOpenError,
                    DeadlineExceededError,
                ) as exc:
                    # The serving plane said "not right now" — the
                    # chaos legs measure exactly these.
                    report["unavailable"] += 1
                    record(False)
                    hint = getattr(exc, "retry_after_ms", 10.0)
                    time.sleep(min(hint / 1e3, 0.05))
                    continue
                except ReproError:
                    report["errors"] += 1
                    record(False)
                    continue
                if len(latencies) < MAX_LATENCY_SAMPLES:
                    latencies.append(time.perf_counter() - t0)
                record(True)
                report["queries"] += len(reply.results)
                if reply.degraded:
                    report["degraded_replies"] += 1
                if reply.stale_ms is not None:
                    report["stale_replies"] += 1
                if oracle is not None:
                    for (s, t), got in zip(pairs, reply.results):
                        if got != oracle(s, t):
                            report["verify_failures"] += 1
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report["fatal"] = f"{type(exc).__name__}: {exc}"
    report["elapsed"] = time.monotonic() - start
    out_queue.put(report)


# ----------------------------------------------------------------------
# The parent orchestration
# ----------------------------------------------------------------------

def _chaos_kill_writer(
    host: str, port: int, duration: float, events: dict
) -> None:
    """Parent-side chaos leg: SIGKILL the writer mid-run, then poll the
    (forwarded) ``stats`` op until a *new* writer pid answers.

    Writes its observations into *events*: ``killed_pid`` / ``kill_at``
    when the kill lands, ``recovered_at`` / ``new_pid`` when the
    respawned writer answers, ``error`` if the leg could not run (e.g.
    the target is a single-process server with no writer subprocess).
    """
    import signal as _signal

    from .client import ReachabilityClient

    try:
        with ReachabilityClient(host, port, timeout=5.0) as probe:
            pid = probe._call({"op": "stats"}).get("writer_pid")
            if not pid:
                events["error"] = (
                    "server reported no writer_pid — chaos kill-writer "
                    "needs a multi-process (--workers) server"
                )
                return
            # Let the load reach steady state before pulling the plug.
            time.sleep(max(0.2, duration / 3.0))
            os.kill(int(pid), _signal.SIGKILL)
            events["killed_pid"] = int(pid)
            events["kill_at"] = time.time()
            deadline = time.monotonic() + duration + 30.0
            while time.monotonic() < deadline:
                try:
                    new_pid = probe._call({"op": "stats"}).get("writer_pid")
                except (ReproError, OSError):
                    new_pid = None  # writer_unavailable — still down
                if new_pid and int(new_pid) != int(pid):
                    events["recovered_at"] = time.time()
                    events["new_pid"] = int(new_pid)
                    return
                time.sleep(0.05)
    except Exception as exc:  # noqa: BLE001 - reported in the artifact
        events["error"] = f"{type(exc).__name__}: {exc}"


def run_loadgen(
    host: str,
    port: int,
    graph,
    *,
    clients: int = 4,
    duration: float = 5.0,
    batch: int = 16,
    skew: float = 1.1,
    seed: int = 0,
    verify: bool = False,
    timeout: float = 30.0,
    chaos: Optional[str] = None,
) -> dict:
    """Drive *clients* worker processes against ``host:port``.

    *graph* is the :class:`~repro.graph.digraph.DiGraph` the server was
    started on — the workers draw query endpoints from its vertex set
    (and, with ``verify=True``, check answers against BFS over it).

    *chaos* names a fault leg from :data:`CHAOS_MODES` the parent
    injects mid-run — ``"kill-writer"`` SIGKILLs the server's writer
    subprocess a third of the way in and measures the error rate during
    the outage plus the time until a respawned writer answers again.

    Returns the merged result dict (see :func:`write_bench_json` for the
    artifact shape).  Raises :class:`~repro.errors.NetworkError` if any
    worker died before completing its run.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if chaos is not None and chaos not in CHAOS_MODES:
        raise ValueError(
            f"unknown chaos mode {chaos!r}; expected one of {CHAOS_MODES}"
        )
    vertices = list(graph.vertices())
    edges = list(graph.edges()) if verify else None

    ctx = multiprocessing.get_context("spawn")
    out_queue = ctx.Queue()
    procs = []
    wall_start = time.monotonic()
    for i in range(clients):
        cfg = {
            "worker": i,
            "host": host,
            "port": port,
            "seed": seed * 10_007 + i,
            "duration": duration,
            "batch": batch,
            "skew": skew,
            "vertices": vertices,
            "verify_edges": edges,
            "timeout": timeout,
        }
        proc = ctx.Process(
            target=_worker_main, args=(cfg, out_queue), daemon=True
        )
        proc.start()
        procs.append(proc)

    chaos_events: dict = {}
    chaos_thread = None
    if chaos == "kill-writer":
        import threading

        chaos_thread = threading.Thread(
            target=_chaos_kill_writer,
            args=(host, port, duration, chaos_events),
            name="loadgen-chaos",
            daemon=True,
        )
        chaos_thread.start()

    reports = []
    join_deadline = time.monotonic() + duration + max(60.0, timeout)
    try:
        for _ in procs:
            remaining = join_deadline - time.monotonic()
            if remaining <= 0:
                raise NetworkError("load-generator workers timed out")
            reports.append(out_queue.get(timeout=remaining))
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
    if chaos_thread is not None:
        chaos_thread.join(timeout=45.0)
    wall = time.monotonic() - wall_start

    fatal = [r for r in reports if r["fatal"]]
    if fatal:
        details = "; ".join(
            f"worker {r['worker']}: {r['fatal']}" for r in fatal
        )
        raise NetworkError(f"load-generator worker(s) failed: {details}")

    admitted_latencies = sorted(
        lat for r in reports for lat in r["latencies"]
    )
    merged_latencies = sorted(
        admitted_latencies
        + [lat for r in reports for lat in r["shed_latencies"]]
    )
    totals = {
        key: sum(r[key] for r in reports)
        for key in (
            "queries", "requests", "shed", "errors", "unavailable",
            "stale_replies", "degraded_replies", "verify_failures",
        )
    }
    # Availability: the fraction of requests that got *an answer* —
    # admitted replies and structured sheds both count; transport
    # errors, deadline misses and writer_unavailable do not.
    failed = totals["errors"] + totals["unavailable"]
    availability = (
        1.0 - failed / totals["requests"] if totals["requests"] else None
    )
    # Merge the per-worker 100ms timelines (wall-clock bucket -> counts)
    # so chaos legs can cut an outage window across all clients.
    merged_buckets: dict = {}
    for r in reports:
        for key, (ok, bad) in r["buckets"].items():
            cell = merged_buckets.setdefault(int(key), [0, 0])
            cell[0] += ok
            cell[1] += bad

    chaos_result = None
    if chaos is not None:
        chaos_result = {"mode": chaos, "recovered": False}
        if "error" in chaos_events:
            chaos_result["error"] = chaos_events["error"]
        if "kill_at" in chaos_events:
            kill_at = chaos_events["kill_at"]
            recovered_at = chaos_events.get("recovered_at")
            chaos_result["killed_pid"] = chaos_events["killed_pid"]
            chaos_result["recovered"] = recovered_at is not None
            chaos_result["new_pid"] = chaos_events.get("new_pid")
            chaos_result["time_to_recovery_s"] = (
                round(recovered_at - kill_at, 3)
                if recovered_at is not None else None
            )
            first = _bucket_key(kill_at)
            last = _bucket_key(
                recovered_at if recovered_at is not None else time.time()
            )
            window = [
                cell for key, cell in merged_buckets.items()
                if first <= key <= last
            ]
            outage_requests = sum(ok + bad for ok, bad in window)
            outage_errors = sum(bad for _, bad in window)
            chaos_result["outage_requests"] = outage_requests
            chaos_result["outage_errors"] = outage_errors
            chaos_result["error_rate_during_outage"] = (
                outage_errors / outage_requests if outage_requests else None
            )
    # Workers run concurrently for the same window, so the aggregate
    # rate is the sum of per-worker rates (not total / parent wall,
    # which would charge process-spawn overhead to the server).
    qps = sum(
        r["queries"] / r["elapsed"] for r in reports if r["elapsed"] > 0
    )
    def _summary(sorted_ms):
        return {
            "p50": 1e3 * percentile(sorted_ms, 0.50),
            "p99": 1e3 * percentile(sorted_ms, 0.99),
            "mean": 1e3 * sum(sorted_ms) / len(sorted_ms),
            "max": 1e3 * sorted_ms[-1],
        }

    # Headline percentiles cover every request the client waited on —
    # shed replies included (a shed round-trip is latency the caller
    # paid).  The admitted-only view and the p99 delta are kept so
    # overload runs show how much shedding moved the headline.
    latency_ms = _summary(merged_latencies) if merged_latencies else None
    latency_ms_admitted = (
        _summary(admitted_latencies) if admitted_latencies else None
    )
    shed_p99_delta_ms = None
    if latency_ms is not None and latency_ms_admitted is not None:
        shed_p99_delta_ms = latency_ms["p99"] - latency_ms_admitted["p99"]

    # Best-effort server-side view: a multi-process server's stats op
    # carries the per-worker snapshot-plane breakdown (requests served
    # inline vs forwarded, attached generation/epoch); classic servers
    # simply lack the field and the artifact records ``None``.
    server_workers = None
    try:
        from .client import ReachabilityClient

        with ReachabilityClient(host, port, timeout=10.0) as client:
            server_workers = client._call({"op": "stats"}).get("workers")
    except (ReproError, OSError):
        pass
    return {
        "benchmark": "serve",
        "protocol_version": PROTOCOL_VERSION,
        "host": host,
        "port": port,
        "clients": clients,
        "duration_s": duration,
        "batch": batch,
        "skew": skew,
        "seed": seed,
        "verified": verify,
        "graph": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "totals": totals,
        "availability": availability,
        "chaos": chaos_result,
        "qps": qps,
        "latency_ms": latency_ms,
        "latency_ms_admitted": latency_ms_admitted,
        "shed_p99_delta_ms": shed_p99_delta_ms,
        "server_workers": server_workers,
        "wall_s": wall,
        "per_client": [
            {
                k: v
                for k, v in r.items()
                if k not in ("latencies", "shed_latencies", "buckets",
                             "fatal")
            }
            for r in reports
        ],
    }


def write_bench_json(result: dict, path) -> Path:
    """Write the loadgen result as the ``BENCH_serve.json`` artifact."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Spawning a real server subprocess
# ----------------------------------------------------------------------

class SpawnedServer:
    """Handle on a ``repro serve`` subprocess started by :func:`spawned_server`."""

    def __init__(self, proc: subprocess.Popen, host: str, port: int) -> None:
        self.proc = proc
        self.host = host
        self.port = port

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM the server (graceful drain) and return its exit code."""
        import signal

        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait()


@contextmanager
def spawned_server(
    graph_path,
    *,
    server_args=(),
    startup_timeout: float = 60.0,
    env: Optional[dict] = None,
):
    """Boot ``repro serve`` on *graph_path* as a subprocess; yield a handle.

    The server binds an ephemeral port and writes it to a temp
    ``--port-file``; this waits for the file, then yields a
    :class:`SpawnedServer`.  On exit the server gets SIGTERM — the
    graceful-drain path — and is killed only if it ignores it.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    child_env = dict(os.environ if env is None else env)
    existing = child_env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        child_env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        port_file = Path(tmp) / "port"
        cmd = [
            sys.executable, "-m", "repro", "serve", str(graph_path),
            "--host", "127.0.0.1", "--port", "0",
            "--port-file", str(port_file),
            *server_args,
        ]
        proc = subprocess.Popen(cmd, env=child_env)
        handle = None
        try:
            deadline = time.monotonic() + startup_timeout
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    raise NetworkError(
                        f"server exited with code {proc.returncode} "
                        "during startup"
                    )
                if port_file.exists():
                    # Two-line format since the failover rework: port
                    # then owner pid (see repro.net.portfile).
                    text = port_file.read_text().strip()
                    if text:
                        port = int(text.split()[0])
                        handle = SpawnedServer(proc, "127.0.0.1", port)
                        break
                time.sleep(0.05)
            else:
                raise NetworkError(
                    f"server did not report a port within {startup_timeout}s"
                )
            yield handle
        finally:
            if proc.poll() is None:
                SpawnedServer(proc, "127.0.0.1", 0).terminate()
