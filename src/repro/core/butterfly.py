"""Butterfly: construct a TOL index for a given level order (Algorithm 5).

The algorithm peels vertices off the DAG from the highest level down.  In
iteration ``k`` it takes the level-``k`` vertex ``v``, finds everything it
can still reach (``B+(v)``) and everything that can still reach it
(``B-(v)``) in the residual graph ``G_k`` (the graph with all higher-level
vertices already removed), and offers ``v`` as an in-label to the former and
as an out-label to the latter, skipping any vertex ``u`` whose existing
labels already witness the connection (``Lout(v) ∩ Lin(u) ≠ ∅``).  Lemma 5
proves the result is exactly the TOL index of Definition 1.

Two faithful variants are provided:

* ``prune=False`` — Algorithm 5 verbatim: the BFS visits all of ``B+(v)`` /
  ``B-(v)`` and the cover check only gates label *insertion*.
* ``prune=True`` (default) — the cover check also gates BFS *expansion*,
  PLL-style.  This is provably equivalent: if ``w ∈ Lout(v) ∩ Lin(u)``
  then every vertex ``u'`` reached through ``u`` has ``v -> w -> u -> u'``
  with ``l(w) < l(v)``, so ``v`` could never become a label of ``u'`` via
  this path, and any alternative path to ``u'`` is explored separately.
  (The symmetric argument covers the backward search.)  On label-friendly
  orders this prunes the vast majority of the traversal and is what makes
  construction practical; the equivalence is property-tested against both
  the verbatim variant and the Definition-1 reference.

The sweeps run entirely on interned ids: the cover check is a sorted-array
intersection (:func:`~repro.core.labeling.ids_intersect`) over the flat
``array('i')`` label buffers, and labels are added through the id-level
mutation API.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from ..graph.dag import ensure_dag
from ..graph.digraph import DiGraph
from ..obs import trace
from .labeling import TOLLabeling, ids_intersect
from .order import LevelOrder

__all__ = ["butterfly_build"]

Vertex = Hashable


def butterfly_build(
    graph: DiGraph,
    order: LevelOrder,
    *,
    prune: bool = True,
) -> TOLLabeling:
    """Build the TOL index of *graph* under *order* (Algorithm 5).

    Parameters
    ----------
    graph:
        A DAG.  Not modified (the peeling uses a "removed" set rather than
        destroying a copy).
    order:
        The level order; must contain exactly the vertices of *graph*.
    prune:
        Use the pruned-expansion variant (see module docstring).

    Returns
    -------
    TOLLabeling
        The unique TOL index for ``(graph, order)``; shares *order*.
    """
    ensure_dag(graph)
    if len(order) != graph.num_vertices or any(v not in order for v in graph.vertices()):
        raise ValueError("level order must contain exactly the graph's vertices")

    labeling = TOLLabeling(order)
    removed: set[Vertex] = set()

    with trace.span("tol.build") as sp:
        if sp:
            sp.set("vertices", graph.num_vertices)
            sp.set("edges", graph.num_edges)
            sp.set("prune", int(prune))
            # |E_k| of the residual graph G_k, maintained incrementally:
            # peeling v subtracts its edges to still-present vertices
            # (its edges to already-peeled ones were subtracted earlier).
            residual_edges = graph.num_edges
            level = 0

        for v in order:  # highest level first
            if sp:
                level += 1
                trace.event(
                    "tol.build.level",
                    k=level,
                    v_k=graph.num_vertices - len(removed),
                    e_k=residual_edges,
                )
            _sweep(graph, labeling, v, removed, forward=True, prune=prune)
            _sweep(graph, labeling, v, removed, forward=False, prune=prune)
            removed.add(v)
            if sp:
                residual_edges -= sum(
                    1 for u in graph.iter_out(v) if u not in removed
                ) + sum(1 for u in graph.iter_in(v) if u not in removed)

        if sp:
            sp.set("labels", labeling.size())
    return labeling


def _sweep(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    removed: set[Vertex],
    *,
    forward: bool,
    prune: bool,
) -> None:
    """One direction of iteration k: label B+(v) (forward) or B-(v)."""
    ids = labeling.interner.ids
    vid = ids[v]
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.out_ids[vid]  # Lout(v), complete at this point
        their_labels = labeling.in_ids  # Lin(u) for the check
        add_label = labeling.add_in_id  # v joins Lin(u)
    else:
        neighbors = graph.iter_in
        my_labels = labeling.in_ids[vid]  # Lin(v), complete at this point
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    seen: set[Vertex] = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for u in neighbors(x):
            if u in seen or u in removed:
                continue
            seen.add(u)
            uid = ids[u]
            covered = ids_intersect(my_labels, their_labels[uid])
            if not covered:
                add_label(uid, vid)
            if covered and prune:
                continue
            queue.append(u)
