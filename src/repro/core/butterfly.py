"""Butterfly: construct a TOL index for a given level order (Algorithm 5).

The algorithm peels vertices off the DAG from the highest level down.  In
iteration ``k`` it takes the level-``k`` vertex ``v``, finds everything it
can still reach (``B+(v)``) and everything that can still reach it
(``B-(v)``) in the residual graph ``G_k`` (the graph with all higher-level
vertices already removed), and offers ``v`` as an in-label to the former and
as an out-label to the latter, skipping any vertex ``u`` whose existing
labels already witness the connection (``Lout(v) ∩ Lin(u) ≠ ∅``).  Lemma 5
proves the result is exactly the TOL index of Definition 1.

Two faithful variants are provided:

* ``prune=False`` — Algorithm 5 verbatim: the BFS visits all of ``B+(v)`` /
  ``B-(v)`` and the cover check only gates label *insertion*.
* ``prune=True`` (default) — the cover check also gates BFS *expansion*,
  PLL-style.  This is provably equivalent: if ``w ∈ Lout(v) ∩ Lin(u)``
  then every vertex ``u'`` reached through ``u`` has ``v -> w -> u -> u'``
  with ``l(w) < l(v)``, so ``v`` could never become a label of ``u'`` via
  this path, and any alternative path to ``u'`` is explored separately.
  (The symmetric argument covers the backward search.)  On label-friendly
  orders this prunes the vast majority of the traversal and is what makes
  construction practical; the equivalence is property-tested against both
  the verbatim variant and the Definition-1 reference.

Engines
-------
Two implementations of the peeling sweeps are kept, selected by
``engine=``:

* ``"csr"`` (default) — an id-only kernel over the graph's cached
  :class:`~repro.graph.csr.CSRGraph` snapshot: adjacency is two flat
  ``array('i')`` neighbor buffers walked by slice, the removed/seen state
  is a ``bytearray`` plus an int stamp list indexed by snapshot id, and
  the BFS frontier is a flat preallocated int queue.  No per-edge hashing,
  no generator frames.
* ``"object"`` — the legacy sweep over ``DiGraph``'s dict-of-``set``
  adjacency, kept for differential testing (the property suite asserts
  both engines produce identical label sets) and as the fallback shape
  for exotic graph substrates.

Either way the cover check is a sorted-array intersection
(:func:`~repro.core.labeling.ids_intersect`) over the flat ``array('i')``
label buffers, and labels are added through the id-level mutation API.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Hashable

from ..errors import GraphError
from ..graph.dag import ensure_dag
from ..graph.digraph import DiGraph
from ..obs import trace
from .labeling import TOLLabeling, ids_intersect
from .order import LevelOrder

__all__ = ["butterfly_build", "BUILD_ENGINES"]

Vertex = Hashable

#: Names accepted by ``butterfly_build(engine=...)``.
BUILD_ENGINES: tuple[str, ...] = ("csr", "object")


def butterfly_build(
    graph: DiGraph,
    order: LevelOrder,
    *,
    prune: bool = True,
    engine: str = "csr",
) -> TOLLabeling:
    """Build the TOL index of *graph* under *order* (Algorithm 5).

    Parameters
    ----------
    graph:
        A DAG.  Not modified (the peeling uses "removed" flags rather than
        destroying a copy).
    order:
        The level order; must contain exactly the vertices of *graph*.
    prune:
        Use the pruned-expansion variant (see module docstring).
    engine:
        ``"csr"`` (default) runs the flat-array kernel over the graph's
        cached CSR snapshot; ``"object"`` runs the legacy dict-walking
        sweeps.  Both produce the identical labeling.

    Returns
    -------
    TOLLabeling
        The unique TOL index for ``(graph, order)``; shares *order*.

    Raises
    ------
    NotADagError
        If *graph* has a cycle.
    GraphError
        If *order* does not contain exactly the graph's vertices (the
        same uniform ``order=`` error type the facades raise).
    ValueError
        If *engine* is not one of :data:`BUILD_ENGINES`.
    """
    if engine not in BUILD_ENGINES:
        known = ", ".join(BUILD_ENGINES)
        raise ValueError(f"unknown build engine {engine!r}; known: {known}")
    if len(order) != graph.num_vertices or set(order) != set(graph.vertices()):
        raise GraphError("level order must contain exactly the graph's vertices")
    if engine == "csr":
        snap = graph.csr()
        snap.topological_ids()  # DAG check (cached for the score sweeps)
    else:
        snap = None
        ensure_dag(graph)

    labeling = TOLLabeling(order)
    with trace.span("tol.build") as sp:
        if sp:
            sp.set("vertices", graph.num_vertices)
            sp.set("edges", graph.num_edges)
            sp.set("prune", int(prune))
            sp.set("engine", engine)
        if snap is not None:
            _build_csr(snap, labeling, order, prune, sp)
        else:
            _build_object(graph, labeling, order, prune, sp)
        if sp:
            sp.set("labels", labeling.size())
    return labeling


# ----------------------------------------------------------------------
# CSR engine: id-only kernel over the flat snapshot arrays
# ----------------------------------------------------------------------

def _build_csr(snap, labeling, order, prune, sp) -> None:
    """Peel every vertex via the flat-array sweeps (see module docstring).

    The BFS of both directions is inlined into the peel loop: the sweeps
    on practical orders are tiny (a handful of dequeues each), so per-call
    and per-row overheads — function frames, adjacency-slice allocations —
    would rival the useful work.  Rows are walked by index off the offset
    arrays, and one ``state`` slot per id doubles as the removed flag and
    the BFS visit stamp (``state[i] == stamp`` — seen this sweep,
    ``state[i] == peeled`` — removed, anything smaller — untouched), so
    the hot loop skips with a single load+compare.

    Label insertion is a plain ``append`` rather than
    ``TOLLabeling.add_in_id``/``add_out_id``: a fresh build interns the
    order sequence, so ``vlab`` (the level rank) is strictly greater than
    every label id already present in any buffer, and each sweep visits a
    vertex at most once — appends keep the buffers sorted and duplicate
    free.  Labels accumulate in plain per-vertex lists (list subscripts
    and appends are cheaper than ``array`` ones, and never re-box ints)
    and are packed into the labeling's ``array('i')`` buffers once at the
    end; the CSR arrays are likewise list-ified once up front.  The
    frozenset query mirrors need no invalidation because the labeling is
    unpublished during the build and every slot starts (and therefore
    stays) stale.  Inverted lists: with ``prune`` the label receivers of
    a sweep are exactly its enqueued vertices, so ``Iin(v)``/``Iout(v)``
    is filled with one bulk ``update`` off the queue; the verbatim
    variant also enqueues covered vertices and maintains the sets per
    insertion instead.

    The cover check is a frozenset ``isdisjoint`` over the candidate's
    label row (C-speed; ``Lout(v)``/``Lin(v)`` is frozen into a set once
    per sweep), guarded by inline emptiness/range bail-outs that kill
    the vast majority of checks without any call — an empty label set
    uses sentinel bounds that fail the range test unconditionally.
    """
    n = snap.num_vertices
    if not n:
        return
    snap_ids = snap.interner.ids
    # Snapshot id of each vertex, by level rank; a fresh labeling interns
    # the order sequence, so the labeling id of the rank-k vertex is
    # exactly k — the peel loop below walks ``enumerate(vcs)`` and never
    # touches a dict or the order again.
    vcs = list(map(snap_ids.__getitem__, order))
    lab_of = [0] * n  # snapshot id -> labeling id (level rank)
    for rank, vc in enumerate(vcs):
        lab_of[vc] = rank
    # Adjacency as per-vertex lists of pre-boxed ints: the tiny sweeps of
    # practical orders average ~1 edge per dequeue, so per-row overhead
    # (offset loads, index arithmetic, int re-boxing out of array('i'))
    # would rival the useful work.
    oo = snap.out_offsets
    ot = list(snap.out_targets)
    out_rows = [ot[oo[i]:oo[i + 1]] for i in range(n)]
    io_ = snap.in_offsets
    it = list(snap.in_targets)
    in_rows = [it[io_[i]:io_[i + 1]] for i in range(n)]
    # Fresh labeling => ids are exactly 0..n-1 (the order's level ranks).
    in_bufs: list[list] = [[] for _ in range(n)]
    out_bufs: list[list] = [[] for _ in range(n)]
    in_holders = labeling.in_holders
    out_holders = labeling.out_holders
    peeled = 2 * n + 1  # larger than any stamp (2 sweeps per vertex)
    state = [0] * n
    queue = [0] * n  # flat frontier; each id is enqueued at most once
    stamp = 0
    tracing = bool(sp)  # hoisted: sp's __bool__ costs a call per peel
    if tracing:
        # |E_k| of the residual graph G_k, maintained incrementally:
        # peeling v subtracts its edges to still-present vertices (its
        # edges to already-peeled ones were subtracted earlier).
        residual = snap.num_edges
        level = 0

    for vlab, vc in enumerate(vcs):  # highest level first
        if tracing:
            level += 1
            trace.event(
                "tol.build.level", k=level, v_k=n - level + 1, e_k=residual
            )
        for rows, my_labels, their_bufs, side_holders in (
            # Forward: walk out-edges, v joins Lin(u); cover via Lout(v).
            (out_rows, out_bufs[vlab], in_bufs, in_holders),
            # Backward mirror image.
            (in_rows, in_bufs[vlab], out_bufs, out_holders),
        ):
            if not rows[vc]:  # nothing to sweep in this direction
                continue
            stamp += 1
            state[vc] = stamp
            queue[0] = vc
            head = 0
            tail = 1
            if my_labels:
                ml_lo = my_labels[0]
                ml_hi = my_labels[-1]
                ml_disjoint = frozenset(my_labels).isdisjoint
            else:
                ml_lo = peeled  # sentinels: range test always fails,
                ml_hi = -1  # ml_disjoint is never evaluated
            if not prune:
                holders_add = side_holders[vlab].add
            while head < tail:
                for u in rows[queue[head]]:
                    if state[u] >= stamp:  # peeled or seen this sweep
                        continue
                    state[u] = stamp
                    ulab = lab_of[u]
                    theirs = their_bufs[ulab]
                    if (
                        theirs
                        and theirs[0] <= ml_hi
                        and ml_lo <= theirs[-1]
                        and not ml_disjoint(theirs)
                    ):
                        if prune:
                            continue
                    else:
                        theirs.append(vlab)
                        if not prune:
                            holders_add(ulab)
                    queue[tail] = u
                    tail += 1
                head += 1
            if prune:  # receivers == everything enqueued past the start
                side_holders[vlab] = {lab_of[q] for q in queue[1:tail]}
        state[vc] = peeled
        if tracing:
            for u in out_rows[vc]:
                if state[u] != peeled:
                    residual -= 1
            for u in in_rows[vc]:
                if state[u] != peeled:
                    residual -= 1

    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    for j in range(n):
        in_ids[j] = array("i", in_bufs[j])
        out_ids[j] = array("i", out_bufs[j])


# ----------------------------------------------------------------------
# Object engine: the legacy dict-walking sweeps (differential baseline)
# ----------------------------------------------------------------------

def _build_object(graph, labeling, order, prune, sp) -> None:
    """Peel every vertex via the legacy adjacency-set sweeps."""
    removed: set[Vertex] = set()
    if sp:
        residual_edges = graph.num_edges
        level = 0
    for v in order:  # highest level first
        if sp:
            level += 1
            trace.event(
                "tol.build.level",
                k=level,
                v_k=graph.num_vertices - len(removed),
                e_k=residual_edges,
            )
        _sweep(graph, labeling, v, removed, forward=True, prune=prune)
        _sweep(graph, labeling, v, removed, forward=False, prune=prune)
        removed.add(v)
        if sp:
            residual_edges -= sum(
                1 for u in graph.iter_out(v) if u not in removed
            ) + sum(1 for u in graph.iter_in(v) if u not in removed)


def _sweep(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    removed: set[Vertex],
    *,
    forward: bool,
    prune: bool,
) -> None:
    """One direction of iteration k: label B+(v) (forward) or B-(v)."""
    ids = labeling.interner.ids
    vid = ids[v]
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.out_ids[vid]  # Lout(v), complete at this point
        their_labels = labeling.in_ids  # Lin(u) for the check
        add_label = labeling.add_in_id  # v joins Lin(u)
    else:
        neighbors = graph.iter_in
        my_labels = labeling.in_ids[vid]  # Lin(v), complete at this point
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    seen: set[Vertex] = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for u in neighbors(x):
            if u in seen or u in removed:
                continue
            seen.add(u)
            uid = ids[u]
            covered = ids_intersect(my_labels, their_labels[uid])
            if not covered:
                add_label(uid, vid)
            if covered and prune:
                continue
            queue.append(u)
