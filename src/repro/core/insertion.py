"""Vertex insertion for TOL indices (Section 5.1, Algorithms 1–3).

Inserting a vertex ``v`` into an indexed DAG has two concerns: *where* ``v``
goes in the level order (Step 1, Algorithm 3) and *materializing* the label
changes (Step 2, Algorithms 1–2).  This module implements both, with three
documented corrections to the printed pseudocode — each one was found by
property-testing against the Definition-1 reference construction and each
is validated the same way (``tests/core/test_insertion.py``):

1. **Label spreading** (printed Algorithm 1, lines 9–10).  The candidate
   sets only contain neighbors and the neighbors' labels, which all rank
   *higher* than the neighbors — so a lower-level vertex reachable from
   ``v`` only transitively (e.g. ``b`` in the chain ``v -> a -> b`` with
   ``v`` ranked highest) never receives ``v`` and the query ``v -> b``
   would break.  We instead spread ``v`` with a level-restricted pruned
   search (:func:`_spread_new_labels`), the primitive that makes
   Butterfly's Algorithm 5 exact: for ``x`` that can reach ``v``,
   ``v ∈ Lout(x)`` iff ``Lout(x) ∩ Lin(v) = ∅`` (take ``z`` = the
   highest-level vertex over all ``x ⇝ v`` paths: if ``z ≠ v`` it blocks
   and appears in both sets; if ``z = v`` nothing can block), so the cover
   check is exact and pruning below a covered vertex is safe.

2. **Pruning through v** (printed Algorithm 2 prunes only through ``v``'s
   own labels).  A pair ``a -> v -> b`` with ``v`` ranked above both makes
   any direct label between ``a`` and ``b`` redundant;
   :func:`_prune_through` is also run on ``v`` itself.

3. **The Δk sweep baseline** (printed Algorithm 3).  The sweep's ``-1``
   terms consult ``Lin(w)`` for vertices ``w`` holding ``v``; but several
   of those labels are only *created by the insertion itself* (Algorithm 2
   adds ``u ∈ L'in(v)`` into ``Lin(w)`` for ``w`` reachable via ``v``), so
   simulating against the pre-insertion index under-counts the benefit of
   high placements.  Additionally the ``+1`` terms admit ``w' ∈ Iout(u)``
   as soon as *any* blocker is crossed rather than the last one.  We
   therefore (a) materialize the bottom placement first — the cheap one:
   no existing vertex gains ``v`` as a label before the sweep runs — and
   run the sweep read-only against the live index
   (:func:`choose_level`), and (b) admit ``w'`` only once
   ``Lout(w') ∩ (remaining higher candidates) = ∅`` (``w'`` is re-examined
   at every later blocker crossing because each blocker holds ``w'`` in
   its inverted list).  If a strictly better position exists, ``v`` is
   relocated by *applying* the sweep's crossings to the live label sets
   (:func:`_relocate_upward`) — far cheaper than a delete/re-insert round
   trip.  The sweep's θ is exact and the relocated index matches the
   from-scratch construction: the property tests check both against
   brute-force reconstruction at every candidate position.

All label reads and writes go through the interned-id representation: the
sweep's Δk accounting, the cover checks, and the crossings operate on
sorted ``array('i')`` buffers and ``set[int]`` inverted lists, mapping back
to user vertex objects only at the :class:`Placement` boundary.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..errors import IndexStateError
from ..graph.digraph import DiGraph
from ..obs import trace
from .labeling import TOLLabeling, ids_intersect

if TYPE_CHECKING:
    from ..graph.csr import CSRGraph

__all__ = ["Placement", "LevelChoice", "choose_level", "insert_vertex"]

Vertex = Hashable

#: Placement of a new vertex in the level order: either the literal string
#: ``"bottom"`` (the lowest level, ``l'(v) = |V| + 1``) or ``("above", u)``
#: — immediately above vertex ``u`` (``v`` takes ``u``'s old level).
Placement = Union[str, tuple[str, Vertex]]


@dataclass(frozen=True)
class LevelChoice:
    """Outcome of the Algorithm-3 sweep for a bottom-placed vertex.

    Attributes
    ----------
    placement:
        ``"bottom"`` (stay at the lowest level) or ``("above", u)``.
    theta:
        Exact index-size delta of this placement relative to the bottom
        placement (``θ_k``; 0 for the bottom, negative otherwise).
    candidates_scanned:
        How many candidate positions the sweep evaluated (observability:
        the sweep is sparse — one stop per label of ``v``, not per level).
    """

    placement: Placement
    theta: int
    candidates_scanned: int


def insert_vertex(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    *,
    placement: Optional[Placement] = None,
    snapshot: Optional[CSRGraph] = None,
) -> None:
    """Insert vertex *v* into the index (Section 5.1).

    Parameters
    ----------
    graph:
        The updated DAG, *already containing* ``v`` and its edges (mirrors
        :func:`repro.core.deletion.delete_vertex`, which removes the vertex
        from the graph itself).
    labeling:
        The live TOL index; updated in place (order included).
    placement:
        Where ``v`` goes in the level order.  ``None`` (default) runs the
        Algorithm-3 sweep to find the size-minimizing position;
        ``"bottom"`` gives ``v`` the lowest level (the cheap choice
        discussed in Section 5.1.2); ``("above", u)`` places it explicitly.
    snapshot:
        Optional :class:`~repro.graph.csr.CSRGraph` describing *graph*'s
        current state (``v`` included).  When given, the materialization
        traverses the flat snapshot arrays instead of the dict adjacency —
        the Section-6 reduction passes one snapshot for a whole sweep of
        delete/re-insert round trips (each trip restores the snapshotted
        state; see the snapshot reuse contract in ``docs/api.md``).

    Raises
    ------
    IndexStateError
        If *v* is already indexed, missing from the graph, or a neighbor
        is not indexed.
    """
    if v in labeling:
        raise IndexStateError(f"vertex {v!r} is already indexed")
    if v not in graph:
        raise IndexStateError(f"vertex {v!r} is not in the graph")
    if snapshot is not None:
        ins = snapshot.in_neighbors(v)
        outs = snapshot.out_neighbors(v)
    else:
        ins = list(graph.in_neighbors(v))
        outs = list(graph.out_neighbors(v))
    for u in ins + outs:
        if u not in labeling:
            raise IndexStateError(f"neighbor {u!r} is not indexed")

    with trace.span("tol.insert") as sp:
        if sp:
            sp.set("vertex", str(v))
            sp.set("in_degree", len(ins))
            sp.set("out_degree", len(outs))
            size_before = labeling.size()

        if placement is not None:
            _materialize(graph, labeling, v, placement, ins, outs, snapshot)
            if sp:
                sp.set("labels_added", labeling.size() - size_before)
                sp.set("placement", "explicit")
            return

        # Step 1 (Algorithm 3): bottom-place, sweep, relocate if profitable.
        _materialize(graph, labeling, v, "bottom", ins, outs, snapshot)
        with trace.span("tol.insert.choose_level") as level_sp:
            choice = choose_level(labeling, v)
            if level_sp:
                level_sp.set("candidates_scanned", choice.candidates_scanned)
                level_sp.set("theta", choice.theta)
        if choice.placement != "bottom":
            _, anchor = choice.placement
            _relocate_upward(labeling, v, anchor)
        if sp:
            sp.set("labels_added", labeling.size() - size_before)
            sp.set("relocated", int(choice.placement != "bottom"))
            sp.set("theta", choice.theta)


def choose_level(labeling: TOLLabeling, v: Vertex) -> LevelChoice:
    """Algorithm-3 sweep: find the upward move of *v* that minimizes ``|L|``.

    *v* must already be indexed; the sweep simulates sliding it upward from
    its current position (for the insertion use case, the bottom) and
    returns the position with the smallest resulting index size.  Read-only.

    At each crossing of a candidate ``u`` (one of ``v``'s current labels,
    visited from the lowest level up):

    * ``u`` stops labeling ``v`` and ``v`` starts labeling ``u`` — a net
      zero (``v`` crossing ``u`` is never blocked, because ``u`` being a
      label of ``v`` means no higher vertex separates them);
    * each vertex currently holding both ``v`` and ``u`` on the same side
      drops ``u`` (now covered through ``v``) — one ``-1`` each;
    * each vertex holding ``u`` whose connection to ``v`` has no remaining
      higher blocker starts holding ``v`` — one ``+1`` each.

    Ties prefer the lowest position (least disruption, cheapest to apply).
    """
    vid = labeling.interner.ids[v]
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    sim_in = set(in_ids[vid])
    sim_out = set(out_ids[vid])
    # Who holds v as the sweep progresses; starts from v's live state.
    inv_in = set(labeling.in_holders[vid])
    inv_out = set(labeling.out_holders[vid])

    best_placement: Placement = "bottom"
    best_theta = 0
    theta = 0
    candidates = sorted(sim_in | sim_out, key=labeling.level_key, reverse=True)
    for u in candidates:
        delta = 0
        if u in sim_in:
            sim_in.remove(u)
            inv_out.add(u)
            for w in inv_in:
                if u in in_ids[w]:
                    delta -= 1
            for w in labeling.out_holders[u]:
                if w not in inv_out and not _arr_meets_set(out_ids[w], sim_in):
                    delta += 1
                    inv_out.add(w)
        else:
            sim_out.remove(u)
            inv_in.add(u)
            for w in inv_out:
                if u in out_ids[w]:
                    delta -= 1
            for w in labeling.in_holders[u]:
                if w not in inv_in and not _arr_meets_set(in_ids[w], sim_out):
                    delta += 1
                    inv_in.add(w)
        theta += delta
        if theta < best_theta:
            best_theta = theta
            best_placement = ("above", labeling.interner.table[u])
    return LevelChoice(best_placement, best_theta, len(candidates))


def _relocate_upward(labeling: TOLLabeling, v: Vertex, anchor: Vertex) -> None:
    """Move *v* from its current level to just above *anchor*, in place.

    Applies the Algorithm-3 crossings for real instead of simulating them:
    at each candidate crossing the ``u``/``v`` label swap, the coverage
    removals and the inverted-list additions of :func:`choose_level` are
    executed against the live label sets.  This is far cheaper than the
    delete + re-insert round trip (which rebuilds the labels of everything
    ``v`` touches) and is validated against from-scratch reconstruction by
    the property tests.

    *anchor* must be one of ``v``'s current labels (which is what
    :func:`choose_level` returns): the crossings below it are exactly the
    sweep's prefix.
    """
    order = labeling.order
    vid = labeling.interner.ids[v]
    anchor_id = labeling.interner.ids[anchor]
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    own_in = in_ids[vid]  # live: shrinks as candidates are crossed
    own_out = out_ids[vid]
    candidates = sorted(
        set(own_in) | set(own_out), key=labeling.level_key, reverse=True
    )
    crossed_anchor = False
    for u in candidates:
        if u in own_in:
            labeling.remove_in_id(vid, u)
            labeling.add_out_id(u, vid)
            for w in tuple(labeling.in_holders[vid]):
                if u in in_ids[w]:
                    labeling.remove_in_id(w, u)
            for w in tuple(labeling.out_holders[u]):
                if (
                    w != vid
                    and vid not in out_ids[w]
                    and not ids_intersect(out_ids[w], own_in)
                ):
                    labeling.add_out_id(w, vid)
        else:
            labeling.remove_out_id(vid, u)
            labeling.add_in_id(u, vid)
            for w in tuple(labeling.out_holders[vid]):
                if u in out_ids[w]:
                    labeling.remove_out_id(w, u)
            for w in tuple(labeling.in_holders[u]):
                if (
                    w != vid
                    and vid not in in_ids[w]
                    and not ids_intersect(in_ids[w], own_out)
                ):
                    labeling.add_in_id(w, vid)
        if u == anchor_id:
            crossed_anchor = True
            break
    if not crossed_anchor:
        raise IndexStateError(
            f"relocation anchor {anchor!r} is not a label of {v!r}"
        )
    order.remove(v)
    order.insert_before(v, anchor)


# ----------------------------------------------------------------------
# Step 2 — materialization at a fixed position
# ----------------------------------------------------------------------

def _materialize(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    placement: Placement,
    ins: list,
    outs: list,
    snapshot: Optional[CSRGraph],
) -> None:
    """Insert *v* at *placement* and repair all label sets."""
    order = labeling.order
    if placement == "bottom":
        order.insert_last(v)
    else:
        kind, anchor = placement
        if kind != "above":
            raise IndexStateError(f"unknown placement {placement!r}")
        order.insert_before(v, anchor)
    labeling.add_vertex(v)

    _build_own_labels(labeling, v, ins, outs)
    if snapshot is not None:
        _spread_new_labels_csr(snapshot, labeling, v, forward=True)
        _spread_new_labels_csr(snapshot, labeling, v, forward=False)
    else:
        _spread_new_labels(graph, labeling, v, forward=True)
        _spread_new_labels(graph, labeling, v, forward=False)
    _prune_through(labeling, labeling.interner.ids[v])
    _repair_other_labels(labeling, v)


def _build_own_labels(
    labeling: TOLLabeling, v: Vertex, ins: list, outs: list
) -> None:
    """Refine the candidate sets into ``v``'s own label sets.

    Algorithm 1, lines 1–8: ``Cin(v)`` is the union of ``v``'s in-neighbors
    and their in-label sets (a proven superset of ``L'in(v)``); scanned
    from the highest level down, a candidate is kept when it is higher
    than ``v`` and no already-kept label covers it.  Mirrored for
    ``Cout(v)``.  Neighbor lists come from the caller, which sourced them
    from either the object graph or a CSR snapshot.
    """
    ids = labeling.interner.ids
    vid = ids[v]
    vkey = labeling.order.key(v)
    for incoming in (True, False):
        neighbors = ins if incoming else outs
        neighbor_labels = labeling.in_ids if incoming else labeling.out_ids
        covering = labeling.out_ids if incoming else labeling.in_ids
        own = neighbor_labels[vid]  # live: grows as labels are admitted
        candidates: set[int] = set()
        for u in neighbors:
            uid = ids[u]
            candidates.add(uid)
            candidates.update(neighbor_labels[uid])
        for u in sorted(candidates, key=labeling.level_key):
            if not labeling.level_key(u) < vkey:
                continue  # lower-level vertices are handled by the spread
            if ids_intersect(covering[u], own):
                continue
            if incoming:
                labeling.add_in_id(vid, u)
            else:
                labeling.add_out_id(vid, u)


def _spread_new_labels(
    graph: DiGraph, labeling: TOLLabeling, v: Vertex, *, forward: bool
) -> None:
    """Enter ``v`` into the label sets of lower-level vertices.

    A pruned search from ``v`` restricted to lower-level vertices: with
    ``forward=True``, every visited ``u`` (reachable from ``v``) receives
    ``v`` in ``Lin(u)`` unless ``Lout(v) ∩ Lin(u) ≠ ∅`` — the exact
    Definition-1 condition (see module docstring) — in which case the
    branch is pruned (anything beyond ``u`` via this path is covered by
    the same witness).
    """
    order = labeling.order
    ids = labeling.interner.ids
    vid = ids[v]
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        neighbors = graph.iter_in
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    seen: set[Vertex] = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for u in neighbors(x):
            if u in seen or order.higher(u, v):
                continue
            seen.add(u)
            uid = ids[u]
            if ids_intersect(my_labels, their_labels[uid]):
                continue  # covered: prune this branch
            add_label(uid, vid)
            queue.append(u)


def _spread_new_labels_csr(
    snap: CSRGraph, labeling: TOLLabeling, v: Vertex, *, forward: bool
) -> None:
    """:func:`_spread_new_labels` over a CSR snapshot's flat arrays.

    Identical pruned search, but the BFS walks snapshot ids with a
    ``bytearray`` seen table and crosses into labeling ids only for the
    vertices that survive the level check.  Higher-level vertices are
    marked seen here where the object path leaves them unmarked — both
    skip them on every encounter, so the visit sets match.
    """
    order = labeling.order
    ids = labeling.interner.ids
    table = snap.interner.table
    vid = ids[v]
    vkey = order.key(v)
    if forward:
        offsets = snap.out_offsets
        targets = snap.out_targets
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        offsets = snap.in_offsets
        targets = snap.in_targets
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    start = snap.id_of(v)
    seen = bytearray(snap.num_vertices)
    seen[start] = 1
    queue = [start]
    head = 0
    while head < len(queue):
        x = queue[head]
        head += 1
        for u in targets[offsets[x]:offsets[x + 1]]:
            if seen[u]:
                continue
            seen[u] = 1
            uv = table[u]
            if order.key(uv) < vkey:
                continue  # higher level: never receives v
            uid = ids[uv]
            if ids_intersect(my_labels, their_labels[uid]):
                continue  # covered: prune this branch
            add_label(uid, vid)
            queue.append(u)


# ----------------------------------------------------------------------
# Algorithm 2 — repairing labels between existing vertices
# ----------------------------------------------------------------------

def _repair_other_labels(labeling: TOLLabeling, v: Vertex) -> None:
    """Propagate the new ``u -> v -> w`` connectivity and prune redundancy."""
    vid = labeling.interner.ids[v]
    own_in = sorted(labeling.in_ids[vid], key=labeling.level_key)
    own_out = sorted(labeling.out_ids[vid], key=labeling.level_key)
    _repair_direction(labeling, vid, own_in, own_out, incoming=True)
    _repair_direction(labeling, vid, own_out, own_in, incoming=False)


def _repair_direction(
    labeling: TOLLabeling,
    vid: int,
    sources: list[int],
    sinks: list[int],
    *,
    incoming: bool,
) -> None:
    """One orientation of Algorithm 2.

    With ``incoming=True``: ``sources = L'in(v)`` (they reach ``v``) and
    ``sinks = L'out(v)`` (reached from ``v``); each source ``u`` may become
    an in-label of each lower-level sink ``w`` (and of everything holding
    ``w`` as an in-label, which includes everything holding ``v`` itself
    via the ``w = v`` case).  ``incoming=False`` is the mirrored pass.
    """
    level_key = labeling.level_key
    if incoming:
        their_labels = labeling.in_ids
        cover_labels = labeling.out_ids
        inv = labeling.in_holders
        add = labeling.add_in_id
    else:
        their_labels = labeling.out_ids
        cover_labels = labeling.in_ids
        inv = labeling.out_holders
        add = labeling.add_out_id

    for u in sources:  # ascending level value == highest level first
        u_cover = cover_labels[u]
        u_key = level_key(u)
        for w in sinks + [vid]:
            if w != vid and level_key(w) < u_key:
                continue  # Level Constraint: only lower-level sinks
            if u not in their_labels[w] and not ids_intersect(
                u_cover, their_labels[w]
            ):
                add(w, u)
            for x in tuple(inv[w]):
                if u not in their_labels[x] and not ids_intersect(
                    u_cover, their_labels[x]
                ):
                    add(x, u)
        _prune_through(labeling, u)


def _prune_through(labeling: TOLLabeling, uid: int) -> None:
    """Remove labels made redundant by pairs now connected through *uid*.

    For every ``a`` holding ``u`` as an out-label (``a -> u``) and every
    ``b`` holding ``u`` as an in-label (``u -> b``) the path ``a -> u -> b``
    passes through the higher-level ``u``, so neither endpoint may label
    the other (Path Constraint): drop ``b`` from ``Lout(a)`` and ``a`` from
    ``Lin(b)`` (Algorithm 2, lines 8–13).
    """
    holders_out = labeling.out_holders[uid]  # a with u ∈ Lout(a)
    holders_in = labeling.in_holders[uid]  # b with u ∈ Lin(b)
    if not holders_out or not holders_in:
        return
    for a in tuple(holders_out):
        a_out = labeling.out_ids[a]
        # Iterate the smaller side of the cross product.
        if len(holders_in) <= len(a_out):
            doomed = [b for b in holders_in if b in a_out]
        else:
            doomed = [b for b in a_out if b in holders_in]
        for b in doomed:
            labeling.remove_out_id(a, b)
            labeling.discard_in_id(b, a)
    for b in tuple(holders_in):
        b_in = labeling.in_ids[b]
        if len(holders_out) <= len(b_in):
            doomed = [a for a in holders_out if a in b_in]
        else:
            doomed = [a for a in b_in if a in holders_out]
        for a in doomed:
            labeling.remove_in_id(b, a)
            labeling.discard_out_id(a, b)


def _arr_meets_set(arr, ids: set) -> bool:
    """``True`` iff the sorted id array shares an element with the id set."""
    for x in arr:
        if x in ids:
            return True
    return False
