"""Vertex insertion for TOL indices (Section 5.1, Algorithms 1–3).

Inserting a vertex ``v`` into an indexed DAG has two concerns: *where* ``v``
goes in the level order (Step 1, Algorithm 3) and *materializing* the label
changes (Step 2, Algorithms 1–2).  This module implements both, with three
documented corrections to the printed pseudocode — each one was found by
property-testing against the Definition-1 reference construction and each
is validated the same way (``tests/core/test_insertion.py``):

1. **Label spreading** (printed Algorithm 1, lines 9–10).  The candidate
   sets only contain neighbors and the neighbors' labels, which all rank
   *higher* than the neighbors — so a lower-level vertex reachable from
   ``v`` only transitively (e.g. ``b`` in the chain ``v -> a -> b`` with
   ``v`` ranked highest) never receives ``v`` and the query ``v -> b``
   would break.  We instead spread ``v`` with a level-restricted pruned
   search (:func:`_spread_new_labels`), the primitive that makes
   Butterfly's Algorithm 5 exact: for ``x`` that can reach ``v``,
   ``v ∈ Lout(x)`` iff ``Lout(x) ∩ Lin(v) = ∅`` (take ``z`` = the
   highest-level vertex over all ``x ⇝ v`` paths: if ``z ≠ v`` it blocks
   and appears in both sets; if ``z = v`` nothing can block), so the cover
   check is exact and pruning below a covered vertex is safe.

2. **Pruning through v** (printed Algorithm 2 prunes only through ``v``'s
   own labels).  A pair ``a -> v -> b`` with ``v`` ranked above both makes
   any direct label between ``a`` and ``b`` redundant;
   :func:`_prune_through` is also run on ``v`` itself.

3. **The Δk sweep baseline** (printed Algorithm 3).  The sweep's ``-1``
   terms consult ``Lin(w)`` for vertices ``w`` holding ``v``; but several
   of those labels are only *created by the insertion itself* (Algorithm 2
   adds ``u ∈ L'in(v)`` into ``Lin(w)`` for ``w`` reachable via ``v``), so
   simulating against the pre-insertion index under-counts the benefit of
   high placements.  Additionally the ``+1`` terms admit ``w' ∈ Iout(u)``
   as soon as *any* blocker is crossed rather than the last one.  We
   therefore (a) materialize the bottom placement first — the cheap one:
   no existing vertex gains ``v`` as a label before the sweep runs — and
   run the sweep read-only against the live index
   (:func:`choose_level`), and (b) admit ``w'`` only once
   ``Lout(w') ∩ (remaining higher candidates) = ∅`` (``w'`` is re-examined
   at every later blocker crossing because each blocker holds ``w'`` in
   its inverted list).  If a strictly better position exists, ``v`` is
   relocated by *applying* the sweep's crossings to the live label sets
   (:func:`_relocate_upward`) — far cheaper than a delete/re-insert round
   trip.  The sweep's θ is exact and the relocated index matches the
   from-scratch construction: the property tests check both against
   brute-force reconstruction at every candidate position.

All label reads and writes go through the interned-id representation: the
sweep's Δk accounting, the cover checks, and the crossings operate on
sorted ``array('i')`` buffers and ``set[int]`` inverted lists, mapping back
to user vertex objects only at the :class:`Placement` boundary.

Engines
-------
Every step exists twice.  The default ``engine="csr"`` kernels run on the
labeling's reusable :class:`~repro.core.scratch.UpdateScratch`:
generation-stamped mark arrays replace per-op ``set`` objects, cursor
buffers replace per-op lists/deques/tuples, so a steady-state insert
allocates almost nothing (the remaining allocations are ``sorted()`` calls
over label-sized candidate lists, documented where they occur).  The
legacy ``engine="object"`` path builds fresh containers per op and is
retained for differential testing — both are pinned against each other
and against the Definition-1 reference by
``tests/core/test_update_differential.py``.

Snapshot reuse
--------------
With ``engine="csr"`` the spread may run over a CSR snapshot whose rows
*touching v* are stale: the flat spread seeds its BFS from the caller's
live neighbor lists and marks ``v``'s snapshot id visited up front, so
``v``'s own (possibly stale) rows are never read, and stale entries of
``v`` in other rows are skipped as already-visited.  Rows not involving
``v`` must match the live graph.  This is what lets one snapshot, packed
before an edge-op's delete half, serve the re-insert half too
(:meth:`TOLIndex.insert_edge` / :meth:`~TOLIndex.delete_edge`).  The
object engine still requires an exact snapshot (its spread starts from
``v``'s snapshot rows).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..errors import IndexStateError
from ..graph.digraph import DiGraph
from ..obs import trace
from .labeling import TOLLabeling, ids_intersect

if TYPE_CHECKING:
    from ..graph.csr import CSRGraph

__all__ = ["Placement", "LevelChoice", "choose_level", "insert_vertex"]

Vertex = Hashable

#: Placement of a new vertex in the level order: either the literal string
#: ``"bottom"`` (the lowest level, ``l'(v) = |V| + 1``) or ``("above", u)``
#: — immediately above vertex ``u`` (``v`` takes ``u``'s old level).
Placement = Union[str, tuple[str, Vertex]]


@dataclass(frozen=True)
class LevelChoice:
    """Outcome of the Algorithm-3 sweep for a bottom-placed vertex.

    Attributes
    ----------
    placement:
        ``"bottom"`` (stay at the lowest level) or ``("above", u)``.
    theta:
        Exact index-size delta of this placement relative to the bottom
        placement (``θ_k``; 0 for the bottom, negative otherwise).
    candidates_scanned:
        How many candidate positions the sweep evaluated (observability:
        the sweep is sparse — one stop per label of ``v``, not per level).
    """

    placement: Placement
    theta: int
    candidates_scanned: int


def insert_vertex(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    *,
    placement: Optional[Placement] = None,
    snapshot: Optional[CSRGraph] = None,
    engine: str = "csr",
) -> None:
    """Insert vertex *v* into the index (Section 5.1).

    Parameters
    ----------
    graph:
        The updated DAG, *already containing* ``v`` and its edges (mirrors
        :func:`repro.core.deletion.delete_vertex`, which removes the vertex
        from the graph itself).
    labeling:
        The live TOL index; updated in place (order included).
    placement:
        Where ``v`` goes in the level order.  ``None`` (default) runs the
        Algorithm-3 sweep to find the size-minimizing position;
        ``"bottom"`` gives ``v`` the lowest level (the cheap choice
        discussed in Section 5.1.2); ``("above", u)`` places it explicitly.
    snapshot:
        Optional :class:`~repro.graph.csr.CSRGraph` over which the label
        spread traverses flat arrays instead of the dict adjacency.  The
        Section-6 reduction passes one snapshot for a whole sweep of
        delete/re-insert round trips; the edge ops of
        :class:`~repro.core.index.TOLIndex` reuse the snapshot packed for
        the delete half.  With ``engine="csr"`` rows touching ``v`` may be
        stale (the spread seeds from the live neighbor lists; see module
        docstring); with ``engine="object"`` the snapshot must describe
        *graph* exactly.
    engine:
        ``"csr"`` (default) runs the flat scratch-backed kernels;
        ``"object"`` the legacy per-op-allocating path (kept for
        differential testing).

    Raises
    ------
    IndexStateError
        If *v* is already indexed, missing from the graph, a neighbor is
        not indexed, or *engine* is unknown.
    """
    if engine not in ("csr", "object"):
        raise IndexStateError(f"unknown update engine {engine!r}")
    if v in labeling:
        raise IndexStateError(f"vertex {v!r} is already indexed")
    if v not in graph:
        raise IndexStateError(f"vertex {v!r} is not in the graph")
    # Neighbor lists come from the live graph — the one source of truth
    # even when a (possibly v-stale) snapshot drives the traversal.
    ins = list(graph.in_neighbors(v))
    outs = list(graph.out_neighbors(v))
    for u in ins:
        if u not in labeling:
            raise IndexStateError(f"neighbor {u!r} is not indexed")
    for u in outs:
        if u not in labeling:
            raise IndexStateError(f"neighbor {u!r} is not indexed")
    flat = engine == "csr"
    materialize = _materialize_flat if flat else _materialize

    with trace.span("tol.insert") as sp:
        if sp:
            sp.set("vertex", str(v))
            sp.set("in_degree", len(ins))
            sp.set("out_degree", len(outs))
            sp.set("engine", engine)
            size_before = labeling.size()

        if placement is not None:
            materialize(graph, labeling, v, placement, ins, outs, snapshot)
            if sp:
                sp.set("labels_added", labeling.size() - size_before)
                sp.set("placement", "explicit")
            return

        # Step 1 (Algorithm 3): bottom-place, sweep, relocate if profitable.
        materialize(graph, labeling, v, "bottom", ins, outs, snapshot)
        with trace.span("tol.insert.choose_level") as level_sp:
            choice = choose_level(labeling, v, engine=engine)
            if level_sp:
                level_sp.set("candidates_scanned", choice.candidates_scanned)
                level_sp.set("theta", choice.theta)
        if choice.placement != "bottom":
            _, anchor = choice.placement
            if flat:
                _relocate_upward_flat(labeling, v, anchor)
            else:
                _relocate_upward(labeling, v, anchor)
        if sp:
            sp.set("labels_added", labeling.size() - size_before)
            sp.set("relocated", int(choice.placement != "bottom"))
            sp.set("theta", choice.theta)


def choose_level(
    labeling: TOLLabeling, v: Vertex, *, engine: str = "csr"
) -> LevelChoice:
    """Algorithm-3 sweep: find the upward move of *v* that minimizes ``|L|``.

    *v* must already be indexed; the sweep simulates sliding it upward from
    its current position (for the insertion use case, the bottom) and
    returns the position with the smallest resulting index size.  Read-only.

    At each crossing of a candidate ``u`` (one of ``v``'s current labels,
    visited from the lowest level up):

    * ``u`` stops labeling ``v`` and ``v`` starts labeling ``u`` — a net
      zero (``v`` crossing ``u`` is never blocked, because ``u`` being a
      label of ``v`` means no higher vertex separates them);
    * each vertex currently holding both ``v`` and ``u`` on the same side
      drops ``u`` (now covered through ``v``) — one ``-1`` each;
    * each vertex holding ``u`` whose connection to ``v`` has no remaining
      higher blocker starts holding ``v`` — one ``+1`` each.

    Ties prefer the lowest position (least disruption, cheapest to apply).
    """
    if engine == "csr":
        return _choose_level_flat(labeling, v)
    if engine != "object":
        raise IndexStateError(f"unknown update engine {engine!r}")
    vid = labeling.interner.ids[v]
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    sim_in = set(in_ids[vid])
    sim_out = set(out_ids[vid])
    # Who holds v as the sweep progresses; starts from v's live state.
    inv_in = set(labeling.in_holders[vid])
    inv_out = set(labeling.out_holders[vid])

    best_placement: Placement = "bottom"
    best_theta = 0
    theta = 0
    candidates = sorted(sim_in | sim_out, key=labeling.level_key, reverse=True)
    for u in candidates:
        delta = 0
        if u in sim_in:
            sim_in.remove(u)
            inv_out.add(u)
            for w in inv_in:
                if u in in_ids[w]:
                    delta -= 1
            for w in labeling.out_holders[u]:
                if w not in inv_out and not _arr_meets_set(out_ids[w], sim_in):
                    delta += 1
                    inv_out.add(w)
        else:
            sim_out.remove(u)
            inv_in.add(u)
            for w in inv_out:
                if u in out_ids[w]:
                    delta -= 1
            for w in labeling.in_holders[u]:
                if w not in inv_in and not _arr_meets_set(in_ids[w], sim_out):
                    delta += 1
                    inv_in.add(w)
        theta += delta
        if theta < best_theta:
            best_theta = theta
            best_placement = ("above", labeling.interner.table[u])
    return LevelChoice(best_placement, best_theta, len(candidates))


def _relocate_upward(labeling: TOLLabeling, v: Vertex, anchor: Vertex) -> None:
    """Move *v* from its current level to just above *anchor*, in place.

    Applies the Algorithm-3 crossings for real instead of simulating them:
    at each candidate crossing the ``u``/``v`` label swap, the coverage
    removals and the inverted-list additions of :func:`choose_level` are
    executed against the live label sets.  This is far cheaper than the
    delete + re-insert round trip (which rebuilds the labels of everything
    ``v`` touches) and is validated against from-scratch reconstruction by
    the property tests.

    *anchor* must be one of ``v``'s current labels (which is what
    :func:`choose_level` returns): the crossings below it are exactly the
    sweep's prefix.
    """
    order = labeling.order
    vid = labeling.interner.ids[v]
    anchor_id = labeling.interner.ids[anchor]
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    own_in = in_ids[vid]  # live: shrinks as candidates are crossed
    own_out = out_ids[vid]
    candidates = sorted(
        set(own_in) | set(own_out), key=labeling.level_key, reverse=True
    )
    crossed_anchor = False
    for u in candidates:
        if u in own_in:
            labeling.remove_in_id(vid, u)
            labeling.add_out_id(u, vid)
            for w in tuple(labeling.in_holders[vid]):
                if u in in_ids[w]:
                    labeling.remove_in_id(w, u)
            for w in tuple(labeling.out_holders[u]):
                if (
                    w != vid
                    and vid not in out_ids[w]
                    and not ids_intersect(out_ids[w], own_in)
                ):
                    labeling.add_out_id(w, vid)
        else:
            labeling.remove_out_id(vid, u)
            labeling.add_in_id(u, vid)
            for w in tuple(labeling.out_holders[vid]):
                if u in out_ids[w]:
                    labeling.remove_out_id(w, u)
            for w in tuple(labeling.in_holders[u]):
                if (
                    w != vid
                    and vid not in in_ids[w]
                    and not ids_intersect(in_ids[w], own_out)
                ):
                    labeling.add_in_id(w, vid)
        if u == anchor_id:
            crossed_anchor = True
            break
    if not crossed_anchor:
        raise IndexStateError(
            f"relocation anchor {anchor!r} is not a label of {v!r}"
        )
    order.remove(v)
    order.insert_before(v, anchor)


# ----------------------------------------------------------------------
# Step 2 — materialization at a fixed position
# ----------------------------------------------------------------------

def _materialize(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    placement: Placement,
    ins: list,
    outs: list,
    snapshot: Optional[CSRGraph],
) -> None:
    """Insert *v* at *placement* and repair all label sets."""
    order = labeling.order
    if placement == "bottom":
        order.insert_last(v)
    else:
        kind, anchor = placement
        if kind != "above":
            raise IndexStateError(f"unknown placement {placement!r}")
        order.insert_before(v, anchor)
    labeling.add_vertex(v)

    _build_own_labels(labeling, v, ins, outs)
    if snapshot is not None:
        _spread_new_labels_csr(snapshot, labeling, v, forward=True)
        _spread_new_labels_csr(snapshot, labeling, v, forward=False)
    else:
        _spread_new_labels(graph, labeling, v, forward=True)
        _spread_new_labels(graph, labeling, v, forward=False)
    _prune_through(labeling, labeling.interner.ids[v])
    _repair_other_labels(labeling, v)


def _build_own_labels(
    labeling: TOLLabeling, v: Vertex, ins: list, outs: list
) -> None:
    """Refine the candidate sets into ``v``'s own label sets.

    Algorithm 1, lines 1–8: ``Cin(v)`` is the union of ``v``'s in-neighbors
    and their in-label sets (a proven superset of ``L'in(v)``); scanned
    from the highest level down, a candidate is kept when it is higher
    than ``v`` and no already-kept label covers it.  Mirrored for
    ``Cout(v)``.  Neighbor lists come from the caller, which sourced them
    from either the object graph or a CSR snapshot.
    """
    ids = labeling.interner.ids
    vid = ids[v]
    vkey = labeling.order.key(v)
    for incoming in (True, False):
        neighbors = ins if incoming else outs
        neighbor_labels = labeling.in_ids if incoming else labeling.out_ids
        covering = labeling.out_ids if incoming else labeling.in_ids
        own = neighbor_labels[vid]  # live: grows as labels are admitted
        candidates: set[int] = set()
        for u in neighbors:
            uid = ids[u]
            candidates.add(uid)
            candidates.update(neighbor_labels[uid])
        for u in sorted(candidates, key=labeling.level_key):
            if not labeling.level_key(u) < vkey:
                continue  # lower-level vertices are handled by the spread
            if ids_intersect(covering[u], own):
                continue
            if incoming:
                labeling.add_in_id(vid, u)
            else:
                labeling.add_out_id(vid, u)


def _spread_new_labels(
    graph: DiGraph, labeling: TOLLabeling, v: Vertex, *, forward: bool
) -> None:
    """Enter ``v`` into the label sets of lower-level vertices.

    A pruned search from ``v`` restricted to lower-level vertices: with
    ``forward=True``, every visited ``u`` (reachable from ``v``) receives
    ``v`` in ``Lin(u)`` unless ``Lout(v) ∩ Lin(u) ≠ ∅`` — the exact
    Definition-1 condition (see module docstring) — in which case the
    branch is pruned (anything beyond ``u`` via this path is covered by
    the same witness).
    """
    order = labeling.order
    ids = labeling.interner.ids
    vid = ids[v]
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        neighbors = graph.iter_in
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    seen: set[Vertex] = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for u in neighbors(x):
            if u in seen or order.higher(u, v):
                continue
            seen.add(u)
            uid = ids[u]
            if ids_intersect(my_labels, their_labels[uid]):
                continue  # covered: prune this branch
            add_label(uid, vid)
            queue.append(u)


def _spread_new_labels_csr(
    snap: CSRGraph, labeling: TOLLabeling, v: Vertex, *, forward: bool
) -> None:
    """:func:`_spread_new_labels` over a CSR snapshot's flat arrays.

    Identical pruned search, but the BFS walks snapshot ids with a
    ``bytearray`` seen table and crosses into labeling ids only for the
    vertices that survive the level check.  Higher-level vertices are
    marked seen here where the object path leaves them unmarked — both
    skip them on every encounter, so the visit sets match.
    """
    order = labeling.order
    ids = labeling.interner.ids
    table = snap.interner.table
    vid = ids[v]
    vkey = order.key(v)
    if forward:
        offsets = snap.out_offsets
        targets = snap.out_targets
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        offsets = snap.in_offsets
        targets = snap.in_targets
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    start = snap.id_of(v)
    seen = bytearray(snap.num_vertices)
    seen[start] = 1
    queue = [start]
    head = 0
    while head < len(queue):
        x = queue[head]
        head += 1
        for u in targets[offsets[x]:offsets[x + 1]]:
            if seen[u]:
                continue
            seen[u] = 1
            uv = table[u]
            if order.key(uv) < vkey:
                continue  # higher level: never receives v
            uid = ids[uv]
            if ids_intersect(my_labels, their_labels[uid]):
                continue  # covered: prune this branch
            add_label(uid, vid)
            queue.append(u)


# ----------------------------------------------------------------------
# Algorithm 2 — repairing labels between existing vertices
# ----------------------------------------------------------------------

def _repair_other_labels(labeling: TOLLabeling, v: Vertex) -> None:
    """Propagate the new ``u -> v -> w`` connectivity and prune redundancy."""
    vid = labeling.interner.ids[v]
    own_in = sorted(labeling.in_ids[vid], key=labeling.level_key)
    own_out = sorted(labeling.out_ids[vid], key=labeling.level_key)
    _repair_direction(labeling, vid, own_in, own_out, incoming=True)
    _repair_direction(labeling, vid, own_out, own_in, incoming=False)


def _repair_direction(
    labeling: TOLLabeling,
    vid: int,
    sources: list[int],
    sinks: list[int],
    *,
    incoming: bool,
) -> None:
    """One orientation of Algorithm 2.

    With ``incoming=True``: ``sources = L'in(v)`` (they reach ``v``) and
    ``sinks = L'out(v)`` (reached from ``v``); each source ``u`` may become
    an in-label of each lower-level sink ``w`` (and of everything holding
    ``w`` as an in-label, which includes everything holding ``v`` itself
    via the ``w = v`` case).  ``incoming=False`` is the mirrored pass.
    """
    level_key = labeling.level_key
    if incoming:
        their_labels = labeling.in_ids
        cover_labels = labeling.out_ids
        inv = labeling.in_holders
        add = labeling.add_in_id
    else:
        their_labels = labeling.out_ids
        cover_labels = labeling.in_ids
        inv = labeling.out_holders
        add = labeling.add_out_id

    for u in sources:  # ascending level value == highest level first
        u_cover = cover_labels[u]
        u_key = level_key(u)
        for w in sinks + [vid]:
            if w != vid and level_key(w) < u_key:
                continue  # Level Constraint: only lower-level sinks
            if u not in their_labels[w] and not ids_intersect(
                u_cover, their_labels[w]
            ):
                add(w, u)
            for x in tuple(inv[w]):
                if u not in their_labels[x] and not ids_intersect(
                    u_cover, their_labels[x]
                ):
                    add(x, u)
        _prune_through(labeling, u)


def _prune_through(labeling: TOLLabeling, uid: int) -> None:
    """Remove labels made redundant by pairs now connected through *uid*.

    For every ``a`` holding ``u`` as an out-label (``a -> u``) and every
    ``b`` holding ``u`` as an in-label (``u -> b``) the path ``a -> u -> b``
    passes through the higher-level ``u``, so neither endpoint may label
    the other (Path Constraint): drop ``b`` from ``Lout(a)`` and ``a`` from
    ``Lin(b)`` (Algorithm 2, lines 8–13).
    """
    holders_out = labeling.out_holders[uid]  # a with u ∈ Lout(a)
    holders_in = labeling.in_holders[uid]  # b with u ∈ Lin(b)
    if not holders_out or not holders_in:
        return
    for a in tuple(holders_out):
        a_out = labeling.out_ids[a]
        # Iterate the smaller side of the cross product.
        if len(holders_in) <= len(a_out):
            doomed = [b for b in holders_in if b in a_out]
        else:
            doomed = [b for b in a_out if b in holders_in]
        for b in doomed:
            labeling.remove_out_id(a, b)
            labeling.discard_in_id(b, a)
    for b in tuple(holders_in):
        b_in = labeling.in_ids[b]
        if len(holders_out) <= len(b_in):
            doomed = [a for a in holders_out if a in b_in]
        else:
            doomed = [a for a in b_in if a in holders_out]
        for a in doomed:
            labeling.remove_in_id(b, a)
            labeling.discard_out_id(a, b)


def _arr_meets_set(arr, ids: set) -> bool:
    """``True`` iff the sorted id array shares an element with the id set."""
    for x in arr:
        if x in ids:
            return True
    return False


# ----------------------------------------------------------------------
# Flat kernels (engine="csr"): the same algorithms on reusable scratch
# ----------------------------------------------------------------------
#
# Semantics are pinned to the object path above by the differential tests;
# the only intentional behavioral difference is allocation: per-op sets,
# deques and tuples become generation-stamped mark arrays and cursor
# buffers on the labeling's UpdateScratch.  The few remaining allocations
# are the sorted() calls over label-sized candidate lists (each feeds a
# level-ordered admission scan, which needs an actually-sorted sequence).

def _materialize_flat(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    placement: Placement,
    ins: list,
    outs: list,
    snapshot: Optional[CSRGraph],
) -> None:
    """:func:`_materialize` on the labeling's reusable scratch."""
    order = labeling.order
    if placement == "bottom":
        order.insert_last(v)
    else:
        kind, anchor = placement
        if kind != "above":
            raise IndexStateError(f"unknown placement {placement!r}")
        order.insert_before(v, anchor)
    labeling.add_vertex(v)

    scratch = labeling.update_scratch()
    cap = labeling.interner.capacity
    if snapshot is not None and snapshot.num_vertices > cap:
        cap = snapshot.num_vertices
    scratch.begin(cap)

    _build_own_labels_flat(labeling, v, ins, outs, scratch)
    if snapshot is not None:
        _spread_flat_csr(snapshot, labeling, v, outs, True, scratch)
        _spread_flat_csr(snapshot, labeling, v, ins, False, scratch)
    else:
        _spread_flat(graph, labeling, v, True, scratch)
        _spread_flat(graph, labeling, v, False, scratch)
    _prune_through_flat(labeling, labeling.interner.ids[v], scratch)
    _repair_other_labels_flat(labeling, v, scratch)


def _build_own_labels_flat(
    labeling: TOLLabeling, v: Vertex, ins: list, outs: list, scratch
) -> None:
    """:func:`_build_own_labels` with stamped dedup and a cursor buffer."""
    ids = labeling.interner.ids
    table = labeling.interner.table
    okey = labeling.order.key
    vid = ids[v]
    vkey = okey(v)
    seen = scratch.seen
    cand = scratch.cand
    for incoming in (True, False):
        neighbors = ins if incoming else outs
        neighbor_labels = labeling.in_ids if incoming else labeling.out_ids
        covering = labeling.out_ids if incoming else labeling.in_ids
        add = labeling.add_in_id if incoming else labeling.add_out_id
        own = neighbor_labels[vid]  # live: grows as labels are admitted
        gen = scratch.next_gen()
        n = 0
        for u in neighbors:
            uid = ids[u]
            if seen[uid] != gen:
                seen[uid] = gen
                cand[n] = uid
                n += 1
            for w in neighbor_labels[uid]:
                if seen[w] != gen:
                    seen[w] = gen
                    cand[n] = w
                    n += 1
        # Level Constraint prefilter fused with key decoration, then a
        # tuple sort and an admission scan from the highest level down.
        deco = []
        for i in range(n):
            u = cand[i]
            k = okey(table[u])
            if k < vkey:
                deco.append((k, u))
        deco.sort()
        for _, u in deco:
            if ids_intersect(covering[u], own):
                continue
            add(vid, u)


def _spread_flat(
    graph: DiGraph, labeling: TOLLabeling, v: Vertex, forward: bool, scratch
) -> None:
    """:func:`_spread_new_labels` with a stamped seen array and flat queue."""
    ids = labeling.interner.ids
    okey = labeling.order.key
    vkey = okey(v)
    vid = ids[v]
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        neighbors = graph.iter_in
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    gen = scratch.next_gen()
    seen = scratch.seen
    queue = scratch.queue
    seen[vid] = gen
    queue[0] = v
    head, tail = 0, 1
    intersect = ids_intersect
    while head < tail:
        x = queue[head]
        head += 1
        for u in neighbors(x):
            uid = ids[u]
            if seen[uid] == gen:
                continue
            seen[uid] = gen
            if okey(u) < vkey:
                continue  # higher level: never receives v
            if intersect(my_labels, their_labels[uid]):
                continue  # covered: prune this branch
            add_label(uid, vid)
            queue[tail] = u
            tail += 1


def _spread_flat_csr(
    snap: CSRGraph,
    labeling: TOLLabeling,
    v: Vertex,
    seeds: list,
    forward: bool,
    scratch,
) -> None:
    """:func:`_spread_flat` over a CSR snapshot's flat arrays.

    The BFS is seeded from the caller's *live* neighbor list rather than
    ``v``'s snapshot rows, and ``v``'s snapshot id is pre-marked visited —
    together these make the traversal exact even when the snapshot's rows
    touching ``v`` are stale (the snapshot reuse contract for edge ops;
    see module docstring).
    """
    ids = labeling.interner.ids
    table = snap.interner.table
    okey = labeling.order.key
    vid = ids[v]
    vkey = okey(v)
    if forward:
        offsets = snap.out_offsets
        targets = snap.out_targets
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        offsets = snap.in_offsets
        targets = snap.in_targets
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    gen = scratch.next_gen()
    seen = scratch.seen
    queue = scratch.queue
    seen[snap.id_of(v)] = gen  # never read v's (possibly stale) rows
    head = tail = 0
    intersect = ids_intersect
    for u in seeds:
        s = snap.id_of(u)
        if seen[s] == gen:
            continue
        seen[s] = gen
        if okey(u) < vkey:
            continue
        uid = ids[u]
        if intersect(my_labels, their_labels[uid]):
            continue
        add_label(uid, vid)
        queue[tail] = s
        tail += 1
    while head < tail:
        x = queue[head]
        head += 1
        for s in targets[offsets[x]:offsets[x + 1]]:
            if seen[s] == gen:
                continue
            seen[s] = gen
            u = table[s]
            if okey(u) < vkey:
                continue
            uid = ids[u]
            if intersect(my_labels, their_labels[uid]):
                continue
            add_label(uid, vid)
            queue[tail] = s
            tail += 1


def _repair_other_labels_flat(
    labeling: TOLLabeling, v: Vertex, scratch
) -> None:
    """:func:`_repair_other_labels` on scratch buffers.

    Labels are pre-decorated with their level tags and tuple-sorted (one
    C-level sort, no per-element key callback); the decorated lists feed
    :func:`_repair_direction_flat` so sink keys are computed once, not
    once per (source, sink) pair.
    """
    vid = labeling.interner.ids[v]
    okey = labeling.order.key
    table = labeling.interner.table
    own_in = sorted((okey(table[u]), u) for u in labeling.in_ids[vid])
    own_out = sorted((okey(table[u]), u) for u in labeling.out_ids[vid])
    _repair_direction_flat(labeling, vid, own_in, own_out, True, scratch)
    _repair_direction_flat(labeling, vid, own_out, own_in, False, scratch)


def _repair_direction_flat(
    labeling: TOLLabeling,
    vid: int,
    sources: list,
    sinks: list,
    incoming: bool,
    scratch,
) -> None:
    """:func:`_repair_direction` on level-decorated ``(key, id)`` pairs.

    *sources* and *sinks* arrive as sorted ``(level tag, id)`` tuples, so
    the Level Constraint compares cached ints instead of calling
    ``level_key`` per (source, sink) pair (the order does not mutate
    during a repair, so the tags stay valid throughout).
    """
    if incoming:
        their_labels = labeling.in_ids
        cover_labels = labeling.out_ids
        inv = labeling.in_holders
        add = labeling.add_in_id
    else:
        their_labels = labeling.out_ids
        cover_labels = labeling.in_ids
        inv = labeling.out_holders
        add = labeling.add_out_id

    intersect = ids_intersect
    for u_key, u in sources:  # ascending level value == highest first
        u_cover = cover_labels[u]
        # Iterating inv[w] live is safe: the only mutation inside this
        # loop is add(x, u), which touches inv[u] — and a source u is
        # never among the sinks (disjoint label sets of a DAG vertex).
        for w_key, w in sinks:
            if w_key < u_key:
                continue  # Level Constraint: only lower-level sinks
            their_w = their_labels[w]
            if u not in their_w and not intersect(u_cover, their_w):
                add(w, u)
            for x in inv[w]:
                their_x = their_labels[x]
                if u not in their_x and not intersect(u_cover, their_x):
                    add(x, u)
        their_v = their_labels[vid]
        if u not in their_v and not intersect(u_cover, their_v):
            add(vid, u)
        for x in inv[vid]:
            their_x = their_labels[x]
            if u not in their_x and not intersect(u_cover, their_x):
                add(x, u)
        _prune_through_flat(labeling, u, scratch)


def _prune_through_flat(labeling: TOLLabeling, uid: int, scratch) -> None:
    """:func:`_prune_through` on interned ids with stamped holder sets.

    The object path tests ``b in Lout(a)`` by scanning the sorted label
    array — O(|holders| x |labels|) per direction.  Here each holder set
    is stamped into a generation-marked array once, so every label array
    is scanned exactly once with O(1) membership probes; the listcomp
    copies stay (C-speed bulk ops — Python-level cursor loops measured
    *slower*, the scratch contract's documented allocation compromise).
    """
    holders_out = labeling.out_holders[uid]  # a with u ∈ Lout(a)
    holders_in = labeling.in_holders[uid]  # b with u ∈ Lin(b)
    if not holders_out or not holders_in:
        return
    out_ids = labeling.out_ids
    in_ids = labeling.in_ids
    remove_out = labeling.remove_out_id
    discard_in = labeling.discard_in_id
    remove_in = labeling.remove_in_id
    discard_out = labeling.discard_out_id
    marks = scratch.seen
    g_in = scratch.next_gen()
    for b in holders_in:
        marks[b] = g_in
    for a in list(holders_out):
        doomed = [b for b in out_ids[a] if marks[b] == g_in]
        for b in doomed:
            remove_out(a, b)
            discard_in(b, a)
    g_out = scratch.next_gen()
    for a in holders_out:
        marks[a] = g_out
    for b in list(holders_in):
        doomed = [a for a in in_ids[b] if marks[a] == g_out]
        for a in doomed:
            remove_in(b, a)
            discard_out(a, b)


def _choose_level_flat(labeling: TOLLabeling, v: Vertex) -> LevelChoice:
    """The Algorithm-3 sweep on stamped mark arrays.

    One mark array holds both simulated label sets (``sim_in`` under one
    generation, ``sim_out`` under another — disjoint in a DAG, so the
    stamps never collide), a second holds both simulated inverted sets;
    the inverted sets' members are additionally kept in append-only
    cursor buffers because the ``-1`` accounting iterates them (they only
    ever grow during the sweep).
    """
    interner = labeling.interner
    vid = interner.ids[v]
    table = interner.table
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    in_holders = labeling.in_holders
    out_holders = labeling.out_holders
    okey = labeling.order.key

    scratch = labeling.update_scratch()
    scratch.begin(interner.capacity)
    g_sim_in = scratch.next_gen()
    g_sim_out = scratch.next_gen()
    g_inv_in = scratch.next_gen()
    g_inv_out = scratch.next_gen()
    sim = scratch.mark_a
    invm = scratch.mark_b
    cand = scratch.cand
    n = 0
    for u in in_ids[vid]:
        sim[u] = g_sim_in
        cand[n] = u
        n += 1
    for u in out_ids[vid]:
        sim[u] = g_sim_out
        cand[n] = u
        n += 1
    deco = sorted(((okey(table[cand[i]]), cand[i]) for i in range(n)),
                  reverse=True)
    candidates = [u for _, u in deco]
    inv_in = scratch.buf_a
    n_iin = 0
    for w in in_holders[vid]:
        invm[w] = g_inv_in
        inv_in[n_iin] = w
        n_iin += 1
    inv_out = scratch.buf_b
    n_iout = 0
    for w in out_holders[vid]:
        invm[w] = g_inv_out
        inv_out[n_iout] = w
        n_iout += 1

    best_placement: Placement = "bottom"
    best_theta = 0
    theta = 0
    # The meets-marks probes are inlined (for/else) — they run once per
    # inverted-set neighbor and the call overhead dominated the scan.
    for u in candidates:
        delta = 0
        if sim[u] == g_sim_in:
            sim[u] = 0
            invm[u] = g_inv_out
            inv_out[n_iout] = u
            n_iout += 1
            for i in range(n_iin):
                w = inv_in[i]
                if u in in_ids[w]:
                    delta -= 1
            for w in out_holders[u]:
                if invm[w] != g_inv_out:
                    for y in out_ids[w]:
                        if sim[y] == g_sim_in:
                            break
                    else:
                        delta += 1
                        invm[w] = g_inv_out
                        inv_out[n_iout] = w
                        n_iout += 1
        else:
            sim[u] = 0
            invm[u] = g_inv_in
            inv_in[n_iin] = u
            n_iin += 1
            for i in range(n_iout):
                w = inv_out[i]
                if u in out_ids[w]:
                    delta -= 1
            for w in in_holders[u]:
                if invm[w] != g_inv_in:
                    for y in in_ids[w]:
                        if sim[y] == g_sim_out:
                            break
                    else:
                        delta += 1
                        invm[w] = g_inv_in
                        inv_in[n_iin] = w
                        n_iin += 1
        theta += delta
        if theta < best_theta:
            best_theta = theta
            best_placement = ("above", table[u])
    return LevelChoice(best_placement, best_theta, len(candidates))


def _relocate_upward_flat(
    labeling: TOLLabeling, v: Vertex, anchor: Vertex
) -> None:
    """:func:`_relocate_upward` with cursor copies instead of tuples."""
    order = labeling.order
    ids = labeling.interner.ids
    vid = ids[v]
    anchor_id = ids[anchor]
    in_ids = labeling.in_ids
    out_ids = labeling.out_ids
    in_holders = labeling.in_holders
    out_holders = labeling.out_holders
    add_in = labeling.add_in_id
    add_out = labeling.add_out_id
    remove_in = labeling.remove_in_id
    remove_out = labeling.remove_out_id
    intersect = ids_intersect
    own_in = in_ids[vid]  # live: shrinks as candidates are crossed
    own_out = out_ids[vid]

    scratch = labeling.update_scratch()
    scratch.begin(labeling.interner.capacity)
    okey = order.key
    table = labeling.interner.table
    deco = sorted(
        ((okey(table[u]), u) for a in (own_in, own_out) for u in a),
        reverse=True,
    )
    candidates = [u for _, u in deco]
    buf = scratch.buf_a
    crossed_anchor = False
    for u in candidates:
        if u in own_in:
            remove_in(vid, u)
            add_out(u, vid)
            m = 0
            for w in in_holders[vid]:
                buf[m] = w
                m += 1
            for i in range(m):
                w = buf[i]
                if u in in_ids[w]:
                    remove_in(w, u)
            m = 0
            for w in out_holders[u]:
                buf[m] = w
                m += 1
            for i in range(m):
                w = buf[i]
                if (
                    w != vid
                    and vid not in out_ids[w]
                    and not intersect(out_ids[w], own_in)
                ):
                    add_out(w, vid)
        else:
            remove_out(vid, u)
            add_in(u, vid)
            m = 0
            for w in out_holders[vid]:
                buf[m] = w
                m += 1
            for i in range(m):
                w = buf[i]
                if u in out_ids[w]:
                    remove_out(w, u)
            m = 0
            for w in in_holders[u]:
                buf[m] = w
                m += 1
            for i in range(m):
                w = buf[i]
                if (
                    w != vid
                    and vid not in in_ids[w]
                    and not intersect(in_ids[w], own_out)
                ):
                    add_in(w, vid)
        if u == anchor_id:
            crossed_anchor = True
            break
    if not crossed_anchor:
        raise IndexStateError(
            f"relocation anchor {anchor!r} is not a label of {v!r}"
        )
    order.remove(v)
    order.insert_before(v, anchor)
