"""Vertex insertion for TOL indices (Section 5.1, Algorithms 1–3).

Inserting a vertex ``v`` into an indexed DAG has two concerns: *where* ``v``
goes in the level order (Step 1, Algorithm 3) and *materializing* the label
changes (Step 2, Algorithms 1–2).  This module implements both, with three
documented corrections to the printed pseudocode — each one was found by
property-testing against the Definition-1 reference construction and each
is validated the same way (``tests/core/test_insertion.py``):

1. **Label spreading** (printed Algorithm 1, lines 9–10).  The candidate
   sets only contain neighbors and the neighbors' labels, which all rank
   *higher* than the neighbors — so a lower-level vertex reachable from
   ``v`` only transitively (e.g. ``b`` in the chain ``v -> a -> b`` with
   ``v`` ranked highest) never receives ``v`` and the query ``v -> b``
   would break.  We instead spread ``v`` with a level-restricted pruned
   search (:func:`_spread_new_labels`), the primitive that makes
   Butterfly's Algorithm 5 exact: for ``x`` that can reach ``v``,
   ``v ∈ Lout(x)`` iff ``Lout(x) ∩ Lin(v) = ∅`` (take ``z`` = the
   highest-level vertex over all ``x ⇝ v`` paths: if ``z ≠ v`` it blocks
   and appears in both sets; if ``z = v`` nothing can block), so the cover
   check is exact and pruning below a covered vertex is safe.

2. **Pruning through v** (printed Algorithm 2 prunes only through ``v``'s
   own labels).  A pair ``a -> v -> b`` with ``v`` ranked above both makes
   any direct label between ``a`` and ``b`` redundant;
   :func:`_prune_through` is also run on ``v`` itself.

3. **The Δk sweep baseline** (printed Algorithm 3).  The sweep's ``-1``
   terms consult ``Lin(w)`` for vertices ``w`` holding ``v``; but several
   of those labels are only *created by the insertion itself* (Algorithm 2
   adds ``u ∈ L'in(v)`` into ``Lin(w)`` for ``w`` reachable via ``v``), so
   simulating against the pre-insertion index under-counts the benefit of
   high placements.  Additionally the ``+1`` terms admit ``w' ∈ Iout(u)``
   as soon as *any* blocker is crossed rather than the last one.  We
   therefore (a) materialize the bottom placement first — the cheap one:
   no existing vertex gains ``v`` as a label before the sweep runs — and
   run the sweep read-only against the live index
   (:func:`choose_level`), and (b) admit ``w'`` only once
   ``Lout(w') ∩ (remaining higher candidates) = ∅`` (``w'`` is re-examined
   at every later blocker crossing because each blocker holds ``w'`` in
   its inverted list).  If a strictly better position exists, ``v`` is
   relocated by *applying* the sweep's crossings to the live label sets
   (:func:`_relocate_upward`) — far cheaper than a delete/re-insert round
   trip.  The sweep's θ is exact and the relocated index matches the
   from-scratch construction: the property tests check both against
   brute-force reconstruction at every candidate position.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import IndexStateError
from ..graph.digraph import DiGraph
from .labeling import TOLLabeling

__all__ = ["Placement", "LevelChoice", "choose_level", "insert_vertex"]

Vertex = Hashable

#: Placement of a new vertex in the level order: either the literal string
#: ``"bottom"`` (the lowest level, ``l'(v) = |V| + 1``) or ``("above", u)``
#: — immediately above vertex ``u`` (``v`` takes ``u``'s old level).
Placement = Union[str, tuple[str, Vertex]]


@dataclass(frozen=True)
class LevelChoice:
    """Outcome of the Algorithm-3 sweep for a bottom-placed vertex.

    Attributes
    ----------
    placement:
        ``"bottom"`` (stay at the lowest level) or ``("above", u)``.
    theta:
        Exact index-size delta of this placement relative to the bottom
        placement (``θ_k``; 0 for the bottom, negative otherwise).
    candidates_scanned:
        How many candidate positions the sweep evaluated (observability:
        the sweep is sparse — one stop per label of ``v``, not per level).
    """

    placement: Placement
    theta: int
    candidates_scanned: int


def insert_vertex(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    *,
    placement: Optional[Placement] = None,
) -> None:
    """Insert vertex *v* into the index (Section 5.1).

    Parameters
    ----------
    graph:
        The updated DAG, *already containing* ``v`` and its edges (mirrors
        :func:`repro.core.deletion.delete_vertex`, which removes the vertex
        from the graph itself).
    labeling:
        The live TOL index; updated in place (order included).
    placement:
        Where ``v`` goes in the level order.  ``None`` (default) runs the
        Algorithm-3 sweep to find the size-minimizing position;
        ``"bottom"`` gives ``v`` the lowest level (the cheap choice
        discussed in Section 5.1.2); ``("above", u)`` places it explicitly.

    Raises
    ------
    IndexStateError
        If *v* is already indexed, missing from the graph, or a neighbor
        is not indexed.
    """
    if v in labeling:
        raise IndexStateError(f"vertex {v!r} is already indexed")
    if v not in graph:
        raise IndexStateError(f"vertex {v!r} is not in the graph")
    ins = list(graph.in_neighbors(v))
    outs = list(graph.out_neighbors(v))
    for u in ins + outs:
        if u not in labeling:
            raise IndexStateError(f"neighbor {u!r} is not indexed")

    if placement is not None:
        _materialize(graph, labeling, v, placement)
        return

    # Step 1 (Algorithm 3): bottom-place, sweep, relocate if profitable.
    _materialize(graph, labeling, v, "bottom")
    choice = choose_level(labeling, v)
    if choice.placement != "bottom":
        _, anchor = choice.placement
        _relocate_upward(labeling, v, anchor)


def choose_level(labeling: TOLLabeling, v: Vertex) -> LevelChoice:
    """Algorithm-3 sweep: find the upward move of *v* that minimizes ``|L|``.

    *v* must already be indexed; the sweep simulates sliding it upward from
    its current position (for the insertion use case, the bottom) and
    returns the position with the smallest resulting index size.  Read-only.

    At each crossing of a candidate ``u`` (one of ``v``'s current labels,
    visited from the lowest level up):

    * ``u`` stops labeling ``v`` and ``v`` starts labeling ``u`` — a net
      zero (``v`` crossing ``u`` is never blocked, because ``u`` being a
      label of ``v`` means no higher vertex separates them);
    * each vertex currently holding both ``v`` and ``u`` on the same side
      drops ``u`` (now covered through ``v``) — one ``-1`` each;
    * each vertex holding ``u`` whose connection to ``v`` has no remaining
      higher blocker starts holding ``v`` — one ``+1`` each.

    Ties prefer the lowest position (least disruption, cheapest to apply).
    """
    order = labeling.order
    sim_in = set(labeling.label_in[v])
    sim_out = set(labeling.label_out[v])
    # Who holds v as the sweep progresses; starts from v's live state.
    inv_in = set(labeling.inv_in[v])
    inv_out = set(labeling.inv_out[v])

    best_placement: Placement = "bottom"
    best_theta = 0
    theta = 0
    candidates = sorted(sim_in | sim_out, key=order.key, reverse=True)
    for u in candidates:
        delta = 0
        if u in sim_in:
            sim_in.remove(u)
            inv_out.add(u)
            for w in inv_in:
                if u in labeling.label_in[w]:
                    delta -= 1
            for w in labeling.inv_out[u]:
                if w not in inv_out and not _intersects(
                    labeling.label_out[w], sim_in
                ):
                    delta += 1
                    inv_out.add(w)
        else:
            sim_out.remove(u)
            inv_in.add(u)
            for w in inv_out:
                if u in labeling.label_out[w]:
                    delta -= 1
            for w in labeling.inv_in[u]:
                if w not in inv_in and not _intersects(
                    labeling.label_in[w], sim_out
                ):
                    delta += 1
                    inv_in.add(w)
        theta += delta
        if theta < best_theta:
            best_theta = theta
            best_placement = ("above", u)
    return LevelChoice(best_placement, best_theta, len(candidates))


def _relocate_upward(labeling: TOLLabeling, v: Vertex, anchor: Vertex) -> None:
    """Move *v* from its current level to just above *anchor*, in place.

    Applies the Algorithm-3 crossings for real instead of simulating them:
    at each candidate crossing the ``u``/``v`` label swap, the coverage
    removals and the inverted-list additions of :func:`choose_level` are
    executed against the live label sets.  This is far cheaper than the
    delete + re-insert round trip (which rebuilds the labels of everything
    ``v`` touches) and is validated against from-scratch reconstruction by
    the property tests.

    *anchor* must be one of ``v``'s current labels (which is what
    :func:`choose_level` returns): the crossings below it are exactly the
    sweep's prefix.
    """
    order = labeling.order
    own_in = labeling.label_in[v]
    own_out = labeling.label_out[v]
    candidates = sorted(own_in | own_out, key=order.key, reverse=True)
    crossed_anchor = False
    for u in candidates:
        if u in own_in:
            labeling.remove_in_label(v, u)
            labeling.add_out_label(u, v)
            for w in tuple(labeling.inv_in[v]):
                if u in labeling.label_in[w]:
                    labeling.remove_in_label(w, u)
            for w in tuple(labeling.inv_out[u]):
                if w is not v and v not in labeling.label_out[w] and labeling.label_out[
                    w
                ].isdisjoint(own_in):
                    labeling.add_out_label(w, v)
        else:
            labeling.remove_out_label(v, u)
            labeling.add_in_label(u, v)
            for w in tuple(labeling.inv_out[v]):
                if u in labeling.label_out[w]:
                    labeling.remove_out_label(w, u)
            for w in tuple(labeling.inv_in[u]):
                if w is not v and v not in labeling.label_in[w] and labeling.label_in[
                    w
                ].isdisjoint(own_out):
                    labeling.add_in_label(w, v)
        if u == anchor:
            crossed_anchor = True
            break
    if not crossed_anchor:
        raise IndexStateError(
            f"relocation anchor {anchor!r} is not a label of {v!r}"
        )
    order.remove(v)
    order.insert_before(v, anchor)


# ----------------------------------------------------------------------
# Step 2 — materialization at a fixed position
# ----------------------------------------------------------------------

def _materialize(
    graph: DiGraph, labeling: TOLLabeling, v: Vertex, placement: Placement
) -> None:
    """Insert *v* at *placement* and repair all label sets."""
    order = labeling.order
    if placement == "bottom":
        order.insert_last(v)
    else:
        kind, anchor = placement
        if kind != "above":
            raise IndexStateError(f"unknown placement {placement!r}")
        order.insert_before(v, anchor)
    labeling.add_vertex(v)

    _build_own_labels(graph, labeling, v)
    _spread_new_labels(graph, labeling, v, forward=True)
    _spread_new_labels(graph, labeling, v, forward=False)
    _prune_through(labeling, v)
    _repair_other_labels(labeling, v)


def _build_own_labels(
    graph: DiGraph, labeling: TOLLabeling, v: Vertex
) -> None:
    """Refine the candidate sets into ``v``'s own label sets.

    Algorithm 1, lines 1–8: ``Cin(v)`` is the union of ``v``'s in-neighbors
    and their in-label sets (a proven superset of ``L'in(v)``); scanned
    from the highest level down, a candidate is kept when it is higher
    than ``v`` and no already-kept label covers it.  Mirrored for
    ``Cout(v)``.
    """
    order = labeling.order
    for incoming in (True, False):
        neighbors = graph.iter_in(v) if incoming else graph.iter_out(v)
        neighbor_labels = labeling.label_in if incoming else labeling.label_out
        covering = labeling.label_out if incoming else labeling.label_in
        own = labeling.label_in[v] if incoming else labeling.label_out[v]
        candidates: set[Vertex] = set()
        for u in neighbors:
            candidates.add(u)
            candidates |= neighbor_labels[u]
        for u in sorted(candidates, key=order.key):
            if not order.higher(u, v):
                continue  # lower-level vertices are handled by the spread
            if _intersects(covering[u], own):
                continue
            if incoming:
                labeling.add_in_label(v, u)
            else:
                labeling.add_out_label(v, u)


def _spread_new_labels(
    graph: DiGraph, labeling: TOLLabeling, v: Vertex, *, forward: bool
) -> None:
    """Enter ``v`` into the label sets of lower-level vertices.

    A pruned search from ``v`` restricted to lower-level vertices: with
    ``forward=True``, every visited ``u`` (reachable from ``v``) receives
    ``v`` in ``Lin(u)`` unless ``Lout(v) ∩ Lin(u) ≠ ∅`` — the exact
    Definition-1 condition (see module docstring) — in which case the
    branch is pruned (anything beyond ``u`` via this path is covered by
    the same witness).
    """
    order = labeling.order
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.label_out[v]
        their_labels = labeling.label_in
        add_label = labeling.add_in_label
    else:
        neighbors = graph.iter_in
        my_labels = labeling.label_in[v]
        their_labels = labeling.label_out
        add_label = labeling.add_out_label

    seen: set[Vertex] = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for u in neighbors(x):
            if u in seen or order.higher(u, v):
                continue
            seen.add(u)
            if _intersects(my_labels, their_labels[u]):
                continue  # covered: prune this branch
            add_label(u, v)
            queue.append(u)


# ----------------------------------------------------------------------
# Algorithm 2 — repairing labels between existing vertices
# ----------------------------------------------------------------------

def _repair_other_labels(labeling: TOLLabeling, v: Vertex) -> None:
    """Propagate the new ``u -> v -> w`` connectivity and prune redundancy."""
    order = labeling.order
    own_in = sorted(labeling.label_in[v], key=order.key)
    own_out = sorted(labeling.label_out[v], key=order.key)
    _repair_direction(labeling, v, own_in, own_out, incoming=True)
    _repair_direction(labeling, v, own_out, own_in, incoming=False)


def _repair_direction(
    labeling: TOLLabeling,
    v: Vertex,
    sources: list[Vertex],
    sinks: list[Vertex],
    *,
    incoming: bool,
) -> None:
    """One orientation of Algorithm 2.

    With ``incoming=True``: ``sources = L'in(v)`` (they reach ``v``) and
    ``sinks = L'out(v)`` (reached from ``v``); each source ``u`` may become
    an in-label of each lower-level sink ``w`` (and of everything holding
    ``w`` as an in-label, which includes everything holding ``v`` itself
    via the ``w = v`` case).  ``incoming=False`` is the mirrored pass.
    """
    order = labeling.order
    if incoming:
        their_labels = labeling.label_in
        cover_labels = labeling.label_out
        inv = labeling.inv_in
        add = labeling.add_in_label
    else:
        their_labels = labeling.label_out
        cover_labels = labeling.label_in
        inv = labeling.inv_out
        add = labeling.add_out_label

    for u in sources:  # ascending level value == highest level first
        u_cover = cover_labels[u]
        for w in sinks + [v]:
            if w is not v and order.higher(w, u):
                continue  # Level Constraint: only lower-level sinks
            if u not in their_labels[w] and not _intersects(u_cover, their_labels[w]):
                add(w, u)
            for x in tuple(inv[w]):
                if u not in their_labels[x] and not _intersects(
                    u_cover, their_labels[x]
                ):
                    add(x, u)
        _prune_through(labeling, u)


def _prune_through(labeling: TOLLabeling, u: Vertex) -> None:
    """Remove labels made redundant by pairs now connected through *u*.

    For every ``a`` holding ``u`` as an out-label (``a -> u``) and every
    ``b`` holding ``u`` as an in-label (``u -> b``) the path ``a -> u -> b``
    passes through the higher-level ``u``, so neither endpoint may label
    the other (Path Constraint): drop ``b`` from ``Lout(a)`` and ``a`` from
    ``Lin(b)`` (Algorithm 2, lines 8–13).
    """
    holders_out = labeling.inv_out[u]  # a with u ∈ Lout(a)
    holders_in = labeling.inv_in[u]  # b with u ∈ Lin(b)
    if not holders_out or not holders_in:
        return
    for a in tuple(holders_out):
        a_out = labeling.label_out[a]
        # Iterate the smaller side of the cross product.
        if len(holders_in) <= len(a_out):
            doomed = [b for b in holders_in if b in a_out]
        else:
            doomed = [b for b in a_out if b in holders_in]
        for b in doomed:
            labeling.remove_out_label(a, b)
            labeling.discard_in_label(b, a)
    for b in tuple(holders_in):
        b_in = labeling.label_in[b]
        if len(holders_out) <= len(b_in):
            doomed = [a for a in holders_out if a in b_in]
        else:
            doomed = [a for a in b_in if a in holders_out]
        for a in doomed:
            labeling.remove_in_label(b, a)
            labeling.discard_out_label(a, b)


def _intersects(a: set, b: set) -> bool:
    # set.isdisjoint runs in C and short-circuits on the first witness.
    return not a.isdisjoint(b)
