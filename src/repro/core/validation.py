"""Validation of TOL indices against Definition 1 (test oracle).

These checks are the backbone of the test suite: every construction and
update algorithm is validated by asserting that its output *is* the unique
TOL index for the current ``(graph, order)`` pair, which simultaneously
establishes the Reachability, Level and Path constraints, completeness
(Lemma 1: every reachable pair has a witness) and minimality (Lemma 2: no
label can be dropped).
"""

from __future__ import annotations

from collections.abc import Hashable

from ..graph.digraph import DiGraph
from .labeling import TOLLabeling
from .reference import descendants_map, reference_tol

__all__ = [
    "TOLViolation",
    "find_violations",
    "assert_valid_tol",
    "assert_queries_correct",
]

Vertex = Hashable


class TOLViolation(AssertionError):
    """A labeling failed validation against Definition 1."""


def find_violations(graph: DiGraph, labeling: TOLLabeling) -> list[str]:
    """Return human-readable descriptions of every Definition-1 violation.

    An empty list means *labeling* is exactly the TOL index of the graph
    under its own level order.
    """
    problems: list[str] = []
    expected = reference_tol(graph, labeling.order)
    got = labeling.snapshot()
    want = expected.snapshot()
    for v in sorted(want, key=repr):
        if v not in got:
            problems.append(f"vertex {v!r} missing from labeling")
            continue
        got_in, got_out = got[v]
        want_in, want_out = want[v]
        for u in sorted(want_in - got_in, key=repr):
            problems.append(f"Lin({v!r}) is missing label {u!r}")
        for u in sorted(got_in - want_in, key=repr):
            problems.append(f"Lin({v!r}) has extra label {u!r}")
        for u in sorted(want_out - got_out, key=repr):
            problems.append(f"Lout({v!r}) is missing label {u!r}")
        for u in sorted(got_out - want_out, key=repr):
            problems.append(f"Lout({v!r}) has extra label {u!r}")
    for v in sorted(got, key=repr):
        if v not in want:
            problems.append(f"labeling has unknown vertex {v!r}")
    return problems


def assert_valid_tol(graph: DiGraph, labeling: TOLLabeling) -> None:
    """Raise :class:`TOLViolation` unless *labeling* matches Definition 1."""
    labeling.check_invariants()
    problems = find_violations(graph, labeling)
    if problems:
        shown = "\n  ".join(problems[:20])
        suffix = "" if len(problems) <= 20 else f"\n  ... {len(problems) - 20} more"
        raise TOLViolation(f"labeling violates Definition 1:\n  {shown}{suffix}")


def assert_queries_correct(graph: DiGraph, labeling: TOLLabeling) -> None:
    """Check every (s, t) query against materialized reachability."""
    desc = descendants_map(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            expected = s == t or t in desc[s]
            got = labeling.query(s, t)
            if got != expected:
                raise TOLViolation(
                    f"query({s!r}, {t!r}) = {got}, reachability says {expected}"
                )
