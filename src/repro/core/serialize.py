"""Persisting TOL indices: save a built index, load it without rebuilding.

The paper's preprocessing is the expensive phase (Figure 6); a production
deployment builds once and serves queries from many processes, so the index
must round-trip through disk.  Two formats:

* **binary** (``.tolx``, default) — a compact custom format: a header, the
  vertex table, the level order as ranks, and delta-coded label arrays.
  Integer vertex ids are stored natively; other hashable vertices go
  through their JSON representation in the vertex table.
* **json** (``.json``) — a transparent, diff-able format for debugging and
  interchange.

Both formats store the *graph* alongside the labels: the update algorithms
(Section 5) need adjacency, and shipping it in the same artifact keeps the
pair consistent by construction.  Loading verifies a checksum over the
payload and the format version.

Example
-------
>>> import tempfile, os
>>> from repro import TOLIndex
>>> from repro.graph.generators import figure1_dag
>>> index = TOLIndex.build(figure1_dag())
>>> path = os.path.join(tempfile.mkdtemp(), "fig1.tolx")
>>> save_index(index, path)
>>> restored = load_index(path)
>>> restored.query("e", "c")
True
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import zlib
from array import array
from pathlib import Path
from typing import Optional, Union

from ..errors import IndexStateError, SerializationError
from ..graph.digraph import DiGraph
from .index import TOLIndex
from .intern import VertexInterner
from .labeling import TOLLabeling
from .order import LevelOrder

__all__ = [
    "save_index",
    "load_index",
    "index_to_dict",
    "index_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "save_checkpoint",
    "load_checkpoint",
    "pack_frozen",
    "unpack_frozen",
    "save_pack",
    "load_pack",
    "reachability_index_from_pack",
    "hashable_vertex",
]

PathLike = Union[str, Path]

_MAGIC = b"TOLX"
#: Version 2 adds the interner id table (+ free list) so a round trip
#: preserves id assignment, and a payload checksum on the JSON format.
#: Version-1 artifacts still load (ids are then reassigned densely).
_VERSION = 2
_KNOWN_VERSIONS = (1, 2)

#: Magic + version for service checkpoints (graph snapshot + metadata).
_CKPT_MAGIC = b"TOLC"
_CKPT_VERSION = 1


# ----------------------------------------------------------------------
# Dict (JSON) representation
# ----------------------------------------------------------------------

def index_to_dict(index: TOLIndex) -> dict:
    """Return a JSON-serializable representation of *index*.

    Vertices must be JSON-compatible (int, str, bool, None, or nested
    lists/tuples thereof); anything else raises :class:`IndexStateError`.
    """
    labeling = index.labeling
    order = list(labeling.order)
    position = {v: i for i, v in enumerate(order)}
    graph = index.graph_copy()
    try:
        vertex_table = [json.loads(json.dumps(v)) for v in order]
    except (TypeError, ValueError) as exc:
        raise IndexStateError(
            f"vertices are not JSON-serializable: {exc}"
        ) from None
    # Translate interned ids to order positions through one flat table
    # (avoids re-hashing vertex objects per label).
    intern_ids = labeling.interner.ids
    pos_of_id = [0] * labeling.interner.capacity
    for v, i in intern_ids.items():
        pos_of_id[i] = position[v]
    return {
        "format": "tol-index",
        "version": _VERSION,
        "vertices": vertex_table,
        # Edges and labels reference vertices by their order position.
        "edges": sorted(
            (position[t], position[h]) for t, h in graph.edges()
        ),
        "labels_in": [
            sorted(pos_of_id[u] for u in labeling.in_ids[intern_ids[v]])
            for v in order
        ],
        "labels_out": [
            sorted(pos_of_id[u] for u in labeling.out_ids[intern_ids[v]])
            for v in order
        ],
        # v2: exact interner state, so reload preserves id assignment
        # (and therefore future id allocation) instead of renumbering.
        "intern_ids": [intern_ids[v] for v in order],
        "free_ids": list(labeling.interner.free_ids),
    }


def index_from_dict(payload: dict) -> TOLIndex:
    """Rebuild a :class:`TOLIndex` from :func:`index_to_dict` output.

    Raises
    ------
    SerializationError
        On a malformed payload (missing fields, bad references,
        inconsistent interner table) — never a bare ``KeyError`` or
        ``IndexError`` from mid-parse.
    """
    if not isinstance(payload, dict) or payload.get("format") != "tol-index":
        raise SerializationError("payload is not a serialized TOL index")
    if payload.get("version") not in _KNOWN_VERSIONS:
        raise SerializationError(
            f"unsupported index format version {payload.get('version')!r}"
        )
    try:
        return _index_from_dict_checked(payload)
    except SerializationError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"serialized index payload is malformed: {exc!r}"
        ) from None


def _index_from_dict_checked(payload: dict) -> TOLIndex:
    raw_vertices = payload["vertices"]
    # JSON round-trips tuples as lists; make them hashable again.
    vertices = [_hashable(v) for v in raw_vertices]
    if len(set(vertices)) != len(vertices):
        raise SerializationError("serialized vertex table contains duplicates")

    order = LevelOrder(vertices)
    interner = None
    if payload.get("intern_ids") is not None:
        intern_ids = payload["intern_ids"]
        if len(intern_ids) != len(vertices):
            raise SerializationError(
                "intern id table does not match the vertex table"
            )
        interner = VertexInterner.restore(
            dict(zip(vertices, intern_ids)), payload.get("free_ids", ())
        )
    labeling = TOLLabeling(order, interner=interner)
    for i, ids in enumerate(payload["labels_in"]):
        v = vertices[i]
        for u in ids:
            labeling.add_in_label(v, vertices[u])
    for i, ids in enumerate(payload["labels_out"]):
        v = vertices[i]
        for u in ids:
            labeling.add_out_label(v, vertices[u])

    graph = DiGraph(vertices=vertices)
    for tail, head in payload["edges"]:
        graph.add_edge(vertices[tail], vertices[head])
    return TOLIndex(graph, labeling)


def _hashable(v):
    return tuple(_hashable(x) for x in v) if isinstance(v, list) else v


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

def _write_uvarint(buf: io.BytesIO, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.write(bytes((byte | 0x80,)))
        else:
            buf.write(bytes((byte,)))
            return


def _read_uvarint(buf: io.BytesIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise SerializationError("truncated index file")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7


def _write_id_list(buf: io.BytesIO, ids: list[int]) -> None:
    """Delta-coded sorted id list: count, first, then gaps."""
    _write_uvarint(buf, len(ids))
    previous = 0
    for i in sorted(ids):
        _write_uvarint(buf, i - previous)
        previous = i


def _read_id_list(buf: io.BytesIO) -> list[int]:
    count = _read_uvarint(buf)
    ids = []
    current = 0
    for _ in range(count):
        current += _read_uvarint(buf)
        ids.append(current)
    return ids


def _encode_binary(payload: dict) -> bytes:
    body = io.BytesIO()
    vertices = payload["vertices"]
    _write_uvarint(body, len(vertices))
    vertex_blob = json.dumps(vertices, separators=(",", ":")).encode("utf-8")
    _write_uvarint(body, len(vertex_blob))
    body.write(vertex_blob)

    edges = payload["edges"]
    _write_uvarint(body, len(edges))
    for tail, head in edges:
        _write_uvarint(body, tail)
        _write_uvarint(body, head)
    for key in ("labels_in", "labels_out"):
        for ids in payload[key]:
            _write_id_list(body, ids)
    # v2: exact interner state (ids per order position, then the free list
    # — the latter is *not* sorted, its LIFO order is part of the state).
    for i in payload["intern_ids"]:
        _write_uvarint(body, i)
    _write_uvarint(body, len(payload["free_ids"]))
    for i in payload["free_ids"]:
        _write_uvarint(body, i)

    raw = body.getvalue()
    compressed = zlib.compress(raw, level=6)
    header = _MAGIC + struct.pack(
        "<HII", _VERSION, len(raw), zlib.crc32(raw)
    )
    return header + compressed


def _decode_binary(blob: bytes) -> dict:
    if blob[:4] != _MAGIC:
        raise SerializationError("not a TOL index file (bad magic)")
    if len(blob) < 14:
        raise SerializationError("truncated index file (incomplete header)")
    version, raw_len, checksum = struct.unpack("<HII", blob[4:14])
    if version not in _KNOWN_VERSIONS:
        raise SerializationError(
            f"unsupported index format version {version}"
        )
    try:
        raw = zlib.decompress(blob[14:])
    except zlib.error as exc:
        raise SerializationError(
            f"index file is corrupt (bad compressed payload: {exc})"
        ) from None
    if len(raw) != raw_len or zlib.crc32(raw) != checksum:
        raise SerializationError("index file is corrupt (checksum mismatch)")

    buf = io.BytesIO(raw)
    try:
        num_vertices = _read_uvarint(buf)
        blob_len = _read_uvarint(buf)
        vertices = json.loads(buf.read(blob_len).decode("utf-8"))
        if len(vertices) != num_vertices:
            raise SerializationError("index file is corrupt (vertex count)")
        num_edges = _read_uvarint(buf)
        edges = [
            (_read_uvarint(buf), _read_uvarint(buf)) for _ in range(num_edges)
        ]
        labels_in = [_read_id_list(buf) for _ in range(num_vertices)]
        labels_out = [_read_id_list(buf) for _ in range(num_vertices)]
        intern_ids = None
        free_ids: list[int] = []
        if version >= 2:
            intern_ids = [_read_uvarint(buf) for _ in range(num_vertices)]
            free_ids = [_read_uvarint(buf) for _ in range(_read_uvarint(buf))]
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"index file is corrupt (bad vertex table: {exc})"
        ) from None
    return {
        "format": "tol-index",
        "version": version,
        "vertices": vertices,
        "edges": edges,
        "labels_in": labels_in,
        "labels_out": labels_out,
        "intern_ids": intern_ids,
        "free_ids": free_ids,
    }


# ----------------------------------------------------------------------
# Public file API
# ----------------------------------------------------------------------

def _payload_crc(payload: dict) -> int:
    """CRC32 over the canonical JSON of *payload* minus the crc field."""
    body = {k: v for k, v in sorted(payload.items()) if k != "crc32"}
    return zlib.crc32(
        json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    )


def save_index(index: TOLIndex, path: PathLike, *, format: str = "auto") -> None:
    """Write *index* to *path*.

    ``format="auto"`` picks JSON for ``.json`` paths and the binary
    format otherwise; ``"json"`` / ``"binary"`` force a format.  Both
    formats carry a format version and a payload checksum, verified on
    load.
    """
    path = Path(path)
    fmt = format
    if fmt == "auto":
        fmt = "json" if path.suffix == ".json" else "binary"
    payload = index_to_dict(index)
    if fmt == "json":
        payload["crc32"] = _payload_crc(payload)
        path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    elif fmt == "binary":
        path.write_bytes(_encode_binary(payload))
    else:
        raise IndexStateError(f"unknown index format {format!r}")


def load_index(path: PathLike) -> TOLIndex:
    """Load an index written by :func:`save_index` (format auto-detected).

    Raises
    ------
    SerializationError
        On truncated, corrupt or checksum-failing input.
    """
    path = Path(path)
    blob = path.read_bytes()
    if blob[:4] == _MAGIC:
        payload = _decode_binary(blob)
    else:
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise SerializationError(
                f"{path} is neither a binary nor a JSON TOL index"
            ) from None
        if isinstance(payload, dict) and "crc32" in payload:
            if payload["crc32"] != _payload_crc(payload):
                raise SerializationError(
                    f"{path} is corrupt (payload checksum mismatch)"
                )
    return index_from_dict(payload)


# ----------------------------------------------------------------------
# Graph snapshots and service checkpoints
# ----------------------------------------------------------------------

def graph_to_dict(graph: DiGraph) -> dict:
    """JSON-serializable snapshot of a (possibly cyclic) directed graph."""
    vertices = list(graph.vertices())
    position = {v: i for i, v in enumerate(vertices)}
    try:
        vertex_table = [json.loads(json.dumps(v)) for v in vertices]
    except (TypeError, ValueError) as exc:
        raise IndexStateError(
            f"vertices are not JSON-serializable: {exc}"
        ) from None
    return {
        "vertices": vertex_table,
        "edges": sorted((position[t], position[h]) for t, h in graph.edges()),
    }


def graph_from_dict(payload: dict) -> DiGraph:
    """Rebuild a :class:`DiGraph` from :func:`graph_to_dict` output."""
    try:
        vertices = [_hashable(v) for v in payload["vertices"]]
        if len(set(vertices)) != len(vertices):
            raise SerializationError(
                "serialized graph vertex table contains duplicates"
            )
        graph = DiGraph(vertices=vertices)
        for tail, head in payload["edges"]:
            graph.add_edge(vertices[tail], vertices[head])
    except SerializationError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"serialized graph payload is malformed: {exc!r}"
        ) from None
    return graph


def save_checkpoint(path: PathLike, graph: DiGraph, meta: dict) -> None:
    """Write a service checkpoint: a graph snapshot plus JSON metadata.

    The artifact is the durable half of the serving layer's recovery
    story (:mod:`repro.service.durability`): *meta* records at least the
    WAL sequence number the snapshot covers, and the header carries a
    format version and a CRC32 over the compressed payload so
    :func:`load_checkpoint` can reject torn or bit-flipped files.
    """
    body = {"meta": dict(meta), "graph": graph_to_dict(graph)}
    raw = json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    header = _CKPT_MAGIC + struct.pack(
        "<HII", _CKPT_VERSION, len(raw), zlib.crc32(raw)
    )
    Path(path).write_bytes(header + zlib.compress(raw, level=6))


def load_checkpoint(path: PathLike) -> tuple[DiGraph, dict]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns ``(graph, meta)``.

    Raises
    ------
    SerializationError
        On bad magic, an unsupported version, truncation, or a checksum
        mismatch — the recovery path relies on this to fall back to an
        older checkpoint.
    """
    blob = Path(path).read_bytes()
    if blob[:4] != _CKPT_MAGIC:
        raise SerializationError(f"{path} is not a TOL checkpoint (bad magic)")
    if len(blob) < 14:
        raise SerializationError(f"{path} is truncated (incomplete header)")
    version, raw_len, checksum = struct.unpack("<HII", blob[4:14])
    if version != _CKPT_VERSION:
        raise SerializationError(
            f"unsupported checkpoint format version {version}"
        )
    try:
        raw = zlib.decompress(blob[14:])
    except zlib.error as exc:
        raise SerializationError(f"{path} is corrupt ({exc})") from None
    if len(raw) != raw_len or zlib.crc32(raw) != checksum:
        raise SerializationError(f"{path} is corrupt (checksum mismatch)")
    try:
        body = json.loads(raw.decode("utf-8"))
        meta = dict(body["meta"])
        graph = graph_from_dict(body["graph"])
    except SerializationError:
        raise
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SerializationError(
            f"{path} checkpoint body is malformed: {exc!r}"
        ) from None
    return graph, meta


# ----------------------------------------------------------------------
# TOLF pack format: mmap/shm-able frozen snapshots
# ----------------------------------------------------------------------
#
# The ``.tolf`` pack is the zero-copy counterpart of ``.tolx``: instead
# of delta-coded varints it lays the four CSR buffers of a
# :class:`~repro.core.frozen.FrozenTOLIndex` out verbatim, 8-byte
# aligned, so a reader can ``mmap`` the file (or attach the same bytes
# in a ``multiprocessing.shared_memory`` segment) and serve queries
# straight from ``memoryview.cast`` views without materializing arrays.
#
# Layout (little-endian, all sections 8-byte aligned):
#
#   header   64 B   magic "TOLF", version, flags, n, |Lin|, |Lout|,
#                   n_edges, meta_len, crc32(body)
#   body     in_offsets  (n+1) x i64
#            out_offsets (n+1) x i64
#            in_labels   |Lin|  x i32   (+ pad)
#            out_labels  |Lout| x i32   (+ pad)
#            edges       n_edges x 2 x i32  (+ pad)  [optional]
#            meta        meta_len B of JSON
#
# ``meta`` always carries ``vertex_of`` (the frozen vertex table, in
# level order).  Packs written for a full server restore additionally
# carry the original graph (``vertices``/``component_of``/
# ``graph_edges``) so :func:`reachability_index_from_pack` can rebuild
# the condensation front-end with its component ids intact; shared-memory
# publishes omit the edge section and the graph to keep segments small.

_PACK_MAGIC = b"TOLF"
_PACK_VERSION = 1
_PACK_HEADER = struct.Struct("<4sHHqqqqqI")
_PACK_HEADER_SIZE = 64


def hashable_vertex(v):
    """JSON round-trip repair: lists (ex-tuples) back to hashable tuples."""
    return _hashable(v)


def _pad8(n: int) -> int:
    return (-n) % 8


def pack_frozen(frozen, meta: Optional[dict] = None, *,
                include_edges: bool = True) -> bytes:
    """Serialize a :class:`FrozenTOLIndex` to TOLF pack bytes.

    ``include_edges=False`` drops the DAG edge section (readers that only
    answer queries never touch adjacency); such a pack cannot be thawed
    back into a live index.
    """
    meta_doc = dict(meta or {})
    meta_doc["vertex_of"] = [
        json.loads(json.dumps(v)) for v in frozen._vertex_of
    ]
    meta_blob = json.dumps(
        meta_doc, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")

    n = frozen.num_vertices
    in_off = array("q", frozen._in_offsets)
    out_off = array("q", frozen._out_offsets)
    in_lab = frozen._in_labels
    out_lab = frozen._out_labels
    if not isinstance(in_lab, array) or in_lab.itemsize != 4:
        in_lab = array("i", in_lab)
    if not isinstance(out_lab, array) or out_lab.itemsize != 4:
        out_lab = array("i", out_lab)
    edges = tuple(frozen._edges) if include_edges else ()
    edge_flat = array("i")
    for tail, head in edges:
        edge_flat.append(tail)
        edge_flat.append(head)

    body = io.BytesIO()
    body.write(in_off.tobytes())
    body.write(out_off.tobytes())
    for arr in (in_lab, out_lab, edge_flat):
        blob = arr.tobytes()
        body.write(blob)
        body.write(b"\0" * _pad8(len(blob)))
    body.write(meta_blob)
    raw = body.getvalue()

    header = _PACK_HEADER.pack(
        _PACK_MAGIC, _PACK_VERSION, 0, n, len(in_lab), len(out_lab),
        len(edges), len(meta_blob), zlib.crc32(raw),
    )
    return header + b"\0" * (_PACK_HEADER_SIZE - len(header)) + raw


def unpack_frozen(buf, *, verify: bool = True):
    """Attach a :class:`FrozenTOLIndex` to TOLF pack bytes, zero-copy.

    *buf* is any buffer (bytes, ``mmap``, a ``SharedMemory.buf`` slice).
    The returned index's label/offset buffers are ``memoryview.cast``
    views into *buf* — nothing is copied, and *buf*'s backing object is
    kept alive by the views.  Returns ``(frozen, meta)``.
    """
    from .frozen import FrozenTOLIndex

    view = memoryview(buf)
    if len(view) < _PACK_HEADER_SIZE:
        raise SerializationError("truncated TOLF pack (incomplete header)")
    (magic, version, _flags, n, in_len, out_len, n_edges, meta_len,
     checksum) = _PACK_HEADER.unpack_from(view, 0)
    if magic != _PACK_MAGIC:
        raise SerializationError("not a TOLF pack (bad magic)")
    if version != _PACK_VERSION:
        raise SerializationError(f"unsupported TOLF pack version {version}")

    off_bytes = (n + 1) * 8
    in_bytes = in_len * 4
    out_bytes = out_len * 4
    edge_bytes = n_edges * 2 * 4
    pos = _PACK_HEADER_SIZE
    body_len = (
        2 * off_bytes
        + in_bytes + _pad8(in_bytes)
        + out_bytes + _pad8(out_bytes)
        + edge_bytes + _pad8(edge_bytes)
        + meta_len
    )
    if len(view) < pos + body_len:
        raise SerializationError("truncated TOLF pack (incomplete body)")
    body = view[pos:pos + body_len]
    if verify and zlib.crc32(body) != checksum:
        raise SerializationError("TOLF pack is corrupt (checksum mismatch)")

    def take(nbytes: int, pad: bool = True):
        nonlocal pos
        section = view[pos:pos + nbytes]
        pos += nbytes + (_pad8(nbytes) if pad else 0)
        return section

    in_offsets = take(off_bytes).cast("q")
    out_offsets = take(off_bytes).cast("q")
    in_labels = take(in_bytes).cast("i")
    out_labels = take(out_bytes).cast("i")
    edge_view = take(edge_bytes).cast("i")
    try:
        meta = json.loads(bytes(take(meta_len, pad=False)).decode("utf-8"))
        vertex_of = [_hashable(v) for v in meta["vertex_of"]]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError) as exc:
        raise SerializationError(
            f"TOLF pack metadata is malformed: {exc!r}"
        ) from None
    if len(vertex_of) != n:
        raise SerializationError("TOLF pack vertex table does not match n")
    edges = tuple(
        (edge_view[2 * k], edge_view[2 * k + 1]) for k in range(n_edges)
    )
    id_of = {v: i for i, v in enumerate(vertex_of)}
    frozen = FrozenTOLIndex(
        id_of, vertex_of, in_offsets, in_labels, out_offsets, out_labels,
        edges,
    )
    return frozen, meta


def save_pack(path: PathLike, frozen, meta: Optional[dict] = None, *,
              include_edges: bool = True) -> None:
    """Atomically write a TOLF pack (tmp file + rename)."""
    path = Path(path)
    blob = pack_frozen(frozen, meta, include_edges=include_edges)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


def load_pack(path: PathLike, *, mmap_file: bool = True):
    """Load a TOLF pack from disk; returns ``(frozen, meta)``.

    With ``mmap_file=True`` (default) the pack is memory-mapped and the
    index's buffers are views into the mapping — the file's pages are
    shared, unmodified, between every process that maps it.  The mapping
    stays alive as long as the returned index does.
    """
    path = Path(path)
    if mmap_file:
        with open(path, "rb") as fh:
            try:
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file
                raise SerializationError(f"{path} is empty: {exc}") from None
        return unpack_frozen(mapped)
    return unpack_frozen(path.read_bytes())


def reachability_index_from_pack(frozen, meta: dict, *,
                                 order: str = "butterfly-u",
                                 prune: bool = True,
                                 engine: str = "csr"):
    """Rebuild a full :class:`ReachabilityIndex` from a TOLF pack.

    Requires a pack written with the graph sections (``repro pack`` does
    this): ``vertices`` + ``component_of`` + ``graph_edges`` in the meta
    and the DAG edge section present.  Component ids are restored
    verbatim, so the thawed TOL index (whose vertex names *are* component
    ids) lines up with the rebuilt condensation.
    """
    from ..graph.condensation import DynamicCondensation
    from .index import ReachabilityIndex

    for key in ("vertices", "component_of", "graph_edges"):
        if key not in meta:
            raise SerializationError(
                f"pack has no {key!r} metadata; it was written without the "
                "graph (e.g. a shared-memory publish) and cannot boot a "
                "server — re-pack with `repro pack`"
            )
    if not frozen._edges and frozen.num_vertices > 1:
        raise SerializationError(
            "pack has no DAG edge section and cannot be thawed"
        )
    vertices = [_hashable(v) for v in meta["vertices"]]
    component_of = dict(zip(vertices, meta["component_of"]))
    graph = DiGraph(vertices=vertices)
    for tail, head in meta["graph_edges"]:
        graph.add_edge(vertices[tail], vertices[head])
    condensation = DynamicCondensation.restore(graph, component_of)
    tol = frozen.thaw()
    return ReachabilityIndex.restore(
        condensation, tol, order=order, prune=prune, engine=engine,
    )
