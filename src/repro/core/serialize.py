"""Persisting TOL indices: save a built index, load it without rebuilding.

The paper's preprocessing is the expensive phase (Figure 6); a production
deployment builds once and serves queries from many processes, so the index
must round-trip through disk.  Two formats:

* **binary** (``.tolx``, default) — a compact custom format: a header, the
  vertex table, the level order as ranks, and delta-coded label arrays.
  Integer vertex ids are stored natively; other hashable vertices go
  through their JSON representation in the vertex table.
* **json** (``.json``) — a transparent, diff-able format for debugging and
  interchange.

Both formats store the *graph* alongside the labels: the update algorithms
(Section 5) need adjacency, and shipping it in the same artifact keeps the
pair consistent by construction.  Loading verifies a checksum over the
payload and the format version.

Example
-------
>>> import tempfile, os
>>> from repro import TOLIndex
>>> from repro.graph.generators import figure1_dag
>>> index = TOLIndex.build(figure1_dag())
>>> path = os.path.join(tempfile.mkdtemp(), "fig1.tolx")
>>> save_index(index, path)
>>> restored = load_index(path)
>>> restored.query("e", "c")
True
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from pathlib import Path
from typing import Union

from ..errors import IndexStateError, SerializationError
from ..graph.digraph import DiGraph
from .index import TOLIndex
from .intern import VertexInterner
from .labeling import TOLLabeling
from .order import LevelOrder

__all__ = [
    "save_index",
    "load_index",
    "index_to_dict",
    "index_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "save_checkpoint",
    "load_checkpoint",
]

PathLike = Union[str, Path]

_MAGIC = b"TOLX"
#: Version 2 adds the interner id table (+ free list) so a round trip
#: preserves id assignment, and a payload checksum on the JSON format.
#: Version-1 artifacts still load (ids are then reassigned densely).
_VERSION = 2
_KNOWN_VERSIONS = (1, 2)

#: Magic + version for service checkpoints (graph snapshot + metadata).
_CKPT_MAGIC = b"TOLC"
_CKPT_VERSION = 1


# ----------------------------------------------------------------------
# Dict (JSON) representation
# ----------------------------------------------------------------------

def index_to_dict(index: TOLIndex) -> dict:
    """Return a JSON-serializable representation of *index*.

    Vertices must be JSON-compatible (int, str, bool, None, or nested
    lists/tuples thereof); anything else raises :class:`IndexStateError`.
    """
    labeling = index.labeling
    order = list(labeling.order)
    position = {v: i for i, v in enumerate(order)}
    graph = index.graph_copy()
    try:
        vertex_table = [json.loads(json.dumps(v)) for v in order]
    except (TypeError, ValueError) as exc:
        raise IndexStateError(
            f"vertices are not JSON-serializable: {exc}"
        ) from None
    # Translate interned ids to order positions through one flat table
    # (avoids re-hashing vertex objects per label).
    intern_ids = labeling.interner.ids
    pos_of_id = [0] * labeling.interner.capacity
    for v, i in intern_ids.items():
        pos_of_id[i] = position[v]
    return {
        "format": "tol-index",
        "version": _VERSION,
        "vertices": vertex_table,
        # Edges and labels reference vertices by their order position.
        "edges": sorted(
            (position[t], position[h]) for t, h in graph.edges()
        ),
        "labels_in": [
            sorted(pos_of_id[u] for u in labeling.in_ids[intern_ids[v]])
            for v in order
        ],
        "labels_out": [
            sorted(pos_of_id[u] for u in labeling.out_ids[intern_ids[v]])
            for v in order
        ],
        # v2: exact interner state, so reload preserves id assignment
        # (and therefore future id allocation) instead of renumbering.
        "intern_ids": [intern_ids[v] for v in order],
        "free_ids": list(labeling.interner.free_ids),
    }


def index_from_dict(payload: dict) -> TOLIndex:
    """Rebuild a :class:`TOLIndex` from :func:`index_to_dict` output.

    Raises
    ------
    SerializationError
        On a malformed payload (missing fields, bad references,
        inconsistent interner table) — never a bare ``KeyError`` or
        ``IndexError`` from mid-parse.
    """
    if not isinstance(payload, dict) or payload.get("format") != "tol-index":
        raise SerializationError("payload is not a serialized TOL index")
    if payload.get("version") not in _KNOWN_VERSIONS:
        raise SerializationError(
            f"unsupported index format version {payload.get('version')!r}"
        )
    try:
        return _index_from_dict_checked(payload)
    except SerializationError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"serialized index payload is malformed: {exc!r}"
        ) from None


def _index_from_dict_checked(payload: dict) -> TOLIndex:
    raw_vertices = payload["vertices"]
    # JSON round-trips tuples as lists; make them hashable again.
    vertices = [_hashable(v) for v in raw_vertices]
    if len(set(vertices)) != len(vertices):
        raise SerializationError("serialized vertex table contains duplicates")

    order = LevelOrder(vertices)
    interner = None
    if payload.get("intern_ids") is not None:
        intern_ids = payload["intern_ids"]
        if len(intern_ids) != len(vertices):
            raise SerializationError(
                "intern id table does not match the vertex table"
            )
        interner = VertexInterner.restore(
            dict(zip(vertices, intern_ids)), payload.get("free_ids", ())
        )
    labeling = TOLLabeling(order, interner=interner)
    for i, ids in enumerate(payload["labels_in"]):
        v = vertices[i]
        for u in ids:
            labeling.add_in_label(v, vertices[u])
    for i, ids in enumerate(payload["labels_out"]):
        v = vertices[i]
        for u in ids:
            labeling.add_out_label(v, vertices[u])

    graph = DiGraph(vertices=vertices)
    for tail, head in payload["edges"]:
        graph.add_edge(vertices[tail], vertices[head])
    return TOLIndex(graph, labeling)


def _hashable(v):
    return tuple(_hashable(x) for x in v) if isinstance(v, list) else v


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

def _write_uvarint(buf: io.BytesIO, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.write(bytes((byte | 0x80,)))
        else:
            buf.write(bytes((byte,)))
            return


def _read_uvarint(buf: io.BytesIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise SerializationError("truncated index file")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7


def _write_id_list(buf: io.BytesIO, ids: list[int]) -> None:
    """Delta-coded sorted id list: count, first, then gaps."""
    _write_uvarint(buf, len(ids))
    previous = 0
    for i in sorted(ids):
        _write_uvarint(buf, i - previous)
        previous = i


def _read_id_list(buf: io.BytesIO) -> list[int]:
    count = _read_uvarint(buf)
    ids = []
    current = 0
    for _ in range(count):
        current += _read_uvarint(buf)
        ids.append(current)
    return ids


def _encode_binary(payload: dict) -> bytes:
    body = io.BytesIO()
    vertices = payload["vertices"]
    _write_uvarint(body, len(vertices))
    vertex_blob = json.dumps(vertices, separators=(",", ":")).encode("utf-8")
    _write_uvarint(body, len(vertex_blob))
    body.write(vertex_blob)

    edges = payload["edges"]
    _write_uvarint(body, len(edges))
    for tail, head in edges:
        _write_uvarint(body, tail)
        _write_uvarint(body, head)
    for key in ("labels_in", "labels_out"):
        for ids in payload[key]:
            _write_id_list(body, ids)
    # v2: exact interner state (ids per order position, then the free list
    # — the latter is *not* sorted, its LIFO order is part of the state).
    for i in payload["intern_ids"]:
        _write_uvarint(body, i)
    _write_uvarint(body, len(payload["free_ids"]))
    for i in payload["free_ids"]:
        _write_uvarint(body, i)

    raw = body.getvalue()
    compressed = zlib.compress(raw, level=6)
    header = _MAGIC + struct.pack(
        "<HII", _VERSION, len(raw), zlib.crc32(raw)
    )
    return header + compressed


def _decode_binary(blob: bytes) -> dict:
    if blob[:4] != _MAGIC:
        raise SerializationError("not a TOL index file (bad magic)")
    if len(blob) < 14:
        raise SerializationError("truncated index file (incomplete header)")
    version, raw_len, checksum = struct.unpack("<HII", blob[4:14])
    if version not in _KNOWN_VERSIONS:
        raise SerializationError(
            f"unsupported index format version {version}"
        )
    try:
        raw = zlib.decompress(blob[14:])
    except zlib.error as exc:
        raise SerializationError(
            f"index file is corrupt (bad compressed payload: {exc})"
        ) from None
    if len(raw) != raw_len or zlib.crc32(raw) != checksum:
        raise SerializationError("index file is corrupt (checksum mismatch)")

    buf = io.BytesIO(raw)
    try:
        num_vertices = _read_uvarint(buf)
        blob_len = _read_uvarint(buf)
        vertices = json.loads(buf.read(blob_len).decode("utf-8"))
        if len(vertices) != num_vertices:
            raise SerializationError("index file is corrupt (vertex count)")
        num_edges = _read_uvarint(buf)
        edges = [
            (_read_uvarint(buf), _read_uvarint(buf)) for _ in range(num_edges)
        ]
        labels_in = [_read_id_list(buf) for _ in range(num_vertices)]
        labels_out = [_read_id_list(buf) for _ in range(num_vertices)]
        intern_ids = None
        free_ids: list[int] = []
        if version >= 2:
            intern_ids = [_read_uvarint(buf) for _ in range(num_vertices)]
            free_ids = [_read_uvarint(buf) for _ in range(_read_uvarint(buf))]
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"index file is corrupt (bad vertex table: {exc})"
        ) from None
    return {
        "format": "tol-index",
        "version": version,
        "vertices": vertices,
        "edges": edges,
        "labels_in": labels_in,
        "labels_out": labels_out,
        "intern_ids": intern_ids,
        "free_ids": free_ids,
    }


# ----------------------------------------------------------------------
# Public file API
# ----------------------------------------------------------------------

def _payload_crc(payload: dict) -> int:
    """CRC32 over the canonical JSON of *payload* minus the crc field."""
    body = {k: v for k, v in sorted(payload.items()) if k != "crc32"}
    return zlib.crc32(
        json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    )


def save_index(index: TOLIndex, path: PathLike, *, format: str = "auto") -> None:
    """Write *index* to *path*.

    ``format="auto"`` picks JSON for ``.json`` paths and the binary
    format otherwise; ``"json"`` / ``"binary"`` force a format.  Both
    formats carry a format version and a payload checksum, verified on
    load.
    """
    path = Path(path)
    fmt = format
    if fmt == "auto":
        fmt = "json" if path.suffix == ".json" else "binary"
    payload = index_to_dict(index)
    if fmt == "json":
        payload["crc32"] = _payload_crc(payload)
        path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    elif fmt == "binary":
        path.write_bytes(_encode_binary(payload))
    else:
        raise IndexStateError(f"unknown index format {format!r}")


def load_index(path: PathLike) -> TOLIndex:
    """Load an index written by :func:`save_index` (format auto-detected).

    Raises
    ------
    SerializationError
        On truncated, corrupt or checksum-failing input.
    """
    path = Path(path)
    blob = path.read_bytes()
    if blob[:4] == _MAGIC:
        payload = _decode_binary(blob)
    else:
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise SerializationError(
                f"{path} is neither a binary nor a JSON TOL index"
            ) from None
        if isinstance(payload, dict) and "crc32" in payload:
            if payload["crc32"] != _payload_crc(payload):
                raise SerializationError(
                    f"{path} is corrupt (payload checksum mismatch)"
                )
    return index_from_dict(payload)


# ----------------------------------------------------------------------
# Graph snapshots and service checkpoints
# ----------------------------------------------------------------------

def graph_to_dict(graph: DiGraph) -> dict:
    """JSON-serializable snapshot of a (possibly cyclic) directed graph."""
    vertices = list(graph.vertices())
    position = {v: i for i, v in enumerate(vertices)}
    try:
        vertex_table = [json.loads(json.dumps(v)) for v in vertices]
    except (TypeError, ValueError) as exc:
        raise IndexStateError(
            f"vertices are not JSON-serializable: {exc}"
        ) from None
    return {
        "vertices": vertex_table,
        "edges": sorted((position[t], position[h]) for t, h in graph.edges()),
    }


def graph_from_dict(payload: dict) -> DiGraph:
    """Rebuild a :class:`DiGraph` from :func:`graph_to_dict` output."""
    try:
        vertices = [_hashable(v) for v in payload["vertices"]]
        if len(set(vertices)) != len(vertices):
            raise SerializationError(
                "serialized graph vertex table contains duplicates"
            )
        graph = DiGraph(vertices=vertices)
        for tail, head in payload["edges"]:
            graph.add_edge(vertices[tail], vertices[head])
    except SerializationError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"serialized graph payload is malformed: {exc!r}"
        ) from None
    return graph


def save_checkpoint(path: PathLike, graph: DiGraph, meta: dict) -> None:
    """Write a service checkpoint: a graph snapshot plus JSON metadata.

    The artifact is the durable half of the serving layer's recovery
    story (:mod:`repro.service.durability`): *meta* records at least the
    WAL sequence number the snapshot covers, and the header carries a
    format version and a CRC32 over the compressed payload so
    :func:`load_checkpoint` can reject torn or bit-flipped files.
    """
    body = {"meta": dict(meta), "graph": graph_to_dict(graph)}
    raw = json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    header = _CKPT_MAGIC + struct.pack(
        "<HII", _CKPT_VERSION, len(raw), zlib.crc32(raw)
    )
    Path(path).write_bytes(header + zlib.compress(raw, level=6))


def load_checkpoint(path: PathLike) -> tuple[DiGraph, dict]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns ``(graph, meta)``.

    Raises
    ------
    SerializationError
        On bad magic, an unsupported version, truncation, or a checksum
        mismatch — the recovery path relies on this to fall back to an
        older checkpoint.
    """
    blob = Path(path).read_bytes()
    if blob[:4] != _CKPT_MAGIC:
        raise SerializationError(f"{path} is not a TOL checkpoint (bad magic)")
    if len(blob) < 14:
        raise SerializationError(f"{path} is truncated (incomplete header)")
    version, raw_len, checksum = struct.unpack("<HII", blob[4:14])
    if version != _CKPT_VERSION:
        raise SerializationError(
            f"unsupported checkpoint format version {version}"
        )
    try:
        raw = zlib.decompress(blob[14:])
    except zlib.error as exc:
        raise SerializationError(f"{path} is corrupt ({exc})") from None
    if len(raw) != raw_len or zlib.crc32(raw) != checksum:
        raise SerializationError(f"{path} is corrupt (checksum mismatch)")
    try:
        body = json.loads(raw.decode("utf-8"))
        meta = dict(body["meta"])
        graph = graph_from_dict(body["graph"])
    except SerializationError:
        raise
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SerializationError(
            f"{path} checkpoint body is malformed: {exc!r}"
        ) from None
    return graph, meta
