"""Persisting TOL indices: save a built index, load it without rebuilding.

The paper's preprocessing is the expensive phase (Figure 6); a production
deployment builds once and serves queries from many processes, so the index
must round-trip through disk.  Two formats:

* **binary** (``.tolx``, default) — a compact custom format: a header, the
  vertex table, the level order as ranks, and delta-coded label arrays.
  Integer vertex ids are stored natively; other hashable vertices go
  through their JSON representation in the vertex table.
* **json** (``.json``) — a transparent, diff-able format for debugging and
  interchange.

Both formats store the *graph* alongside the labels: the update algorithms
(Section 5) need adjacency, and shipping it in the same artifact keeps the
pair consistent by construction.  Loading verifies a checksum over the
payload and the format version.

Example
-------
>>> import tempfile, os
>>> from repro import TOLIndex
>>> from repro.graph.generators import figure1_dag
>>> index = TOLIndex.build(figure1_dag())
>>> path = os.path.join(tempfile.mkdtemp(), "fig1.tolx")
>>> save_index(index, path)
>>> restored = load_index(path)
>>> restored.query("e", "c")
True
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from pathlib import Path
from typing import Union

from ..errors import IndexStateError
from ..graph.digraph import DiGraph
from .index import TOLIndex
from .labeling import TOLLabeling
from .order import LevelOrder

__all__ = ["save_index", "load_index", "index_to_dict", "index_from_dict"]

PathLike = Union[str, Path]

_MAGIC = b"TOLX"
_VERSION = 1


# ----------------------------------------------------------------------
# Dict (JSON) representation
# ----------------------------------------------------------------------

def index_to_dict(index: TOLIndex) -> dict:
    """Return a JSON-serializable representation of *index*.

    Vertices must be JSON-compatible (int, str, bool, None, or nested
    lists/tuples thereof); anything else raises :class:`IndexStateError`.
    """
    labeling = index.labeling
    order = list(labeling.order)
    position = {v: i for i, v in enumerate(order)}
    graph = index.graph_copy()
    try:
        vertex_table = [json.loads(json.dumps(v)) for v in order]
    except (TypeError, ValueError) as exc:
        raise IndexStateError(
            f"vertices are not JSON-serializable: {exc}"
        ) from None
    # Translate interned ids to order positions through one flat table
    # (avoids re-hashing vertex objects per label).
    intern_ids = labeling.interner.ids
    pos_of_id = [0] * labeling.interner.capacity
    for v, i in intern_ids.items():
        pos_of_id[i] = position[v]
    return {
        "format": "tol-index",
        "version": _VERSION,
        "vertices": vertex_table,
        # Edges and labels reference vertices by their order position.
        "edges": sorted(
            (position[t], position[h]) for t, h in graph.edges()
        ),
        "labels_in": [
            sorted(pos_of_id[u] for u in labeling.in_ids[intern_ids[v]])
            for v in order
        ],
        "labels_out": [
            sorted(pos_of_id[u] for u in labeling.out_ids[intern_ids[v]])
            for v in order
        ],
    }


def index_from_dict(payload: dict) -> TOLIndex:
    """Rebuild a :class:`TOLIndex` from :func:`index_to_dict` output."""
    if payload.get("format") != "tol-index":
        raise IndexStateError("payload is not a serialized TOL index")
    if payload.get("version") != _VERSION:
        raise IndexStateError(
            f"unsupported index format version {payload.get('version')!r}"
        )
    raw_vertices = payload["vertices"]
    # JSON round-trips tuples as lists; make them hashable again.
    vertices = [_hashable(v) for v in raw_vertices]
    if len(set(vertices)) != len(vertices):
        raise IndexStateError("serialized vertex table contains duplicates")

    order = LevelOrder(vertices)
    labeling = TOLLabeling(order)
    for i, ids in enumerate(payload["labels_in"]):
        v = vertices[i]
        for u in ids:
            labeling.add_in_label(v, vertices[u])
    for i, ids in enumerate(payload["labels_out"]):
        v = vertices[i]
        for u in ids:
            labeling.add_out_label(v, vertices[u])

    graph = DiGraph(vertices=vertices)
    for tail, head in payload["edges"]:
        graph.add_edge(vertices[tail], vertices[head])
    return TOLIndex(graph, labeling)


def _hashable(v):
    return tuple(_hashable(x) for x in v) if isinstance(v, list) else v


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

def _write_uvarint(buf: io.BytesIO, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.write(bytes((byte | 0x80,)))
        else:
            buf.write(bytes((byte,)))
            return


def _read_uvarint(buf: io.BytesIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise IndexStateError("truncated index file")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7


def _write_id_list(buf: io.BytesIO, ids: list[int]) -> None:
    """Delta-coded sorted id list: count, first, then gaps."""
    _write_uvarint(buf, len(ids))
    previous = 0
    for i in sorted(ids):
        _write_uvarint(buf, i - previous)
        previous = i


def _read_id_list(buf: io.BytesIO) -> list[int]:
    count = _read_uvarint(buf)
    ids = []
    current = 0
    for _ in range(count):
        current += _read_uvarint(buf)
        ids.append(current)
    return ids


def _encode_binary(payload: dict) -> bytes:
    body = io.BytesIO()
    vertices = payload["vertices"]
    _write_uvarint(body, len(vertices))
    vertex_blob = json.dumps(vertices, separators=(",", ":")).encode("utf-8")
    _write_uvarint(body, len(vertex_blob))
    body.write(vertex_blob)

    edges = payload["edges"]
    _write_uvarint(body, len(edges))
    for tail, head in edges:
        _write_uvarint(body, tail)
        _write_uvarint(body, head)
    for key in ("labels_in", "labels_out"):
        for ids in payload[key]:
            _write_id_list(body, ids)

    raw = body.getvalue()
    compressed = zlib.compress(raw, level=6)
    header = _MAGIC + struct.pack(
        "<HII", _VERSION, len(raw), zlib.crc32(raw)
    )
    return header + compressed


def _decode_binary(blob: bytes) -> dict:
    if blob[:4] != _MAGIC:
        raise IndexStateError("not a TOL index file (bad magic)")
    version, raw_len, checksum = struct.unpack("<HII", blob[4:14])
    if version != _VERSION:
        raise IndexStateError(f"unsupported index format version {version}")
    raw = zlib.decompress(blob[14:])
    if len(raw) != raw_len or zlib.crc32(raw) != checksum:
        raise IndexStateError("index file is corrupt (checksum mismatch)")

    buf = io.BytesIO(raw)
    num_vertices = _read_uvarint(buf)
    blob_len = _read_uvarint(buf)
    vertices = json.loads(buf.read(blob_len).decode("utf-8"))
    if len(vertices) != num_vertices:
        raise IndexStateError("index file is corrupt (vertex count)")
    num_edges = _read_uvarint(buf)
    edges = [
        (_read_uvarint(buf), _read_uvarint(buf)) for _ in range(num_edges)
    ]
    labels_in = [_read_id_list(buf) for _ in range(num_vertices)]
    labels_out = [_read_id_list(buf) for _ in range(num_vertices)]
    return {
        "format": "tol-index",
        "version": version,
        "vertices": vertices,
        "edges": edges,
        "labels_in": labels_in,
        "labels_out": labels_out,
    }


# ----------------------------------------------------------------------
# Public file API
# ----------------------------------------------------------------------

def save_index(index: TOLIndex, path: PathLike, *, format: str = "auto") -> None:
    """Write *index* to *path*.

    ``format="auto"`` picks JSON for ``.json`` paths and the binary
    format otherwise; ``"json"`` / ``"binary"`` force a format.
    """
    path = Path(path)
    fmt = format
    if fmt == "auto":
        fmt = "json" if path.suffix == ".json" else "binary"
    payload = index_to_dict(index)
    if fmt == "json":
        path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    elif fmt == "binary":
        path.write_bytes(_encode_binary(payload))
    else:
        raise IndexStateError(f"unknown index format {format!r}")


def load_index(path: PathLike) -> TOLIndex:
    """Load an index written by :func:`save_index` (format auto-detected)."""
    path = Path(path)
    blob = path.read_bytes()
    if blob[:4] == _MAGIC:
        payload = _decode_binary(blob)
    else:
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise IndexStateError(
                f"{path} is neither a binary nor a JSON TOL index"
            ) from None
    return index_from_dict(payload)
