"""Core TOL machinery: labeling, construction, updates, reduction, facades."""

from .butterfly import butterfly_build
from .deletion import delete_vertex
from .frozen import FrozenTOLIndex, freeze
from .index import ReachabilityIndex, TOLIndex
from .insertion import LevelChoice, Placement, choose_level, insert_vertex
from .intern import VertexInterner
from .labeling import TOLLabeling
from .ops import UpdateOp
from .order import LevelOrder
from .protocols import ReachabilityQuerier
from .orders import (
    ORDER_STRATEGIES,
    butterfly_lower_order,
    butterfly_upper_order,
    degree_order_strategy,
    exact_greedy_order,
    exact_scores,
    hierarchical_order_strategy,
    lower_bound_scores,
    random_order_strategy,
    resolve_order_strategy,
    reverse_topological_order_strategy,
    score_function,
    topological_order_strategy,
    upper_bound_scores,
)
from .reduction import ReductionReport, reduce_labels
from .serialize import index_from_dict, index_to_dict, load_index, save_index
from .stats import LabelStats, labeling_stats, top_label_holders
from .reference import ancestors_map, descendants_map, reference_tol
from .validation import (
    TOLViolation,
    assert_queries_correct,
    assert_valid_tol,
    find_violations,
)

__all__ = [
    "TOLIndex",
    "ReachabilityIndex",
    "FrozenTOLIndex",
    "freeze",
    "TOLLabeling",
    "VertexInterner",
    "ReachabilityQuerier",
    "LevelOrder",
    "UpdateOp",
    "butterfly_build",
    "insert_vertex",
    "delete_vertex",
    "choose_level",
    "LevelChoice",
    "Placement",
    "reduce_labels",
    "ReductionReport",
    "reference_tol",
    "save_index",
    "load_index",
    "index_to_dict",
    "index_from_dict",
    "LabelStats",
    "labeling_stats",
    "top_label_holders",
    "descendants_map",
    "ancestors_map",
    "assert_valid_tol",
    "assert_queries_correct",
    "find_violations",
    "TOLViolation",
    "ORDER_STRATEGIES",
    "resolve_order_strategy",
    "score_function",
    "exact_scores",
    "upper_bound_scores",
    "lower_bound_scores",
    "butterfly_upper_order",
    "butterfly_lower_order",
    "topological_order_strategy",
    "reverse_topological_order_strategy",
    "degree_order_strategy",
    "hierarchical_order_strategy",
    "exact_greedy_order",
    "random_order_strategy",
]
