"""Obviously-correct (and deliberately slow) reference TOL construction.

This module builds a TOL index straight from Definition 1 of the paper,
using materialized reachability sets.  It exists purely as a test oracle:
:mod:`repro.core.butterfly` and the update algorithms of Section 5 are all
validated against it on small graphs.

Definition 1, restated operationally for a DAG ``G`` and level order ``l``:

* ``u ∈ Lin(v)``  iff  ``u -> v``, ``l(u) < l(v)``, and **no** vertex ``w``
  with ``l(w) < l(u)`` satisfies ``u -> w`` and ``w -> v``.
* ``u ∈ Lout(v)`` iff  ``v -> u``, ``l(u) < l(v)``, and **no** vertex ``w``
  with ``l(w) < l(u)`` satisfies ``v -> w`` and ``w -> u``.

The path-constraint rewriting ("some simple path from u to v contains a
higher-level vertex w" ⟺ "∃ w higher than u with u -> w and w -> v") is
valid in DAGs because concatenating a ``u ⇝ w`` path with a ``w ⇝ v`` path
can never revisit a vertex — a revisit would close a cycle.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..graph.dag import topological_order
from ..graph.digraph import DiGraph
from .labeling import TOLLabeling
from .order import LevelOrder

__all__ = ["descendants_map", "ancestors_map", "reference_tol"]

Vertex = Hashable


def descendants_map(graph: DiGraph) -> dict[Vertex, set[Vertex]]:
    """Return ``{v: set of vertices v can reach}`` (v excluded), for a DAG.

    Computed by a reverse-topological dynamic program; O(|V|^2) space, which
    is fine for the test-oracle graph sizes this module is meant for.
    """
    desc: dict[Vertex, set[Vertex]] = {}
    for v in reversed(topological_order(graph)):
        reach: set[Vertex] = set()
        for w in graph.iter_out(v):
            reach.add(w)
            reach |= desc[w]
        desc[v] = reach
    return desc


def ancestors_map(graph: DiGraph) -> dict[Vertex, set[Vertex]]:
    """Return ``{v: set of vertices that can reach v}`` (v excluded)."""
    anc: dict[Vertex, set[Vertex]] = {}
    for v in topological_order(graph):
        reach: set[Vertex] = set()
        for u in graph.iter_in(v):
            reach.add(u)
            reach |= anc[u]
        anc[v] = reach
    return anc


def reference_tol(graph: DiGraph, order: LevelOrder) -> TOLLabeling:
    """Build the unique TOL index of *graph* under *order* from Definition 1.

    The *order* must contain exactly the vertices of *graph*.  The returned
    labeling shares the *order* object.
    """
    desc = descendants_map(graph)
    labeling = TOLLabeling(order)
    by_level = list(order)  # highest level first
    level_pos = {v: i for i, v in enumerate(by_level)}

    for v in graph.vertices():
        higher_than_v = by_level[: level_pos[v]]
        for u in higher_than_v:
            if v in desc[u]:  # u -> v: candidate for Lin(v)
                # Path constraint: no w higher than u with u -> w -> v.
                covered = any(
                    w in desc[u] and v in desc[w]
                    for w in by_level[: level_pos[u]]
                )
                if not covered:
                    labeling.add_in_label(v, u)
            if u in desc[v]:  # v -> u: candidate for Lout(v)
                covered = any(
                    w in desc[v] and u in desc[w]
                    for w in by_level[: level_pos[u]]
                )
                if not covered:
                    labeling.add_out_label(v, u)
    return labeling
