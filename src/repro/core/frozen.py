"""FrozenTOLIndex: an immutable, query-optimized snapshot of a TOL index.

The live :class:`~repro.core.index.TOLIndex` keeps label sets as Python
``set`` objects plus inverted lists — the right shape for the update
algorithms, but heavy for read-only serving: every set is a hash table and
every element a boxed int.  Freezing re-packs the whole index into four
flat ``array('l')`` buffers in CSR layout:

* vertices are renumbered ``0..n-1`` by level (highest level = 0), so a
  label's rank *is* its id and level comparisons are integer compares;
* ``in_labels``/``out_labels`` hold every label contiguously, sorted per
  vertex; ``in_offsets``/``out_offsets`` delimit each vertex's slice;
* a query intersects two sorted slices with a linear merge (or a galloping
  probe when one side is much shorter).

This is the shape a C implementation of the paper would use for serving
(the buffers could be mmapped directly), and it shrinks resident memory
several-fold versus hash-set containers (measured in
``benchmarks/bench_frozen.py``).  Query *speed* in pure CPython is on par
with the live index — the set-based probe runs in C, the merge runs in
bytecode, and they roughly cancel out — so freeze for memory and
immutability, not for throughput.  Freezing is O(|L| log |L|) and updates
are intentionally unsupported — thaw back into a :class:`TOLIndex` via
:meth:`FrozenTOLIndex.thaw` to mutate.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Hashable, Iterable
from typing import Optional

from ..errors import UnknownVertexError
from ..graph.digraph import DiGraph
from .index import TOLIndex
from .labeling import TOLLabeling
from .order import LevelOrder

__all__ = ["FrozenTOLIndex", "freeze"]

Vertex = Hashable


class FrozenTOLIndex:
    """Read-only TOL index over flat arrays (see module docstring).

    Build one with :func:`freeze` / :meth:`from_index`.

    Examples
    --------
    >>> from repro.graph.generators import figure1_dag
    >>> frozen = freeze(TOLIndex.build(figure1_dag()))
    >>> frozen.query("e", "c"), frozen.query("c", "e")
    (True, False)
    """

    __slots__ = (
        "_id_of", "_vertex_of", "_in_offsets", "_in_labels",
        "_out_offsets", "_out_labels", "_edges",
    )

    def __init__(
        self,
        id_of: dict[Vertex, int],
        vertex_of: list[Vertex],
        in_offsets: array,
        in_labels: array,
        out_offsets: array,
        out_labels: array,
        edges: Optional[tuple[tuple[int, int], ...]] = None,
    ) -> None:
        self._id_of = id_of
        self._vertex_of = vertex_of
        self._in_offsets = in_offsets
        self._in_labels = in_labels
        self._out_offsets = out_offsets
        self._out_labels = out_labels
        self._edges = edges or ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_index(cls, index: TOLIndex) -> "FrozenTOLIndex":
        """Snapshot a live :class:`TOLIndex` (which stays usable)."""
        labeling = index.labeling
        vertex_of = list(labeling.order)  # highest level first -> id 0
        id_of = {v: i for i, v in enumerate(vertex_of)}

        def pack(label_sets) -> tuple[array, array]:
            """CSR-pack one side's label sets into (offsets, labels)."""
            offsets = array("l", [0])
            labels = array("l")
            for v in vertex_of:
                ids = sorted(id_of[u] for u in label_sets[v])
                labels.extend(ids)
                offsets.append(len(labels))
            return offsets, labels

        in_offsets, in_labels = pack(labeling.label_in)
        out_offsets, out_labels = pack(labeling.label_out)
        graph = index.graph_copy()
        edges = tuple(
            sorted((id_of[t], id_of[h]) for t, h in graph.edges())
        )
        return cls(
            id_of, vertex_of, in_offsets, in_labels, out_offsets, out_labels,
            edges,
        )

    def thaw(self) -> TOLIndex:
        """Rebuild a mutable :class:`TOLIndex` carrying the same state."""
        order = LevelOrder(self._vertex_of)
        labeling = TOLLabeling(order)
        for i, v in enumerate(self._vertex_of):
            lo, hi = self._in_offsets[i], self._in_offsets[i + 1]
            for uid in self._in_labels[lo:hi]:
                labeling.add_in_label(v, self._vertex_of[uid])
            lo, hi = self._out_offsets[i], self._out_offsets[i + 1]
            for uid in self._out_labels[lo:hi]:
                labeling.add_out_label(v, self._vertex_of[uid])
        graph = DiGraph(vertices=self._vertex_of)
        for tid, hid in self._edges:
            graph.add_edge(self._vertex_of[tid], self._vertex_of[hid])
        return TOLIndex(graph, labeling)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` (Equation 1 over the packed arrays)."""
        try:
            sid = self._id_of[s]
            tid = self._id_of[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if sid == tid:
            return True
        out_lo, out_hi = self._out_offsets[sid], self._out_offsets[sid + 1]
        in_lo, in_hi = self._in_offsets[tid], self._in_offsets[tid + 1]
        out_labels, in_labels = self._out_labels, self._in_labels
        # Endpoint hits: t ∈ Lout(s) / s ∈ Lin(t) via binary search.
        pos = bisect_left(out_labels, tid, out_lo, out_hi)
        if pos < out_hi and out_labels[pos] == tid:
            return True
        pos = bisect_left(in_labels, sid, in_lo, in_hi)
        if pos < in_hi and in_labels[pos] == sid:
            return True
        return self._intersect(out_lo, out_hi, in_lo, in_hi)

    def _intersect(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> bool:
        """Sorted-slice intersection: linear merge, galloping when skewed."""
        a, b = self._out_labels, self._in_labels
        len_a, len_b = a_hi - a_lo, b_hi - b_lo
        if len_a == 0 or len_b == 0:
            return False
        if len_a * 16 < len_b:
            for i in range(a_lo, a_hi):
                pos = bisect_left(b, a[i], b_lo, b_hi)
                if pos < b_hi and b[pos] == a[i]:
                    return True
            return False
        if len_b * 16 < len_a:
            for j in range(b_lo, b_hi):
                pos = bisect_left(a, b[j], a_lo, a_hi)
                if pos < a_hi and a[pos] == b[j]:
                    return True
            return False
        i, j = a_lo, b_lo
        while i < a_hi and j < b_hi:
            if a[i] == b[j]:
                return True
            if a[i] < b[j]:
                i += 1
            else:
                j += 1
        return False

    def query_many(self, pairs: Iterable[tuple[Vertex, Vertex]]) -> list[bool]:
        """Answer a batch of queries (convenience for serving loops)."""
        query = self.query
        return [query(s, t) for s, t in pairs]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, v: Vertex) -> bool:
        return v in self._id_of

    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return len(self._vertex_of)

    def size(self) -> int:
        """Total label count ``|L|``."""
        return len(self._in_labels) + len(self._out_labels)

    def size_bytes(self) -> int:
        """Actual buffer bytes of the packed label arrays."""
        return (
            self._in_labels.itemsize * len(self._in_labels)
            + self._out_labels.itemsize * len(self._out_labels)
            + self._in_offsets.itemsize * len(self._in_offsets)
            + self._out_offsets.itemsize * len(self._out_offsets)
        )

    def in_labels(self, v: Vertex) -> frozenset[Vertex]:
        """``Lin(v)`` mapped back to vertex objects."""
        i = self._id_of[v]
        lo, hi = self._in_offsets[i], self._in_offsets[i + 1]
        return frozenset(self._vertex_of[u] for u in self._in_labels[lo:hi])

    def out_labels(self, v: Vertex) -> frozenset[Vertex]:
        """``Lout(v)`` mapped back to vertex objects."""
        i = self._id_of[v]
        lo, hi = self._out_offsets[i], self._out_offsets[i + 1]
        return frozenset(self._vertex_of[u] for u in self._out_labels[lo:hi])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|L|={self.size()}, bytes={self.size_bytes()})"
        )


def freeze(index: TOLIndex) -> FrozenTOLIndex:
    """Shorthand for :meth:`FrozenTOLIndex.from_index`."""
    return FrozenTOLIndex.from_index(index)
