"""FrozenTOLIndex: an immutable, query-optimized snapshot of a TOL index.

The live :class:`~repro.core.index.TOLIndex` already stores labels as
per-vertex sorted ``array('i')`` id buffers (plus the inverted lists the
update algorithms need).  Freezing re-packs those buffers into two flat
``array('i')`` label buffers plus two ``array('l')`` offset buffers in
CSR layout:

* vertices are renumbered ``0..n-1`` by level (highest level = 0), so a
  label's rank *is* its id and level comparisons are integer compares;
* ``in_labels``/``out_labels`` hold every label contiguously, sorted per
  vertex; ``in_offsets``/``out_offsets`` delimit each vertex's slice;
* a query intersects two sorted slices with a linear merge (or a galloping
  probe when one side is much shorter).

Because the live index is id-based, freezing is a near-zero-cost repack:
one rank-translation table plus a small per-vertex sort of each translated
buffer — no hashing of vertex objects.  This is the shape a C
implementation of the paper would use for serving, and the buffers *are*
mmapped directly in the zero-copy path: the four buffers may be
``array`` objects (a local freeze) or ``memoryview.cast`` views into an
mmapped ``.tolf`` pack or a ``multiprocessing.shared_memory`` segment
(see :func:`repro.core.serialize.unpack_frozen` and :mod:`repro.shm`) —
queries only need ``len``/indexing/``bisect``, which both support
identically.  Freezing drops the inverted lists and the per-vertex
array objects, so it still shrinks resident memory versus the live index
(measured in ``benchmarks/bench_frozen.py``); updates are intentionally
unsupported — thaw back into a :class:`TOLIndex` via
:meth:`FrozenTOLIndex.thaw` to mutate.

Size accounting: :meth:`FrozenTOLIndex.size_bytes` reports label payload
bytes (``size() * itemsize``), the same formula — and, since the label
arrays share the live ``'i'`` typecode, the same number — as
:meth:`TOLLabeling.size_bytes <repro.core.labeling.TOLLabeling.size_bytes>`,
so live and frozen sizes are directly comparable;
:meth:`FrozenTOLIndex.buffer_bytes` additionally counts the CSR offset
arrays (the number an mmap of the packed buffers would occupy).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Hashable, Iterable
from typing import Optional

from ..errors import UnknownVertexError
from ..graph.digraph import DiGraph
from .index import TOLIndex
from .labeling import TOLLabeling
from .order import LevelOrder

__all__ = ["FrozenTOLIndex", "freeze"]

Vertex = Hashable


class FrozenTOLIndex:
    """Read-only TOL index over flat arrays (see module docstring).

    Build one with :func:`freeze` / :meth:`from_index`.

    Examples
    --------
    >>> from repro.graph.generators import figure1_dag
    >>> frozen = freeze(TOLIndex.build(figure1_dag()))
    >>> frozen.query("e", "c"), frozen.query("c", "e")
    (True, False)
    """

    __slots__ = (
        "_id_of", "_vertex_of", "_in_offsets", "_in_labels",
        "_out_offsets", "_out_labels", "_edges",
    )

    def __init__(
        self,
        id_of: dict[Vertex, int],
        vertex_of: list[Vertex],
        in_offsets: "array | memoryview",
        in_labels: "array | memoryview",
        out_offsets: "array | memoryview",
        out_labels: "array | memoryview",
        edges: Optional[tuple[tuple[int, int], ...]] = None,
    ) -> None:
        self._id_of = id_of
        self._vertex_of = vertex_of
        self._in_offsets = in_offsets
        self._in_labels = in_labels
        self._out_offsets = out_offsets
        self._out_labels = out_labels
        self._edges = edges or ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_index(cls, index: TOLIndex) -> "FrozenTOLIndex":
        """Snapshot a live :class:`TOLIndex` (which stays usable).

        A rank-translation repack: interned ids are mapped to level ranks
        through one flat table, and each vertex's already-sorted id buffer
        becomes a sorted rank slice after a small per-vertex sort.
        """
        labeling = index.labeling
        vertex_of = list(labeling.order)  # highest level first -> id 0
        id_of = {v: i for i, v in enumerate(vertex_of)}
        # intern id -> level rank, one slot per id (holes stay 0; unused).
        intern_ids = labeling.interner.ids
        rank_of = [0] * labeling.interner.capacity
        for rank, v in enumerate(vertex_of):
            rank_of[intern_ids[v]] = rank

        def pack(buffers) -> tuple[array, array]:
            """CSR-pack one side's id buffers into (offsets, labels)."""
            offsets = array("l", [0])
            labels = array("i")
            for v in vertex_of:
                ranks = sorted(rank_of[u] for u in buffers[intern_ids[v]])
                labels.extend(ranks)
                offsets.append(len(labels))
            return offsets, labels

        in_offsets, in_labels = pack(labeling.in_ids)
        out_offsets, out_labels = pack(labeling.out_ids)
        graph = index.graph_copy()
        edges = tuple(
            sorted((id_of[t], id_of[h]) for t, h in graph.edges())
        )
        return cls(
            id_of, vertex_of, in_offsets, in_labels, out_offsets, out_labels,
            edges,
        )

    def thaw(self) -> TOLIndex:
        """Rebuild a mutable :class:`TOLIndex` carrying the same state."""
        order = LevelOrder(self._vertex_of)
        labeling = TOLLabeling(order)
        for i, v in enumerate(self._vertex_of):
            lo, hi = self._in_offsets[i], self._in_offsets[i + 1]
            for uid in self._in_labels[lo:hi]:
                labeling.add_in_label(v, self._vertex_of[uid])
            lo, hi = self._out_offsets[i], self._out_offsets[i + 1]
            for uid in self._out_labels[lo:hi]:
                labeling.add_out_label(v, self._vertex_of[uid])
        graph = DiGraph(vertices=self._vertex_of)
        for tid, hid in self._edges:
            graph.add_edge(self._vertex_of[tid], self._vertex_of[hid])
        return TOLIndex(graph, labeling)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` (Equation 1 over the packed arrays)."""
        try:
            sid = self._id_of[s]
            tid = self._id_of[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if sid == tid:
            return True
        out_lo, out_hi = self._out_offsets[sid], self._out_offsets[sid + 1]
        in_lo, in_hi = self._in_offsets[tid], self._in_offsets[tid + 1]
        out_labels, in_labels = self._out_labels, self._in_labels
        # Endpoint hits: t ∈ Lout(s) / s ∈ Lin(t) via binary search.
        pos = bisect_left(out_labels, tid, out_lo, out_hi)
        if pos < out_hi and out_labels[pos] == tid:
            return True
        pos = bisect_left(in_labels, sid, in_lo, in_hi)
        if pos < in_hi and in_labels[pos] == sid:
            return True
        return self._intersect(out_lo, out_hi, in_lo, in_hi) >= 0

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one element of ``W(s, t)``, or ``None`` if unreachable."""
        try:
            sid = self._id_of[s]
            tid = self._id_of[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if sid == tid:
            return s
        out_lo, out_hi = self._out_offsets[sid], self._out_offsets[sid + 1]
        in_lo, in_hi = self._in_offsets[tid], self._in_offsets[tid + 1]
        out_labels, in_labels = self._out_labels, self._in_labels
        pos = bisect_left(out_labels, tid, out_lo, out_hi)
        if pos < out_hi and out_labels[pos] == tid:
            return t
        pos = bisect_left(in_labels, sid, in_lo, in_hi)
        if pos < in_hi and in_labels[pos] == sid:
            return s
        w = self._intersect(out_lo, out_hi, in_lo, in_hi)
        return None if w < 0 else self._vertex_of[w]

    def _intersect(self, a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> int:
        """Sorted-slice intersection: return a common id, or -1.

        Linear merge, galloping when one side is much shorter.
        """
        a, b = self._out_labels, self._in_labels
        len_a, len_b = a_hi - a_lo, b_hi - b_lo
        if len_a == 0 or len_b == 0:
            return -1
        if len_a * 16 < len_b:
            for i in range(a_lo, a_hi):
                pos = bisect_left(b, a[i], b_lo, b_hi)
                if pos < b_hi and b[pos] == a[i]:
                    return a[i]
            return -1
        if len_b * 16 < len_a:
            for j in range(b_lo, b_hi):
                pos = bisect_left(a, b[j], a_lo, a_hi)
                if pos < a_hi and a[pos] == b[j]:
                    return b[j]
            return -1
        i, j = a_lo, b_lo
        while i < a_hi and j < b_hi:
            if a[i] == b[j]:
                return a[i]
            if a[i] < b[j]:
                i += 1
            else:
                j += 1
        return -1

    def query_many(self, pairs: Iterable[tuple[Vertex, Vertex]]) -> list[bool]:
        """Answer a batch of queries (convenience for serving loops)."""
        query = self.query
        return [query(s, t) for s, t in pairs]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, v: Vertex) -> bool:
        return v in self._id_of

    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return len(self._vertex_of)

    def size(self) -> int:
        """Total label count ``|L|``."""
        return len(self._in_labels) + len(self._out_labels)

    def size_bytes(self) -> int:
        """Label payload bytes: ``size() * itemsize``.

        Same formula as :meth:`TOLLabeling.size_bytes
        <repro.core.labeling.TOLLabeling.size_bytes>` so live and frozen
        indices are directly comparable; see :meth:`buffer_bytes` for the
        full packed footprint including the CSR offset arrays.
        """
        return (
            self._in_labels.itemsize * len(self._in_labels)
            + self._out_labels.itemsize * len(self._out_labels)
        )

    def buffer_bytes(self) -> int:
        """Total bytes of all four packed buffers (labels + offsets)."""
        return (
            self._in_labels.itemsize * len(self._in_labels)
            + self._out_labels.itemsize * len(self._out_labels)
            + self._in_offsets.itemsize * len(self._in_offsets)
            + self._out_offsets.itemsize * len(self._out_offsets)
        )

    def in_labels(self, v: Vertex) -> frozenset[Vertex]:
        """``Lin(v)`` mapped back to vertex objects."""
        i = self._id_of[v]
        lo, hi = self._in_offsets[i], self._in_offsets[i + 1]
        return frozenset(self._vertex_of[u] for u in self._in_labels[lo:hi])

    def out_labels(self, v: Vertex) -> frozenset[Vertex]:
        """``Lout(v)`` mapped back to vertex objects."""
        i = self._id_of[v]
        lo, hi = self._out_offsets[i], self._out_offsets[i + 1]
        return frozenset(self._vertex_of[u] for u in self._out_labels[lo:hi])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|L|={self.size()}, bytes={self.size_bytes()})"
        )


def freeze(index: TOLIndex) -> FrozenTOLIndex:
    """Shorthand for :meth:`FrozenTOLIndex.from_index`."""
    return FrozenTOLIndex.from_index(index)
