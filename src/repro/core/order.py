"""Order maintenance for dynamic level orders.

A TOL index is parameterized by a *level order* — a strict total order on
the vertices (Section 4).  The update algorithms of Section 5 must insert a
new vertex at an arbitrary position in that order (Algorithm 3 picks the
size-minimizing position) and delete vertices, all **without renumbering the
other vertices**: the whole point of the paper's update scheme is that the
relative order of surviving vertices never changes.

Storing ranks as dense integers would make a mid-order insertion O(|V|).
:class:`LevelOrder` instead solves the classic *order-maintenance* problem
with the list-labeling technique: every item carries a 63-bit integer tag;
comparisons compare tags in O(1); insertion places the new tag midway
between its neighbors' tags, and when a gap is exhausted the structure
relabels all items evenly (amortized O(log n) per insertion for the access
patterns this library produces, and always correct).

A doubly-linked list threaded through the items supports ordered iteration
and O(1) neighbor lookup, which Algorithm 3 needs to express "insert v
immediately above u".
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from ..errors import OrderError

__all__ = ["LevelOrder"]

Item = Hashable

_TAG_SPAN = 1 << 62  # tags live in (0, _TAG_SPAN); plenty of headroom


class _Node:
    __slots__ = ("item", "tag", "prev", "next")

    def __init__(self, item: Item, tag: int) -> None:
        self.item = item
        self.tag = tag
        self.prev: Optional[_Node] = None
        self.next: Optional[_Node] = None


class LevelOrder:
    """A dynamic strict total order over hashable items.

    Convention (matching the paper): item ``a`` has a *higher level* than
    ``b`` when ``a`` precedes ``b`` in this order; "first" therefore means
    "highest level" (``l(v) = 1`` in the paper's 1-based rank notation).

    Examples
    --------
    >>> order = LevelOrder(["a", "b", "c"])
    >>> order.higher("a", "c")
    True
    >>> order.insert_before("x", "b")
    >>> list(order)
    ['a', 'x', 'b', 'c']
    >>> order.remove("b")
    >>> list(order)
    ['a', 'x', 'c']
    >>> order.rank("c")
    3
    """

    def __init__(self, items: Iterable[Item] = ()) -> None:
        self._nodes: dict[Item, _Node] = {}
        self._head: Optional[_Node] = None
        self._tail: Optional[_Node] = None
        self._relabel_count = 0
        for item in items:
            self.insert_last(item)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item: Item) -> bool:
        return item in self._nodes

    def __iter__(self) -> Iterator[Item]:
        """Iterate items from highest level (first) to lowest (last)."""
        node = self._head
        while node is not None:
            yield node.item
            node = node.next

    def key(self, item: Item) -> int:
        """Return an integer sort key: smaller key == higher level.

        Keys are only meaningful relative to one another and are invalidated
        by subsequent insertions (a relabel may change them); use them for
        immediate sorting, not for storage.
        """
        return self._node(item).tag

    def higher(self, a: Item, b: Item) -> bool:
        """Return ``True`` iff *a* has a strictly higher level than *b*."""
        return self._node(a).tag < self._node(b).tag

    def rank(self, item: Item) -> int:
        """Return the 1-based rank of *item* (1 == highest level).  O(n)."""
        target = self._node(item)
        position = 1
        node = self._head
        while node is not None and node is not target:
            position += 1
            node = node.next
        return position

    def first(self) -> Item:
        """Return the highest-level item."""
        if self._head is None:
            raise OrderError("order is empty")
        return self._head.item

    def last(self) -> Item:
        """Return the lowest-level item."""
        if self._tail is None:
            raise OrderError("order is empty")
        return self._tail.item

    def predecessor(self, item: Item) -> Optional[Item]:
        """Return the item immediately above *item*, or ``None``."""
        node = self._node(item).prev
        return None if node is None else node.item

    def successor(self, item: Item) -> Optional[Item]:
        """Return the item immediately below *item*, or ``None``."""
        node = self._node(item).next
        return None if node is None else node.item

    @property
    def relabel_count(self) -> int:
        """Number of global relabels performed (observability for tests)."""
        return self._relabel_count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert_first(self, item: Item) -> None:
        """Insert *item* as the new highest-level element."""
        self._insert(item, before=self._head)

    def insert_last(self, item: Item) -> None:
        """Insert *item* as the new lowest-level element."""
        self._insert(item, before=None)

    def insert_before(self, item: Item, reference: Item) -> None:
        """Insert *item* immediately above *reference* (one level higher)."""
        self._insert(item, before=self._node(reference))

    def insert_after(self, item: Item, reference: Item) -> None:
        """Insert *item* immediately below *reference* (one level lower)."""
        self._insert(item, before=self._node(reference).next)

    def remove(self, item: Item) -> None:
        """Remove *item* from the order."""
        node = self._node(item)
        if node.prev is None:
            self._head = node.next
        else:
            node.prev.next = node.next
        if node.next is None:
            self._tail = node.prev
        else:
            node.next.prev = node.prev
        del self._nodes[item]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node(self, item: Item) -> _Node:
        try:
            return self._nodes[item]
        except KeyError:
            raise OrderError(f"item {item!r} is not in the order") from None

    def _insert(self, item: Item, before: Optional[_Node]) -> None:
        if item in self._nodes:
            raise OrderError(f"item {item!r} is already in the order")
        after = self._tail if before is None else before.prev
        low = 0 if after is None else after.tag
        high = _TAG_SPAN if before is None else before.tag
        if high - low < 2:
            self._relabel()
            low = 0 if after is None else after.tag
            high = _TAG_SPAN if before is None else before.tag
        node = _Node(item, (low + high) // 2)
        node.prev = after
        node.next = before
        if after is None:
            self._head = node
        else:
            after.next = node
        if before is None:
            self._tail = node
        else:
            before.prev = node
        self._nodes[item] = node

    def _relabel(self) -> None:
        """Spread all tags evenly across the tag space."""
        self._relabel_count += 1
        count = len(self._nodes)
        step = _TAG_SPAN // (count + 1)
        if step < 2:
            raise OrderError(
                f"order capacity exceeded: cannot hold {count + 1} items"
            )
        tag = step
        node = self._head
        while node is not None:
            node.tag = tag
            tag += step
            node = node.next

    def check_invariants(self) -> None:
        """Validate linkage and tag monotonicity (for tests)."""
        seen = 0
        prev: Optional[_Node] = None
        node = self._head
        while node is not None:
            assert node.prev is prev
            if prev is not None:
                assert prev.tag < node.tag
            assert self._nodes[node.item] is node
            prev = node
            node = node.next
            seen += 1
        assert prev is self._tail
        assert seen == len(self._nodes)
