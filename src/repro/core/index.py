"""Public index facades.

Two layers:

* :class:`TOLIndex` — the paper's object: a TOL index over a DAG, with
  Butterfly construction (Algorithm 5), dynamic vertex insertion
  (Algorithms 1–3), deletion (Algorithm 4) and iterative label reduction
  (Section 6).  It owns a private copy of the DAG so callers cannot drift
  it out of sync with the labels.

* :class:`ReachabilityIndex` — the end-user API for *arbitrary* directed
  graphs (cycles allowed): it maintains the SCC condensation
  (:class:`~repro.graph.condensation.DynamicCondensation`, the Section-2
  reduction kept incremental per [32]) and mirrors every condensation
  change onto an internal :class:`TOLIndex` by replaying the emitted
  deltas as TOL vertex deletions and insertions.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Optional, Union

from ..errors import IndexStateError, NotADagError
from ..graph.condensation import CondensationDelta, DynamicCondensation
from ..graph.digraph import DiGraph
from .butterfly import butterfly_build
from .insertion import Placement, choose_level, insert_vertex
from .deletion import delete_vertex
from .labeling import TOLLabeling
from .order import LevelOrder
from .orders import OrderStrategy, resolve_order_strategy
from .reduction import ReductionReport, reduce_labels

__all__ = ["TOLIndex", "ReachabilityIndex"]

Vertex = Hashable


class TOLIndex:
    """A dynamic Total Order Labeling reachability index over a DAG.

    Build one with :meth:`build`; query with :meth:`query`; update with
    :meth:`insert_vertex` / :meth:`delete_vertex`; tune with
    :meth:`reduce_labels`.

    Examples
    --------
    >>> from repro.graph import figure1_dag
    >>> index = TOLIndex.build(figure1_dag(), order="butterfly-u")
    >>> index.query("e", "c")
    True
    >>> index.insert_vertex("z", in_neighbors=["c"])
    >>> index.query("e", "z")
    True
    >>> index.delete_vertex("z")
    """

    def __init__(
        self, graph: DiGraph, labeling: TOLLabeling, *, engine: str = "csr"
    ) -> None:
        """Wrap an existing (graph, labeling) pair; prefer :meth:`build`.

        *engine* selects the update kernels: ``"csr"`` (default) runs the
        flat scratch-backed insertion/deletion, ``"object"`` the legacy
        allocating path (kept for differential testing).
        """
        if engine not in ("csr", "object"):
            raise IndexStateError(f"unknown update engine {engine!r}")
        self._graph = graph
        self._labeling = labeling
        self._engine = engine

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        *,
        order: Union[str, OrderStrategy, LevelOrder] = "butterfly-u",
        prune: bool = True,
        engine: str = "csr",
    ) -> "TOLIndex":
        """Build the index for a DAG with Butterfly (Algorithm 5).

        Parameters
        ----------
        graph:
            The DAG to index.  A private copy is taken.
        order:
            A level order for the index: a strategy name from
            :data:`~repro.core.orders.ORDER_STRATEGIES` (``"butterfly-u"``,
            ``"butterfly-l"``, ``"topological"`` for TF, ``"degree"`` for
            DL/PLL, ``"hierarchical"`` for HL, ...), a callable
            ``graph -> LevelOrder``, or a ready :class:`LevelOrder`.
        prune:
            Use the pruned Butterfly traversal (see
            :mod:`repro.core.butterfly`).
        engine:
            Kernel engine for both construction and updates: ``"csr"``
            (default, flat-array kernels) or ``"object"`` (legacy
            dict-walking/allocating path, kept for differential
            testing).  Passed to
            :func:`~repro.core.butterfly.butterfly_build` and remembered
            for :meth:`insert_vertex` / :meth:`delete_vertex` / the edge
            ops.

        Raises
        ------
        NotADagError
            If *graph* has a cycle (use :class:`ReachabilityIndex` for
            general graphs).  Raised by the order strategy or the build
            itself; both engines validate acyclicity.
        """
        own = graph.copy()
        if isinstance(order, LevelOrder):
            level_order = order
        else:
            level_order = resolve_order_strategy(order)(own)
        labeling = butterfly_build(own, level_order, prune=prune, engine=engine)
        return cls(own, labeling, engine=engine)

    # ------------------------------------------------------------------
    # Queries and introspection
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Return ``True`` iff ``s`` can reach ``t``.

        Raises
        ------
        UnknownVertexError
            If either endpoint has never been inserted (a
            :class:`KeyError` subclass, so mapping-style call sites work).
        """
        return self._labeling.query(s, t)

    def query_many(
        self, pairs: Iterable[tuple[Vertex, Vertex]]
    ) -> list[bool]:
        """Answer a batch of queries, in input order."""
        return self._labeling.query_many(pairs)

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one witness vertex for ``s -> t``, or ``None``."""
        return self._labeling.witness(s, t)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._labeling

    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges in the indexed DAG."""
        return self._graph.num_edges

    def size(self) -> int:
        """Total label count ``|L|``."""
        return self._labeling.size()

    def size_bytes(self) -> int:
        """Index size in bytes (4 bytes per label, as in Figure 5)."""
        return self._labeling.size_bytes()

    @property
    def engine(self) -> str:
        """The update-kernel engine (``"csr"`` or ``"object"``)."""
        return self._engine

    @property
    def order(self) -> LevelOrder:
        """The live level order (treat as read-only)."""
        return self._labeling.order

    @property
    def labeling(self) -> TOLLabeling:
        """The live labeling (treat as read-only)."""
        return self._labeling

    def graph_copy(self) -> DiGraph:
        """Return a copy of the indexed DAG."""
        return self._graph.copy()

    def in_labels(self, v: Vertex) -> frozenset[Vertex]:
        """``Lin(v)`` as an immutable snapshot."""
        return frozenset(self._labeling.label_in[v])

    def out_labels(self, v: Vertex) -> frozenset[Vertex]:
        """``Lout(v)`` as an immutable snapshot."""
        return frozenset(self._labeling.label_out[v])

    # ------------------------------------------------------------------
    # Updates (Section 5)
    # ------------------------------------------------------------------

    def insert_vertex(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
        *,
        placement: Optional[Placement] = None,
    ) -> None:
        """Insert vertex *v* with the given neighbor sets (Algorithms 1–3).

        ``placement=None`` (default) picks the index-size-minimizing level
        with Algorithm 3; ``placement="bottom"`` is the cheap O(1)-choice
        alternative the paper discusses.

        Raises
        ------
        NotADagError
            If the insertion would create a cycle.
        IndexStateError
            If *v* exists or a neighbor does not.
        """
        if v in self._labeling:
            raise IndexStateError(f"vertex {v!r} is already indexed")
        ins = list(dict.fromkeys(in_neighbors))
        outs = list(dict.fromkeys(out_neighbors))
        # Cycle pre-check via the index itself: the only new paths go
        # through v, so the insertion creates a cycle iff some
        # out-neighbor already reaches some in-neighbor.  O(|ins|·|outs|)
        # label intersections instead of a full-graph toposort — the same
        # trick insert_edge uses.  (Skipped when a neighbor is unindexed;
        # insert_vertex below raises IndexStateError for that before
        # touching the labeling.)
        labeling = self._labeling
        if all(u in labeling for u in ins) and all(w in labeling for w in outs):
            for w in outs:
                for u in ins:
                    if labeling.query(w, u):
                        raise NotADagError(
                            f"inserting {v!r} would create a cycle "
                            f"({u!r} -> {v!r} -> {w!r} -> ... -> {u!r})"
                        )
        self._graph.add_vertex(v)
        try:
            for u in ins:
                self._graph.add_edge(u, v)
            for w in outs:
                self._graph.add_edge(v, w)
        except Exception:
            self._graph.discard_vertex(v)
            raise
        insert_vertex(
            self._graph, self._labeling, v,
            placement=placement, engine=self._engine,
        )

    def delete_vertex(self, v: Vertex) -> None:
        """Delete vertex *v* and its incident edges (Algorithm 4)."""
        if v not in self._labeling:
            raise IndexStateError(f"vertex {v!r} is not indexed")
        delete_vertex(self._graph, self._labeling, v, engine=self._engine)

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Insert the edge ``tail -> head`` between indexed vertices.

        The paper defines vertex-level updates only; an edge update is
        realized as deleting the head vertex (Algorithm 4) and re-inserting
        it *at its old level* with the new adjacency (Algorithms 1–2) — the
        level order is untouched, so the result is exactly the TOL index of
        the updated DAG under the same order.

        Raises
        ------
        NotADagError
            If the edge would create a cycle.
        IndexStateError
            If an endpoint is missing or the edge already exists.
        """
        if self._graph.has_edge(tail, head):
            raise IndexStateError(
                f"edge ({tail!r} -> {head!r}) is already indexed"
            )
        if tail not in self._labeling or head not in self._labeling:
            missing = tail if tail not in self._labeling else head
            raise IndexStateError(f"vertex {missing!r} is not indexed")
        if self._labeling.query(head, tail):
            raise NotADagError(
                f"edge ({tail!r} -> {head!r}) would create a cycle"
            )
        new_ins = set(self._graph.in_neighbors(head)) | {tail}
        self._reindex_at_same_level(head, new_ins, self._graph.out_neighbors(head))

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Delete the edge ``tail -> head`` (mirror of :meth:`insert_edge`).

        Raises
        ------
        IndexStateError
            If the edge is not indexed.
        """
        if not self._graph.has_edge(tail, head):
            raise IndexStateError(f"edge ({tail!r} -> {head!r}) is not indexed")
        new_ins = set(self._graph.in_neighbors(head)) - {tail}
        self._reindex_at_same_level(head, new_ins, self._graph.out_neighbors(head))

    def _reindex_at_same_level(self, v: Vertex, new_ins, new_outs) -> None:
        """Delete *v* and re-insert it at its old level with new adjacency.

        The deletion runs while the *old* adjacency is still in the graph,
        so every vertex whose labels depended on paths through ``v`` (via
        old edges) is inside ``B+(v)``/``B-(v)`` and gets rebuilt; the
        re-insertion then introduces the *new* adjacency exactly.

        With the flat engine, **one** CSR snapshot — packed here, while
        graph and snapshot still agree exactly — serves both halves of
        the round trip: the delete's frontier BFS walks it as-is, and the
        re-insert's spread tolerates its staleness around ``v`` (the flat
        spread seeds from the live neighbor lists and never reads rows of
        ``v``; see :mod:`repro.core.insertion`).  The object engine keeps
        its snapshot-free dict traversals: its spread reads ``v``'s own
        snapshot rows, which are exactly what the round trip changes.
        """
        order = self._labeling.order
        successor = order.successor(v)
        engine = self._engine
        snap = self._graph.csr() if engine == "csr" else None
        delete_vertex(
            self._graph, self._labeling, v, engine=engine, snapshot=snap
        )
        self._graph.add_vertex(v)
        for u in new_ins:
            self._graph.add_edge(u, v)
        for w in new_outs:
            self._graph.add_edge(v, w)
        placement: Placement = (
            "bottom" if successor is None else ("above", successor)
        )
        insert_vertex(
            self._graph, self._labeling, v,
            placement=placement, snapshot=snap, engine=engine,
        )

    def descendants(self, v: Vertex) -> set[Vertex]:
        """All vertices reachable from *v* (excluding *v*), via the graph."""
        from ..graph.traversal import forward_reachable

        if v not in self._labeling:
            raise IndexStateError(f"vertex {v!r} is not indexed")
        return forward_reachable(self._graph, v)

    def ancestors(self, v: Vertex) -> set[Vertex]:
        """All vertices that can reach *v* (excluding *v*), via the graph."""
        from ..graph.traversal import backward_reachable

        if v not in self._labeling:
            raise IndexStateError(f"vertex {v!r} is not indexed")
        return backward_reachable(self._graph, v)

    def optimal_level(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ):
        """Dry-run Algorithm 3 for a hypothetical new vertex *v*.

        Returns the :class:`~repro.core.insertion.LevelChoice` the sweep
        would pick, leaving the index unchanged (the vertex is inserted at
        the bottom, evaluated, and removed again).
        """
        self.insert_vertex(v, in_neighbors, out_neighbors, placement="bottom")
        try:
            return choose_level(self._labeling, v, engine=self._engine)
        finally:
            self.delete_vertex(v)

    # ------------------------------------------------------------------
    # Label reduction (Section 6)
    # ------------------------------------------------------------------

    def reduce_labels(self, *, max_rounds: int = 1) -> ReductionReport:
        """Shrink the index by re-positioning vertices (Section 6)."""
        return reduce_labels(self._graph, self._labeling, max_rounds=max_rounds)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, |L|={self.size()})"
        )


class ReachabilityIndex:
    """Dynamic reachability queries on arbitrary directed graphs.

    Wraps a :class:`TOLIndex` over the live SCC condensation, so cyclic
    inputs and cycle-creating updates are handled transparently (the
    Section-2 reduction plus the paper's pointer to Dagger-style SCC
    maintenance).

    Examples
    --------
    >>> g = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
    >>> idx = ReachabilityIndex(g)
    >>> idx.query("a", "d"), idx.query("d", "a")
    (True, False)
    >>> idx.insert_edge("d", "b")       # merges {a,b,c} with d
    >>> idx.query("d", "a")
    True
    """

    def __init__(
        self,
        graph: Optional[DiGraph] = None,
        *,
        order: Union[str, OrderStrategy] = "butterfly-u",
        prune: bool = True,
        engine: str = "csr",
    ) -> None:
        self._condensation = DynamicCondensation(
            graph.copy() if graph is not None else DiGraph()
        )
        # Resolve eagerly so a bad name/type fails here with the helpful
        # error, exactly as TOLIndex.build does (uniform across facades).
        self._order_strategy = resolve_order_strategy(order)
        self._prune = prune
        self._engine = engine
        self._tol = TOLIndex.build(
            self._condensation.dag,
            order=self._order_strategy,
            prune=prune,
            engine=engine,
        )

    @classmethod
    def restore(
        cls,
        condensation: DynamicCondensation,
        tol: TOLIndex,
        *,
        order: Union[str, OrderStrategy] = "butterfly-u",
        prune: bool = True,
        engine: str = "csr",
    ) -> "ReachabilityIndex":
        """Adopt a prebuilt condensation + TOL pair without rebuilding.

        The deserialization path (``.tolf`` packs, :func:`
        repro.core.serialize.reachability_index_from_pack`) already holds
        both halves — *tol*'s vertex names must be *condensation*'s
        component ids.  *order*/*prune*/*engine* only govern how future
        updates are replayed.
        """
        self = cls.__new__(cls)
        self._condensation = condensation
        self._order_strategy = resolve_order_strategy(order)
        self._prune = prune
        self._engine = engine
        self._tol = tol
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Return ``True`` iff ``s`` can reach ``t`` in the original graph.

        Raises
        ------
        VertexNotFoundError
            If either endpoint is not in the graph (a :class:`KeyError`
            subclass, so mapping-style call sites work).
        """
        cs = self._condensation.component(s)
        ct = self._condensation.component(t)
        if cs == ct:
            return True
        return self._tol.query(cs, ct)

    def query_many(
        self, pairs: Iterable[tuple[Vertex, Vertex]]
    ) -> list[bool]:
        """Answer a batch of queries, in input order."""
        query = self.query
        return [query(s, t) for s, t in pairs]

    def __contains__(self, v: Vertex) -> bool:
        return v in self._condensation.component_of

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the original graph."""
        return self._condensation.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges in the original graph."""
        return self._condensation.graph.num_edges

    def size(self) -> int:
        """Label count of the underlying TOL index."""
        return self._tol.size()

    def size_bytes(self) -> int:
        """Size in bytes of the underlying TOL index."""
        return self._tol.size_bytes()

    @property
    def engine(self) -> str:
        """The update-kernel engine (``"csr"`` or ``"object"``)."""
        return self._engine

    @property
    def tol(self) -> TOLIndex:
        """The underlying TOL index over the condensation (read-only)."""
        return self._tol

    @property
    def condensation(self) -> DynamicCondensation:
        """The live condensation (read-only)."""
        return self._condensation

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert_vertex(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> None:
        """Insert vertex *v*; neighbors must already exist."""
        delta = self._condensation.insert_vertex(v, in_neighbors, out_neighbors)
        self._apply(delta)

    def delete_vertex(self, v: Vertex) -> None:
        """Delete vertex *v* and its incident edges."""
        delta = self._condensation.delete_vertex(v)
        self._apply(delta)

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Insert the edge ``tail -> head`` (may merge SCCs)."""
        delta = self._condensation.insert_edge(tail, head)
        self._apply(delta)

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Delete the edge ``tail -> head`` (may split an SCC)."""
        delta = self._condensation.delete_edge(tail, head)
        self._apply(delta)

    def reduce_labels(self, *, max_rounds: int = 1) -> ReductionReport:
        """Run Section-6 label reduction on the underlying TOL index."""
        return self._tol.reduce_labels(max_rounds=max_rounds)

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one vertex on some ``s ⇝ t`` path, or ``None``.

        Within one strongly connected component the witness is ``s``
        itself; across components, the TOL witness component is mapped
        back to one of its member vertices.
        """
        cs = self._condensation.component(s)
        ct = self._condensation.component(t)
        if cs == ct:
            return s
        comp = self._tol.witness(cs, ct)
        if comp is None:
            return None
        return next(iter(self._condensation.members[comp]))

    def descendants(self, v: Vertex) -> set[Vertex]:
        """All vertices reachable from *v*, excluding *v* itself.

        The rest of ``v``'s strongly connected component is included (its
        members are mutually reachable).
        """
        comp = self._condensation.component(v)
        members = self._condensation.members
        out = set(members[comp])
        for c in self._tol.descendants(comp):
            out |= members[c]
        out.discard(v)
        return out

    def ancestors(self, v: Vertex) -> set[Vertex]:
        """All vertices that can reach *v*, excluding *v* itself."""
        comp = self._condensation.component(v)
        members = self._condensation.members
        out = set(members[comp])
        for c in self._tol.ancestors(comp):
            out |= members[c]
        out.discard(v)
        return out

    # ------------------------------------------------------------------
    # Delta replay
    # ------------------------------------------------------------------

    def _apply(self, delta: CondensationDelta) -> None:
        """Mirror a condensation delta onto the TOL index."""
        for comp in delta.removed:
            self._tol.delete_vertex(comp)
        dag = self._condensation.dag
        present = self._tol.labeling
        for comp in delta.added:
            ins = [c for c in dag.iter_in(comp) if c in present]
            outs = [c for c in dag.iter_out(comp) if c in present]
            self._tol.insert_vertex(comp, ins, outs)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, components="
            f"{self._condensation.dag.num_vertices}, |L|={self.size()})"
        )
