"""Level-order strategies (Section 7.1 plus the existing instantiations).

A level order decides everything about a TOL index — size, build time and
query time (Section 4) — so this module is where the quality differences
between TF-Label, DL/PLL, HL and the paper's Butterfly variants come from:

* :func:`topological_order_strategy` — TF-Label's order: the topological
  rank ``o`` used directly as the level order (ties broken by vertex id).
* :func:`degree_order_strategy` — DL's (and, per [17], PLL's) order:
  descending total degree.
* :func:`hierarchical_order_strategy` — an HL-like stand-in: descending
  ``(in_degree + 1) * (out_degree + 1)``, a "hub-ness" product that favours
  vertices lying on many potential paths.  HL's exact hierarchy
  construction is under-specified in [17]; see DESIGN.md §5.
* :func:`exact_greedy_order` — the paper's "intuitive but impractical"
  algorithm: repeatedly pick the vertex maximizing the exact score
  ``f(v, G)`` and remove it.  O(|V| (|V|+|E|)); test/ablation use only.
* :func:`butterfly_upper_order` (**BU**) / :func:`butterfly_lower_order`
  (**BL**) — the paper's contribution: rank by the score function ``f``
  evaluated on the linear-time upper-bound scores ``S⊤`` or lower-bound
  scores ``S⊥``.
* :func:`random_order_strategy` — ablation baseline.

Every strategy runs on the graph's cached CSR snapshot
(:meth:`DiGraph.csr() <repro.graph.digraph.DiGraph.csr>`): the score
sweeps are integer loops over the flat offset/neighbor arrays, and the
snapshot is shared with the Butterfly build that typically follows (one
packing pass per preprocessing pipeline).

All strategies return a :class:`~repro.core.order.LevelOrder` whose first
element is the *highest*-level vertex, and are deterministic: ties are
broken by snapshot id — i.e. by graph insertion order — which is total,
stable across runs, and free (sorts on id-indexed score tables are stable,
so ascending id *is* the tie-break).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable

from ..errors import GraphError
from ..graph.digraph import DiGraph
from ..graph.traversal import backward_reachable, forward_reachable
from .order import LevelOrder

__all__ = [
    "score_function",
    "exact_scores",
    "upper_bound_scores",
    "lower_bound_scores",
    "topological_order_strategy",
    "reverse_topological_order_strategy",
    "degree_order_strategy",
    "hierarchical_order_strategy",
    "random_order_strategy",
    "butterfly_upper_order",
    "butterfly_lower_order",
    "exact_greedy_order",
    "resolve_order_strategy",
    "ORDER_STRATEGIES",
]

Vertex = Hashable
OrderStrategy = Callable[[DiGraph], LevelOrder]


def score_function(s_in: float, s_out: float) -> float:
    """The paper's score ``f`` of Section 7.1.

    ``f = (s_in * s_out + s_in + s_out) / (s_in + s_out)``, with the
    pathological ``s_in + s_out == 0`` case defined as 0.  A large ``f``
    means the vertex should be ranked above its ancestors and descendants
    to avoid the worst-case ``s_in * s_out`` label blow-up.
    """
    total = s_in + s_out
    if total == 0:
        return 0.0
    return (s_in * s_out + total) / total


def exact_scores(graph: DiGraph) -> dict[Vertex, tuple[int, int]]:
    """Exact ``(|Sin(v,G)|, |Sout(v,G)|)`` for every vertex, via BFS each.

    Quadratic, and deliberately computed over the object graph rather
    than the CSR snapshot: this is the oracle the snapshot-based sweeps
    are tested against.  Used by tests and ablations only.
    """
    return {
        v: (len(backward_reachable(graph, v)), len(forward_reachable(graph, v)))
        for v in graph.vertices()
    }


def _upper_scores_ids(snap) -> tuple[list[float], list[float]]:
    """Id-indexed ``(S⊤in, S⊤out)`` tables over a CSR snapshot."""
    topo = snap.topological_ids()
    n = snap.num_vertices
    in_offsets = snap.in_offsets
    in_targets = snap.in_targets
    s_in = [0.0] * n
    for v in topo:
        acc = 0.0
        for u in in_targets[in_offsets[v]:in_offsets[v + 1]]:
            acc += s_in[u] + 1.0
        s_in[v] = acc
    out_offsets = snap.out_offsets
    out_targets = snap.out_targets
    s_out = [0.0] * n
    for v in reversed(topo):
        acc = 0.0
        for w in out_targets[out_offsets[v]:out_offsets[v + 1]]:
            acc += s_out[w] + 1.0
        s_out[v] = acc
    return s_in, s_out


def upper_bound_scores(graph: DiGraph) -> dict[Vertex, tuple[float, float]]:
    """The linear-time upper-bound scores ``(S⊤in(v), S⊤out(v))``.

    ``S⊤in(v) = Σ_{u ∈ Nin(v)} (S⊤in(u) + 1)`` (0 for sources), computed in
    one topological sweep; ``S⊤out`` symmetrically in one reverse sweep.
    Each counts ancestors/descendants with multiplicity (once per path), so
    it upper-bounds the exact score.
    """
    snap = graph.csr()
    s_in, s_out = _upper_scores_ids(snap)
    table = snap.interner.table
    return {table[i]: (s_in[i], s_out[i]) for i in range(snap.num_vertices)}


def _lower_scores_ids(snap) -> tuple[list[float], list[float]]:
    """Id-indexed ``(S⊥in, S⊥out)`` tables over a CSR snapshot."""
    topo = snap.topological_ids()
    n = snap.num_vertices
    in_offsets = snap.in_offsets
    in_targets = snap.in_targets
    out_offsets = snap.out_offsets
    out_targets = snap.out_targets
    s_in = [0.0] * n
    for v in topo:
        acc = 0.0
        for u in in_targets[in_offsets[v]:in_offsets[v + 1]]:
            acc += (s_in[u] + 1.0) / (out_offsets[u + 1] - out_offsets[u])
        s_in[v] = acc
    s_out = [0.0] * n
    for v in reversed(topo):
        acc = 0.0
        for w in out_targets[out_offsets[v]:out_offsets[v + 1]]:
            acc += (s_out[w] + 1.0) / (in_offsets[w + 1] - in_offsets[w])
        s_out[v] = acc
    return s_in, s_out


def lower_bound_scores(graph: DiGraph) -> dict[Vertex, tuple[float, float]]:
    """The linear-time lower-bound scores ``(S⊥in(v), S⊥out(v))``.

    ``S⊥in(v) = Σ_{u ∈ Nin(v)} (S⊥in(u) + 1) / |Nout(u)|``: each ancestor's
    mass is split evenly among its out-neighbors, so every ancestor
    contributes at most 1 in total and the sum lower-bounds the exact
    in-score.  The out-side divides by ``|Nin(u)|`` — the paper's printed
    formula repeats ``|Nout(u)|``, which would not be a lower bound; we take
    that as a typo and use the symmetric form (see DESIGN.md §5).
    """
    snap = graph.csr()
    s_in, s_out = _lower_scores_ids(snap)
    table = snap.interner.table
    return {table[i]: (s_in[i], s_out[i]) for i in range(snap.num_vertices)}


def _order_by_neg_scores(snap, neg_scores: list[float]) -> LevelOrder:
    """Rank ids ascending by *neg_scores* (i.e. descending score).

    ``sorted`` is stable, so equal scores resolve to ascending id — the
    interned-id tie-break (graph insertion order).
    """
    ranked = sorted(range(snap.num_vertices), key=neg_scores.__getitem__)
    table = snap.interner.table
    return LevelOrder(table[i] for i in ranked)


def butterfly_upper_order(graph: DiGraph) -> LevelOrder:
    """BU: rank by ``f`` over the upper-bound scores ``S⊤`` (descending)."""
    snap = graph.csr()
    s_in, s_out = _upper_scores_ids(snap)
    f = score_function
    neg = [-f(s_in[i], s_out[i]) for i in range(snap.num_vertices)]
    return _order_by_neg_scores(snap, neg)


def butterfly_lower_order(graph: DiGraph) -> LevelOrder:
    """BL: rank by ``f`` over the lower-bound scores ``S⊥`` (descending)."""
    snap = graph.csr()
    s_in, s_out = _lower_scores_ids(snap)
    f = score_function
    neg = [-f(s_in[i], s_out[i]) for i in range(snap.num_vertices)]
    return _order_by_neg_scores(snap, neg)


def _residual_reach_count(
    offsets, targets, start: int, removed, visited, queue, stamp: int
) -> int:
    """Vertices reachable from *start* (exclusive) skipping removed ids."""
    visited[start] = stamp
    queue[0] = start
    head = 0
    tail = 1
    while head < tail:
        x = queue[head]
        head += 1
        for u in targets[offsets[x]:offsets[x + 1]]:
            if removed[u] or visited[u] == stamp:
                continue
            visited[u] = stamp
            queue[tail] = u
            tail += 1
    return tail - 1


def exact_greedy_order(graph: DiGraph) -> LevelOrder:
    """The exact greedy order: peel the max-``f`` vertex repeatedly.

    This is the algorithm the paper motivates and then replaces with the
    BU/BL approximations because recomputing scores after every removal is
    too expensive at scale.  Kept for ablation benchmarks and tests.
    Rather than destroying a graph copy, the rescoring BFS runs over the
    CSR snapshot with removed flags and visit stamps.  Ties pick the
    lowest snapshot id (the first maximum found scanning ascending ids).
    """
    snap = graph.csr()
    n = snap.num_vertices
    out_offsets = snap.out_offsets
    out_targets = snap.out_targets
    in_offsets = snap.in_offsets
    in_targets = snap.in_targets
    removed = bytearray(n)
    visited = [0] * n
    queue = [0] * n
    stamp = 0
    live = list(range(n))
    ranked: list[int] = []
    f = score_function
    while live:
        best = -1
        best_f = -1.0
        for i in live:
            stamp += 1
            s_in = _residual_reach_count(
                in_offsets, in_targets, i, removed, visited, queue, stamp
            )
            stamp += 1
            s_out = _residual_reach_count(
                out_offsets, out_targets, i, removed, visited, queue, stamp
            )
            fv = f(s_in, s_out)
            if fv > best_f:
                best_f = fv
                best = i
        ranked.append(best)
        removed[best] = 1
        live.remove(best)
    table = snap.interner.table
    return LevelOrder(table[i] for i in ranked)


def topological_order_strategy(graph: DiGraph) -> LevelOrder:
    """TF-Label's level order: the topological rank ``o`` itself."""
    snap = graph.csr()
    table = snap.interner.table
    return LevelOrder(table[i] for i in snap.topological_ids())


def reverse_topological_order_strategy(graph: DiGraph) -> LevelOrder:
    """Reverse topological order (sinks get the highest level)."""
    snap = graph.csr()
    table = snap.interner.table
    return LevelOrder(table[i] for i in reversed(snap.topological_ids()))


def degree_order_strategy(graph: DiGraph) -> LevelOrder:
    """DL/PLL's level order: descending total degree."""
    snap = graph.csr()
    oo = snap.out_offsets
    io = snap.in_offsets
    neg = [
        -(oo[i + 1] - oo[i] + io[i + 1] - io[i])
        for i in range(snap.num_vertices)
    ]
    return _order_by_neg_scores(snap, neg)


def hierarchical_order_strategy(graph: DiGraph) -> LevelOrder:
    """HL-like level order: descending ``(din + 1) * (dout + 1)``."""
    snap = graph.csr()
    oo = snap.out_offsets
    io = snap.in_offsets
    neg = [
        -(io[i + 1] - io[i] + 1) * (oo[i + 1] - oo[i] + 1)
        for i in range(snap.num_vertices)
    ]
    return _order_by_neg_scores(snap, neg)


def random_order_strategy(graph: DiGraph, *, seed: int = 0) -> LevelOrder:
    """Uniformly random level order (ablation baseline).

    Deterministic for a given seed: the shuffle starts from snapshot id
    order (graph insertion order).
    """
    snap = graph.csr()
    ranked = list(snap.vertices())
    random.Random(seed).shuffle(ranked)
    return LevelOrder(ranked)


#: Registry of named strategies, as accepted by the index facades.
ORDER_STRATEGIES: dict[str, OrderStrategy] = {
    "butterfly-u": butterfly_upper_order,
    "butterfly-l": butterfly_lower_order,
    "topological": topological_order_strategy,
    "reverse-topological": reverse_topological_order_strategy,
    "degree": degree_order_strategy,
    "hierarchical": hierarchical_order_strategy,
    "exact-greedy": exact_greedy_order,
    "random": random_order_strategy,
    # Aliases matching the paper's method names.
    "bu": butterfly_upper_order,
    "bl": butterfly_lower_order,
    "tf": topological_order_strategy,
    "dl": degree_order_strategy,
    "pll": degree_order_strategy,
    "hl": hierarchical_order_strategy,
}


def resolve_order_strategy(strategy: str | OrderStrategy) -> OrderStrategy:
    """Turn a strategy name or callable into a callable.

    Raises
    ------
    GraphError
        If *strategy* is an unknown name.
    """
    if callable(strategy):
        return strategy
    if not isinstance(strategy, str):
        raise TypeError(
            f"order strategy must be a name or a callable "
            f"graph -> LevelOrder, got {type(strategy).__name__}"
        )
    try:
        return ORDER_STRATEGIES[strategy.lower()]
    except KeyError:
        known = ", ".join(sorted(set(ORDER_STRATEGIES)))
        raise GraphError(
            f"unknown order strategy {strategy!r}; known: {known}"
        ) from None
