"""Level-order strategies (Section 7.1 plus the existing instantiations).

A level order decides everything about a TOL index — size, build time and
query time (Section 4) — so this module is where the quality differences
between TF-Label, DL/PLL, HL and the paper's Butterfly variants come from:

* :func:`topological_order_strategy` — TF-Label's order: the topological
  rank ``o`` used directly as the level order (ties broken by vertex id).
* :func:`degree_order_strategy` — DL's (and, per [17], PLL's) order:
  descending total degree.
* :func:`hierarchical_order_strategy` — an HL-like stand-in: descending
  ``(in_degree + 1) * (out_degree + 1)``, a "hub-ness" product that favours
  vertices lying on many potential paths.  HL's exact hierarchy
  construction is under-specified in [17]; see DESIGN.md §5.
* :func:`exact_greedy_order` — the paper's "intuitive but impractical"
  algorithm: repeatedly pick the vertex maximizing the exact score
  ``f(v, G)`` and remove it.  O(|V| (|V|+|E|)); test/ablation use only.
* :func:`butterfly_upper_order` (**BU**) / :func:`butterfly_lower_order`
  (**BL**) — the paper's contribution: rank by the score function ``f``
  evaluated on the linear-time upper-bound scores ``S⊤`` or lower-bound
  scores ``S⊥``.
* :func:`random_order_strategy` — ablation baseline.

All strategies return a :class:`~repro.core.order.LevelOrder` whose first
element is the *highest*-level vertex, and are deterministic (ties broken by
``repr`` of the vertex, which is total for ints and strings used here).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable

from ..errors import GraphError
from ..graph.dag import topological_order
from ..graph.digraph import DiGraph
from ..graph.traversal import backward_reachable, forward_reachable
from .order import LevelOrder

__all__ = [
    "score_function",
    "exact_scores",
    "upper_bound_scores",
    "lower_bound_scores",
    "topological_order_strategy",
    "reverse_topological_order_strategy",
    "degree_order_strategy",
    "hierarchical_order_strategy",
    "random_order_strategy",
    "butterfly_upper_order",
    "butterfly_lower_order",
    "exact_greedy_order",
    "resolve_order_strategy",
    "ORDER_STRATEGIES",
]

Vertex = Hashable
OrderStrategy = Callable[[DiGraph], LevelOrder]


def score_function(s_in: float, s_out: float) -> float:
    """The paper's score ``f`` of Section 7.1.

    ``f = (s_in * s_out + s_in + s_out) / (s_in + s_out)``, with the
    pathological ``s_in + s_out == 0`` case defined as 0.  A large ``f``
    means the vertex should be ranked above its ancestors and descendants
    to avoid the worst-case ``s_in * s_out`` label blow-up.
    """
    total = s_in + s_out
    if total == 0:
        return 0.0
    return (s_in * s_out + total) / total


def exact_scores(graph: DiGraph) -> dict[Vertex, tuple[int, int]]:
    """Exact ``(|Sin(v,G)|, |Sout(v,G)|)`` for every vertex, via BFS each.

    Quadratic; used by :func:`exact_greedy_order` and tests only.
    """
    return {
        v: (len(backward_reachable(graph, v)), len(forward_reachable(graph, v)))
        for v in graph.vertices()
    }


def upper_bound_scores(graph: DiGraph) -> dict[Vertex, tuple[float, float]]:
    """The linear-time upper-bound scores ``(S⊤in(v), S⊤out(v))``.

    ``S⊤in(v) = Σ_{u ∈ Nin(v)} (S⊤in(u) + 1)`` (0 for sources), computed in
    one topological sweep; ``S⊤out`` symmetrically in one reverse sweep.
    Each counts ancestors/descendants with multiplicity (once per path), so
    it upper-bounds the exact score.
    """
    order = topological_order(graph)
    s_in: dict[Vertex, float] = {}
    for v in order:
        s_in[v] = sum(s_in[u] + 1.0 for u in graph.iter_in(v))
    s_out: dict[Vertex, float] = {}
    for v in reversed(order):
        s_out[v] = sum(s_out[w] + 1.0 for w in graph.iter_out(v))
    return {v: (s_in[v], s_out[v]) for v in order}


def lower_bound_scores(graph: DiGraph) -> dict[Vertex, tuple[float, float]]:
    """The linear-time lower-bound scores ``(S⊥in(v), S⊥out(v))``.

    ``S⊥in(v) = Σ_{u ∈ Nin(v)} (S⊥in(u) + 1) / |Nout(u)|``: each ancestor's
    mass is split evenly among its out-neighbors, so every ancestor
    contributes at most 1 in total and the sum lower-bounds the exact
    in-score.  The out-side divides by ``|Nin(u)|`` — the paper's printed
    formula repeats ``|Nout(u)|``, which would not be a lower bound; we take
    that as a typo and use the symmetric form (see DESIGN.md §5).
    """
    order = topological_order(graph)
    s_in: dict[Vertex, float] = {}
    for v in order:
        s_in[v] = sum(
            (s_in[u] + 1.0) / graph.out_degree(u) for u in graph.iter_in(v)
        )
    s_out: dict[Vertex, float] = {}
    for v in reversed(order):
        s_out[v] = sum(
            (s_out[w] + 1.0) / graph.in_degree(w) for w in graph.iter_out(v)
        )
    return {v: (s_in[v], s_out[v]) for v in order}


def _tie_key(v: Vertex) -> tuple[str, str]:
    # Stable, total tie-break across mixed vertex types.
    return (type(v).__name__, repr(v))


def _order_by_score(
    graph: DiGraph, scores: dict[Vertex, tuple[float, float]]
) -> LevelOrder:
    ranked = sorted(
        graph.vertices(),
        key=lambda v: (-score_function(*scores[v]), _tie_key(v)),
    )
    return LevelOrder(ranked)


def butterfly_upper_order(graph: DiGraph) -> LevelOrder:
    """BU: rank by ``f`` over the upper-bound scores ``S⊤`` (descending)."""
    return _order_by_score(graph, upper_bound_scores(graph))


def butterfly_lower_order(graph: DiGraph) -> LevelOrder:
    """BL: rank by ``f`` over the lower-bound scores ``S⊥`` (descending)."""
    return _order_by_score(graph, lower_bound_scores(graph))


def exact_greedy_order(graph: DiGraph) -> LevelOrder:
    """The exact greedy order: peel the max-``f`` vertex repeatedly.

    This is the algorithm the paper motivates and then replaces with the
    BU/BL approximations because recomputing scores after every removal is
    too expensive at scale.  Kept for ablation benchmarks and tests.
    """
    residual = graph.copy()
    ranked: list[Vertex] = []
    while residual.num_vertices:
        scores = exact_scores(residual)
        best = min(
            residual.vertices(),
            key=lambda v: (-score_function(*scores[v]), _tie_key(v)),
        )
        ranked.append(best)
        residual.remove_vertex(best)
    return LevelOrder(ranked)


def topological_order_strategy(graph: DiGraph) -> LevelOrder:
    """TF-Label's level order: the topological rank ``o`` itself."""
    return LevelOrder(topological_order(graph))


def reverse_topological_order_strategy(graph: DiGraph) -> LevelOrder:
    """Reverse topological order (sinks get the highest level)."""
    return LevelOrder(reversed(topological_order(graph)))


def degree_order_strategy(graph: DiGraph) -> LevelOrder:
    """DL/PLL's level order: descending total degree."""
    ranked = sorted(
        graph.vertices(), key=lambda v: (-graph.degree(v), _tie_key(v))
    )
    return LevelOrder(ranked)


def hierarchical_order_strategy(graph: DiGraph) -> LevelOrder:
    """HL-like level order: descending ``(din + 1) * (dout + 1)``."""
    ranked = sorted(
        graph.vertices(),
        key=lambda v: (
            -(graph.in_degree(v) + 1) * (graph.out_degree(v) + 1),
            _tie_key(v),
        ),
    )
    return LevelOrder(ranked)


def random_order_strategy(graph: DiGraph, *, seed: int = 0) -> LevelOrder:
    """Uniformly random level order (ablation baseline)."""
    ranked = sorted(graph.vertices(), key=_tie_key)
    random.Random(seed).shuffle(ranked)
    return LevelOrder(ranked)


#: Registry of named strategies, as accepted by the index facades.
ORDER_STRATEGIES: dict[str, OrderStrategy] = {
    "butterfly-u": butterfly_upper_order,
    "butterfly-l": butterfly_lower_order,
    "topological": topological_order_strategy,
    "reverse-topological": reverse_topological_order_strategy,
    "degree": degree_order_strategy,
    "hierarchical": hierarchical_order_strategy,
    "exact-greedy": exact_greedy_order,
    "random": random_order_strategy,
    # Aliases matching the paper's method names.
    "bu": butterfly_upper_order,
    "bl": butterfly_lower_order,
    "tf": topological_order_strategy,
    "dl": degree_order_strategy,
    "pll": degree_order_strategy,
    "hl": hierarchical_order_strategy,
}


def resolve_order_strategy(strategy: str | OrderStrategy) -> OrderStrategy:
    """Turn a strategy name or callable into a callable.

    Raises
    ------
    GraphError
        If *strategy* is an unknown name.
    """
    if callable(strategy):
        return strategy
    if not isinstance(strategy, str):
        raise TypeError(
            f"order strategy must be a name or a callable "
            f"graph -> LevelOrder, got {type(strategy).__name__}"
        )
    try:
        return ORDER_STRATEGIES[strategy.lower()]
    except KeyError:
        known = ", ".join(sorted(set(ORDER_STRATEGIES)))
        raise GraphError(
            f"unknown order strategy {strategy!r}; known: {known}"
        ) from None
