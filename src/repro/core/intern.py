"""Vertex interning: stable ``Hashable -> int`` ids with free-list reuse.

The dynamic core stores labels as flat ``array('i')`` buffers of integer
ids (see :mod:`repro.core.labeling`), but the public API speaks arbitrary
hashable vertex objects.  :class:`VertexInterner` is the boundary between
the two worlds:

* :meth:`intern` assigns the next free id to a new vertex — ids are dense
  (``0..capacity-1``) so parallel ``list``-indexed side tables stay small;
* :meth:`release` returns an id to a free list when its vertex is deleted,
  and the next :meth:`intern` reuses it (LIFO), so long update streams of
  balanced insert/delete churn never grow the id space;
* an id is **stable** for the lifetime of its vertex: nothing ever
  renumbers a live vertex, which is what lets label buffers, inverted
  lists and snapshots hold raw ids without invalidation protocols.

The interner deliberately knows nothing about orders or labels; it is a
bijection ``live vertex <-> id`` plus an id allocator.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from typing import Optional

from ..errors import UnknownVertexError

__all__ = ["VertexInterner"]

Vertex = Hashable

#: Sentinel marking a hole in the id table (``None`` is a valid vertex).
_EMPTY = object()


class VertexInterner:
    """A bijection between live vertex objects and dense integer ids.

    Examples
    --------
    >>> interner = VertexInterner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (0, 1, 0)
    >>> interner.release("a")
    0
    >>> interner.intern("c")          # reuses the freed id
    0
    >>> interner.vertex_of(1)
    'b'
    """

    __slots__ = ("_ids", "_table", "_free")

    def __init__(self) -> None:
        self._ids: dict[Vertex, int] = {}
        self._table: list = []
        self._free: list[int] = []

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def intern(self, v: Vertex) -> int:
        """Return the id of *v*, assigning a fresh (or recycled) one."""
        i = self._ids.get(v)
        if i is not None:
            return i
        if self._free:
            i = self._free.pop()
            self._table[i] = v
        else:
            i = len(self._table)
            self._table.append(v)
        self._ids[v] = i
        return i

    def intern_dense(self, vertices) -> int:
        """Bulk-intern an iterable of distinct, new vertices.

        Assigns consecutive fresh ids (``len(self)..``) in one C-speed
        pass — the fast path for interning a whole graph or level order
        at once (snapshot packing, fresh labelings).  Only valid while
        the free list is empty; duplicate or already-interned vertices
        are rejected before anything is modified.  Returns the number of
        vertices interned.
        """
        if self._free:
            raise ValueError("intern_dense requires an empty free list")
        vs = list(vertices)
        if len(set(vs)) != len(vs) or not self._ids.keys().isdisjoint(vs):
            raise ValueError(
                "intern_dense: duplicate or already-interned vertex"
            )
        table = self._table
        start = len(table)
        table.extend(vs)
        self._ids.update(zip(vs, range(start, start + len(vs))))
        return len(vs)

    @classmethod
    def restore(cls, assignments, free_ids=()) -> "VertexInterner":
        """Rebuild an interner with an exact ``vertex -> id`` assignment.

        *assignments* maps each live vertex to its id; *free_ids* lists the
        holes in LIFO order (the last entry is reused first), so a restored
        interner allocates future ids exactly as the original would.  The
        persistence layer (:mod:`repro.core.serialize`) uses this so a
        save/load round trip preserves id assignment.

        Raises
        ------
        ValueError
            If ids collide, overlap the free list, or leave gaps (every id
            in ``0..capacity-1`` must be either live or free).
        """
        self = cls()
        ids = dict(assignments)
        free = list(free_ids)
        capacity = len(ids) + len(free)
        taken = set(ids.values())
        if len(taken) != len(ids):
            raise ValueError("restore: duplicate ids in assignment")
        if not taken.isdisjoint(free) or len(set(free)) != len(free):
            raise ValueError("restore: free list overlaps live ids")
        if (taken | set(free)) != set(range(capacity)):
            raise ValueError("restore: id space has gaps")
        self._table = [_EMPTY] * capacity
        for v, i in ids.items():
            self._table[i] = v
        self._ids = ids
        self._free = free
        return self

    def release(self, v: Vertex) -> int:
        """Forget *v*, returning its id to the free list (and the caller)."""
        try:
            i = self._ids.pop(v)
        except KeyError:
            raise UnknownVertexError(v) from None
        self._table[i] = _EMPTY
        self._free.append(i)
        return i

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def id_of(self, v: Vertex) -> int:
        """Return the id of *v*; raise :class:`UnknownVertexError` if absent."""
        try:
            return self._ids[v]
        except KeyError:
            raise UnknownVertexError(v) from None

    def get(self, v: Vertex) -> Optional[int]:
        """Return the id of *v*, or ``None`` if it is not interned."""
        return self._ids.get(v)

    def vertex_of(self, i: int) -> Vertex:
        """Return the vertex owning id *i*; raise if the id is free."""
        try:
            v = self._table[i]
        except IndexError:
            raise UnknownVertexError(i) from None
        if v is _EMPTY:
            raise UnknownVertexError(i)
        return v

    def is_live(self, i: int) -> bool:
        """``True`` iff id *i* is currently assigned to a live vertex.

        The scratch-backed update kernels size their mark arrays to
        :attr:`capacity`, holes included; this predicate lets callers
        (tests, invariant checks) distinguish live slots from free-listed
        holes without touching the private table.
        """
        return 0 <= i < len(self._table) and self._table[i] is not _EMPTY

    # ------------------------------------------------------------------
    # Raw views (hot paths index these directly; treat as read-only)
    # ------------------------------------------------------------------

    @property
    def ids(self) -> dict[Vertex, int]:
        """The live ``vertex -> id`` dict (do not mutate)."""
        return self._ids

    @property
    def table(self) -> list:
        """The live ``id -> vertex`` list, holes included (do not mutate)."""
        return self._table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._ids

    def __iter__(self) -> Iterator[Vertex]:
        """Iterate live vertices in interning order."""
        return iter(self._ids)

    def items(self) -> Iterator[tuple[Vertex, int]]:
        """Iterate ``(vertex, id)`` pairs for live vertices."""
        return iter(self._ids.items())

    @property
    def capacity(self) -> int:
        """Size of the id space (live ids + free-listed holes)."""
        return len(self._table)

    @property
    def free_count(self) -> int:
        """Number of ids currently on the free list."""
        return len(self._free)

    @property
    def free_ids(self) -> tuple[int, ...]:
        """The free list in LIFO order (last entry is reused first)."""
        return tuple(self._free)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(live={len(self._ids)}, "
            f"capacity={self.capacity})"
        )

    def check_invariants(self) -> None:
        """Validate the bijection and free-list bookkeeping (for tests)."""
        assert len(self._ids) + len(self._free) == len(self._table)
        for v, i in self._ids.items():
            assert self._table[i] == v or self._table[i] is v, (v, i)
        free = set(self._free)
        assert len(free) == len(self._free), "duplicate ids on the free list"
        for i, slot in enumerate(self._table):
            if slot is _EMPTY:
                assert i in free, f"hole {i} missing from the free list"
            else:
                assert i not in free, f"live id {i} on the free list"
