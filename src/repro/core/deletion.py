"""Vertex deletion for TOL indices (Section 5.2, Algorithm 4).

Deleting vertex ``v`` can only invalidate labels that depended on paths
through ``v``: the in-labels of vertices ``v`` could reach (``B+(v)``) and
the out-labels of vertices that could reach ``v`` (``B-(v)``).  Algorithm 4
therefore:

1. strips ``v`` itself from every label set (via the inverted lists),
2. rebuilds ``Lin(u)`` for every ``u ∈ B+(v)`` in ascending topological
   order — each rebuild merges the (already-rebuilt) in-labels of ``u``'s
   surviving in-neighbors into a candidate set and re-filters it by the
   Level and Path constraints, pruning labels elsewhere that each accepted
   label makes redundant,
3. does the mirror-image rebuild of ``Lout(u)`` for ``u ∈ B-(v)`` in
   descending topological order.

The topological orders needed in steps 2–3 are computed locally on the
affected sets (a Kahn pass over each induced subgraph), so small deletions
stay cheap.

The rebuilds run on interned ids: candidate sets, cover checks and pruning
all operate on the sorted ``array('i')`` label buffers and ``set[int]``
inverted lists, and the released id of ``v`` goes back to the interner's
free list for reuse by the next insertion.

Stale-witness correction
------------------------
Algorithm 4 as printed has a subtle soundness gap: while rebuilding
``Lin(u)`` in step 2, the Path-Constraint check consults ``Lout(w)`` of
candidate labels ``w``, but for ``w ∈ B-(v)`` that set is rebuilt only in
step 3 and may still contain a *stale* witness ``x`` — one whose every
``w ⇝ x`` path ran through the deleted ``v``.  Trusting it makes the check
reject ``w`` even though nothing covers the pair anymore, leaving a
reachable pair without a witness.  We therefore re-verify a claimed witness
``x`` with a graph search whenever (and only when) ``w ∈ B-(v)`` and
``x ∈ B+(v)`` — the only combination that can be stale.  Step 3 needs no
such guard: it runs after step 2, so every ``Lin`` set it consults is
already rebuilt.  The guard is exercised directly by a regression test
(``tests/core/test_deletion.py``) that constructs the pathological graph.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from ..errors import IndexStateError
from ..graph.digraph import DiGraph
from ..obs import trace
from ..graph.traversal import (
    backward_reachable,
    bidirectional_reachable,
    forward_reachable,
)
from .labeling import TOLLabeling

__all__ = ["delete_vertex"]

Vertex = Hashable


def delete_vertex(graph: DiGraph, labeling: TOLLabeling, v: Vertex) -> None:
    """Delete *v* from the index (Algorithm 4).

    Parameters
    ----------
    graph:
        The DAG *still containing* ``v``; this function removes ``v`` from
        it as its final step, keeping graph and labeling in lockstep.
    labeling:
        The live TOL index; updated in place (order included).

    Raises
    ------
    IndexStateError
        If *v* is not indexed.
    """
    if v not in labeling:
        raise IndexStateError(f"vertex {v!r} is not indexed")

    with trace.span("tol.delete") as sp:
        if sp:
            sp.set("vertex", str(v))
            size_before = labeling.size()

        # The affected sets must be taken while v is still present: they
        # are exactly the vertices whose labels may have depended on
        # paths via v.
        affected_fwd = forward_reachable(graph, v)  # B+(v)
        affected_bwd = backward_reachable(graph, v)  # B-(v)

        graph.remove_vertex(v)
        labeling.drop_vertex(v)  # lines 1–4: purge v from all label sets
        labeling.order.remove(v)

        # Survivors keep their ids; translate the affected sets once.
        ids = labeling.interner.ids
        suspect_holder_ids = {ids[u] for u in affected_bwd}
        suspect_witness_ids = {ids[u] for u in affected_fwd}

        for u in _local_topological(graph, affected_fwd, forward=True):
            _rebuild_labels(
                graph, labeling, u, incoming=True,
                suspect_holders=suspect_holder_ids,
                suspect_witnesses=suspect_witness_ids,
            )
        for u in _local_topological(graph, affected_bwd, forward=False):
            _rebuild_labels(
                graph, labeling, u, incoming=False,
                suspect_holders=None, suspect_witnesses=None,
            )

        if sp:
            # Repair-BFS frontier sizes: the survivor sets whose label
            # sets the rebuild loops re-derived.
            sp.set("frontier_fwd", len(affected_fwd))
            sp.set("frontier_bwd", len(affected_bwd))
            sp.set("labels_removed", size_before - labeling.size())


def _local_topological(
    graph: DiGraph, members: set[Vertex], *, forward: bool
) -> list[Vertex]:
    """Topologically sort *members* within their induced subgraph.

    ``forward=True`` yields ascending topological order (in-neighbors
    first); ``forward=False`` yields descending (out-neighbors first) —
    i.e. in both cases a vertex appears after the neighbors whose rebuilt
    labels its own rebuild consumes.
    """
    if not members:
        return []
    upstream = graph.iter_in if forward else graph.iter_out
    downstream = graph.iter_out if forward else graph.iter_in
    pending = {
        u: sum(1 for z in upstream(u) if z in members) for u in members
    }
    queue: deque[Vertex] = deque(u for u, d in pending.items() if d == 0)
    ordered: list[Vertex] = []
    while queue:
        u = queue.popleft()
        ordered.append(u)
        for w in downstream(u):
            if w in pending:
                pending[w] -= 1
                if pending[w] == 0:
                    queue.append(w)
    if len(ordered) != len(members):
        raise IndexStateError("affected region is not acyclic")
    return ordered


def _rebuild_labels(
    graph: DiGraph,
    labeling: TOLLabeling,
    u: Vertex,
    *,
    incoming: bool,
    suspect_holders: set[int] | None,
    suspect_witnesses: set[int] | None,
) -> None:
    """Rebuild ``Lin(u)`` (incoming) or ``Lout(u)`` from neighbor labels.

    Algorithm 4, lines 7–17 (and their mirrored repetition): the candidate
    set is the union of each surviving neighbor ``z``'s rebuilt label set
    plus ``z`` itself (Section 5.2 proves this is a superset of the true
    label set); candidates are re-admitted from the highest level down
    under the Level and Path constraints.  Each admitted label ``w`` then
    invalidates ``u`` as a label of any vertex that holds ``w`` on the
    other side (the path now runs through the higher-level ``w``).

    *suspect_holders* / *suspect_witnesses* implement the stale-witness
    correction (module docstring): a coverage claim ``x ∈ cover(w)`` with
    ``w ∈ suspect_holders`` and ``x ∈ suspect_witnesses`` is confirmed with
    a bidirectional search before being trusted.
    """
    ids = labeling.interner.ids
    uid = ids[u]
    ukey = labeling.order.key(u)
    if incoming:
        neighbors = graph.iter_in(u)
        their_labels = labeling.in_ids
        cover_labels = labeling.out_ids
        inv_other = labeling.out_holders
        add = labeling.add_in_id
        clear = labeling.clear_in_ids
        remove_mirror = labeling.remove_out_id
    else:
        neighbors = graph.iter_out(u)
        their_labels = labeling.out_ids
        cover_labels = labeling.in_ids
        inv_other = labeling.in_holders
        add = labeling.add_out_id
        clear = labeling.clear_out_ids
        remove_mirror = labeling.remove_in_id

    candidates: set[int] = set()
    for z in neighbors:
        zid = ids[z]
        candidates.add(zid)
        candidates.update(their_labels[zid])
    clear(uid)
    own = their_labels[uid]  # live: grows as candidates are admitted
    for w in sorted(candidates, key=labeling.level_key):
        if not labeling.level_key(w) < ukey:
            continue  # Level Constraint
        if _covered(
            graph, labeling, cover_labels[w], own, w,
            incoming=incoming,
            suspect=suspect_holders is not None and w in suspect_holders,
            suspect_witnesses=suspect_witnesses,
        ):
            continue  # Path Constraint: covered by a higher label
        add(uid, w)
        # Prune: any s holding w on the opposite side connects to u
        # through w, so u may no longer label s.  The affected s are
        # exactly inv_other[w] ∩ inv_other[u]; iterate the smaller side.
        holders_w = inv_other[w]
        holders_u = inv_other[uid]
        if holders_u and holders_w:
            if len(holders_u) <= len(holders_w):
                doomed = [s for s in holders_u if s in holders_w]
            else:
                doomed = [s for s in holders_w if s in holders_u]
            for s in doomed:
                remove_mirror(s, uid)


def _covered(
    graph: DiGraph,
    labeling: TOLLabeling,
    cover,
    own,
    w: int,
    *,
    incoming: bool,
    suspect: bool,
    suspect_witnesses: set[int] | None,
) -> bool:
    """Does some already-admitted label witness coverage of candidate *w*?"""
    small, large = (cover, own) if len(cover) <= len(own) else (own, cover)
    if not suspect:
        for x in small:  # both sides are small sorted arrays; C scans
            if x in large:
                return True
        return False
    table = labeling.interner.table
    for x in small:
        if x not in large:
            continue
        if suspect_witnesses is not None and x in suspect_witnesses:
            # w's label set may predate the deletion; confirm the w -> x
            # (resp. x -> w) leg still exists before trusting the witness.
            src, dst = (w, x) if incoming else (x, w)
            if not bidirectional_reachable(graph, table[src], table[dst]):
                continue
        return True
    return False
