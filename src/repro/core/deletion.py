"""Vertex deletion for TOL indices (Section 5.2, Algorithm 4).

Deleting vertex ``v`` can only invalidate labels that depended on paths
through ``v``: the in-labels of vertices ``v`` could reach (``B+(v)``) and
the out-labels of vertices that could reach ``v`` (``B-(v)``).  Algorithm 4
therefore:

1. strips ``v`` itself from every label set (via the inverted lists),
2. rebuilds ``Lin(u)`` for every ``u ∈ B+(v)`` in ascending topological
   order — each rebuild merges the (already-rebuilt) in-labels of ``u``'s
   surviving in-neighbors into a candidate set and re-filters it by the
   Level and Path constraints, pruning labels elsewhere that each accepted
   label makes redundant,
3. does the mirror-image rebuild of ``Lout(u)`` for ``u ∈ B-(v)`` in
   descending topological order.

The topological orders needed in steps 2–3 are computed locally on the
affected sets (a Kahn pass over each induced subgraph), so small deletions
stay cheap.

The rebuilds run on interned ids: candidate sets, cover checks and pruning
all operate on the sorted ``array('i')`` label buffers and ``set[int]``
inverted lists, and the released id of ``v`` goes back to the interner's
free list for reuse by the next insertion.

Stale-witness correction
------------------------
Algorithm 4 as printed has a subtle soundness gap: while rebuilding
``Lin(u)`` in step 2, the Path-Constraint check consults ``Lout(w)`` of
candidate labels ``w``, but for ``w ∈ B-(v)`` that set is rebuilt only in
step 3 and may still contain a *stale* witness ``x`` — one whose every
``w ⇝ x`` path ran through the deleted ``v``.  Trusting it makes the check
reject ``w`` even though nothing covers the pair anymore, leaving a
reachable pair without a witness.  We therefore re-verify a claimed witness
``x`` with a graph search whenever (and only when) ``w ∈ B-(v)`` and
``x ∈ B+(v)`` — the only combination that can be stale.  Step 3 needs no
such guard: it runs after step 2, so every ``Lin`` set it consults is
already rebuilt.  The guard is exercised directly by a regression test
(``tests/core/test_deletion.py``) that constructs the pathological graph.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from typing import TYPE_CHECKING, Optional

from ..errors import IndexStateError
from ..graph.digraph import DiGraph
from ..obs import trace
from ..graph.traversal import (
    backward_reachable,
    bidirectional_reachable,
    forward_reachable,
)
from .labeling import TOLLabeling

if TYPE_CHECKING:
    from ..graph.csr import CSRGraph

__all__ = ["delete_vertex"]

Vertex = Hashable


def delete_vertex(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    *,
    engine: str = "csr",
    snapshot: Optional[CSRGraph] = None,
) -> None:
    """Delete *v* from the index (Algorithm 4).

    Parameters
    ----------
    graph:
        The DAG *still containing* ``v``; this function removes ``v`` from
        it as its final step, keeping graph and labeling in lockstep.
    labeling:
        The live TOL index; updated in place (order included).
    engine:
        ``"csr"`` (default) runs the flat scratch-backed kernels — the
        repair-frontier BFS, the local toposort and the rebuild loops all
        use the labeling's :class:`~repro.core.scratch.UpdateScratch`
        instead of per-op sets/deques.  ``"object"`` is the legacy
        allocating path, kept for differential testing.
    snapshot:
        Optional :class:`~repro.graph.csr.CSRGraph` describing *graph*'s
        exact current state (``v`` included); with ``engine="csr"`` the
        two frontier BFS passes then walk the snapshot's flat int arrays
        instead of the dict adjacency.  Edge ops pack one snapshot before
        the delete half of their round trip and reuse it for the
        re-insert half (see :mod:`repro.core.insertion`).  Ignored by the
        object engine.

    Raises
    ------
    IndexStateError
        If *v* is not indexed or *engine* is unknown.
    """
    if v not in labeling:
        raise IndexStateError(f"vertex {v!r} is not indexed")
    if engine == "csr":
        _delete_vertex_flat(graph, labeling, v, snapshot)
        return
    if engine != "object":
        raise IndexStateError(f"unknown update engine {engine!r}")

    with trace.span("tol.delete") as sp:
        if sp:
            sp.set("vertex", str(v))
            size_before = labeling.size()

        # The affected sets must be taken while v is still present: they
        # are exactly the vertices whose labels may have depended on
        # paths via v.
        affected_fwd = forward_reachable(graph, v)  # B+(v)
        affected_bwd = backward_reachable(graph, v)  # B-(v)

        graph.remove_vertex(v)
        labeling.drop_vertex(v)  # lines 1–4: purge v from all label sets
        labeling.order.remove(v)

        # Survivors keep their ids; translate the affected sets once.
        ids = labeling.interner.ids
        suspect_holder_ids = {ids[u] for u in affected_bwd}
        suspect_witness_ids = {ids[u] for u in affected_fwd}

        for u in _local_topological(graph, affected_fwd, forward=True):
            _rebuild_labels(
                graph, labeling, u, incoming=True,
                suspect_holders=suspect_holder_ids,
                suspect_witnesses=suspect_witness_ids,
            )
        for u in _local_topological(graph, affected_bwd, forward=False):
            _rebuild_labels(
                graph, labeling, u, incoming=False,
                suspect_holders=None, suspect_witnesses=None,
            )

        if sp:
            # Repair-BFS frontier sizes: the survivor sets whose label
            # sets the rebuild loops re-derived.
            sp.set("frontier_fwd", len(affected_fwd))
            sp.set("frontier_bwd", len(affected_bwd))
            sp.set("labels_removed", size_before - labeling.size())


def _local_topological(
    graph: DiGraph, members: set[Vertex], *, forward: bool
) -> list[Vertex]:
    """Topologically sort *members* within their induced subgraph.

    ``forward=True`` yields ascending topological order (in-neighbors
    first); ``forward=False`` yields descending (out-neighbors first) —
    i.e. in both cases a vertex appears after the neighbors whose rebuilt
    labels its own rebuild consumes.
    """
    if not members:
        return []
    upstream = graph.iter_in if forward else graph.iter_out
    downstream = graph.iter_out if forward else graph.iter_in
    pending = {
        u: sum(1 for z in upstream(u) if z in members) for u in members
    }
    queue: deque[Vertex] = deque(u for u, d in pending.items() if d == 0)
    ordered: list[Vertex] = []
    while queue:
        u = queue.popleft()
        ordered.append(u)
        for w in downstream(u):
            if w in pending:
                pending[w] -= 1
                if pending[w] == 0:
                    queue.append(w)
    if len(ordered) != len(members):
        raise IndexStateError("affected region is not acyclic")
    return ordered


def _rebuild_labels(
    graph: DiGraph,
    labeling: TOLLabeling,
    u: Vertex,
    *,
    incoming: bool,
    suspect_holders: set[int] | None,
    suspect_witnesses: set[int] | None,
) -> None:
    """Rebuild ``Lin(u)`` (incoming) or ``Lout(u)`` from neighbor labels.

    Algorithm 4, lines 7–17 (and their mirrored repetition): the candidate
    set is the union of each surviving neighbor ``z``'s rebuilt label set
    plus ``z`` itself (Section 5.2 proves this is a superset of the true
    label set); candidates are re-admitted from the highest level down
    under the Level and Path constraints.  Each admitted label ``w`` then
    invalidates ``u`` as a label of any vertex that holds ``w`` on the
    other side (the path now runs through the higher-level ``w``).

    *suspect_holders* / *suspect_witnesses* implement the stale-witness
    correction (module docstring): a coverage claim ``x ∈ cover(w)`` with
    ``w ∈ suspect_holders`` and ``x ∈ suspect_witnesses`` is confirmed with
    a bidirectional search before being trusted.
    """
    ids = labeling.interner.ids
    uid = ids[u]
    ukey = labeling.order.key(u)
    if incoming:
        neighbors = graph.iter_in(u)
        their_labels = labeling.in_ids
        cover_labels = labeling.out_ids
        inv_other = labeling.out_holders
        add = labeling.add_in_id
        clear = labeling.clear_in_ids
        remove_mirror = labeling.remove_out_id
    else:
        neighbors = graph.iter_out(u)
        their_labels = labeling.out_ids
        cover_labels = labeling.in_ids
        inv_other = labeling.in_holders
        add = labeling.add_out_id
        clear = labeling.clear_out_ids
        remove_mirror = labeling.remove_in_id

    candidates: set[int] = set()
    for z in neighbors:
        zid = ids[z]
        candidates.add(zid)
        candidates.update(their_labels[zid])
    clear(uid)
    own = their_labels[uid]  # live: grows as candidates are admitted
    for w in sorted(candidates, key=labeling.level_key):
        if not labeling.level_key(w) < ukey:
            continue  # Level Constraint
        if _covered(
            graph, labeling, cover_labels[w], own, w,
            incoming=incoming,
            suspect=suspect_holders is not None and w in suspect_holders,
            suspect_witnesses=suspect_witnesses,
        ):
            continue  # Path Constraint: covered by a higher label
        add(uid, w)
        # Prune: any s holding w on the opposite side connects to u
        # through w, so u may no longer label s.  The affected s are
        # exactly inv_other[w] ∩ inv_other[u]; iterate the smaller side.
        holders_w = inv_other[w]
        holders_u = inv_other[uid]
        if holders_u and holders_w:
            if len(holders_u) <= len(holders_w):
                doomed = [s for s in holders_u if s in holders_w]
            else:
                doomed = [s for s in holders_w if s in holders_u]
            for s in doomed:
                remove_mirror(s, uid)


def _covered(
    graph: DiGraph,
    labeling: TOLLabeling,
    cover,
    own,
    w: int,
    *,
    incoming: bool,
    suspect: bool,
    suspect_witnesses: set[int] | None,
) -> bool:
    """Does some already-admitted label witness coverage of candidate *w*?"""
    small, large = (cover, own) if len(cover) <= len(own) else (own, cover)
    if not suspect:
        for x in small:  # both sides are small sorted arrays; C scans
            if x in large:
                return True
        return False
    table = labeling.interner.table
    for x in small:
        if x not in large:
            continue
        if suspect_witnesses is not None and x in suspect_witnesses:
            # w's label set may predate the deletion; confirm the w -> x
            # (resp. x -> w) leg still exists before trusting the witness.
            src, dst = (w, x) if incoming else (x, w)
            if not bidirectional_reachable(graph, table[src], table[dst]):
                continue
        return True
    return False


# ----------------------------------------------------------------------
# Flat kernels (engine="csr"): Algorithm 4 on reusable scratch
# ----------------------------------------------------------------------
#
# Same algorithm as above, pinned by the differential tests; the frontier
# sets, the Kahn toposort and the per-vertex rebuilds run on the
# labeling's UpdateScratch (generation-stamped marks + cursor buffers)
# instead of allocating sets/deques/lists per op.

def _delete_vertex_flat(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    snapshot: Optional[CSRGraph],
) -> None:
    with trace.span("tol.delete") as sp:
        if sp:
            sp.set("vertex", str(v))
            sp.set("engine", "csr")
            size_before = labeling.size()

        interner = labeling.interner
        ids = interner.ids
        scratch = labeling.update_scratch()
        cap = interner.capacity
        if snapshot is not None and snapshot.num_vertices > cap:
            cap = snapshot.num_vertices
        scratch.begin(cap)
        mem_fwd = scratch.mem_a
        mem_bwd = scratch.mem_b
        mark_fwd = scratch.mark_a
        mark_bwd = scratch.mark_b

        # The affected sets must be taken while v is still present.  The
        # member marks (by labeling id) survive drop_vertex: survivors
        # keep their ids, and v's own id — though recycled onto the free
        # list — never appears in a surviving label set.
        if snapshot is None:
            g_fwd = scratch.next_gen()
            n_fwd = _frontier_flat(
                graph.iter_out, ids, v, mark_fwd, g_fwd, mem_fwd,
                scratch.queue,
            )
            g_bwd = scratch.next_gen()
            n_bwd = _frontier_flat(
                graph.iter_in, ids, v, mark_bwd, g_bwd, mem_bwd,
                scratch.queue,
            )
        else:
            n_fwd = _frontier_flat_csr(snapshot, v, True, scratch, mem_fwd)
            n_bwd = _frontier_flat_csr(snapshot, v, False, scratch, mem_bwd)
            g_fwd = scratch.next_gen()
            for i in range(n_fwd):
                mark_fwd[ids[mem_fwd[i]]] = g_fwd
            g_bwd = scratch.next_gen()
            for i in range(n_bwd):
                mark_bwd[ids[mem_bwd[i]]] = g_bwd

        graph.remove_vertex(v)
        labeling.drop_vertex(v)  # lines 1–4: purge v from all label sets
        labeling.order.remove(v)

        # Level-order tags are stable for the whole delete (only order
        # *insertions* can relabel; ``remove`` never does), so one key
        # generation makes scratch.keys an exact cache across every
        # rebuild below.
        g_key = scratch.next_gen()

        topo = scratch.topo
        m = _topo_flat(graph, ids, mem_fwd, n_fwd, mark_fwd, g_fwd, True,
                       scratch)
        for i in range(m):
            _rebuild_labels_flat(
                graph, labeling, topo[i], True, g_bwd, g_fwd, g_key, scratch
            )
        m = _topo_flat(graph, ids, mem_bwd, n_bwd, mark_bwd, g_bwd, False,
                       scratch)
        for i in range(m):
            _rebuild_labels_flat(
                graph, labeling, topo[i], False, 0, 0, g_key, scratch
            )

        if sp:
            sp.set("frontier_fwd", n_fwd)
            sp.set("frontier_bwd", n_bwd)
            sp.set("labels_removed", size_before - labeling.size())


def _frontier_flat(
    neighbors, ids: dict, v: Vertex, mark: list, gen: int, members: list,
    queue: list,
) -> int:
    """BFS from *v* over the dict adjacency; stamp and collect survivors.

    Marks every reached vertex's labeling id with *gen* in *mark* (v's
    own id included, as the visited guard) and writes the reached
    vertices — excluding v — into *members*.  Returns the member count.
    """
    mark[ids[v]] = gen
    queue[0] = v
    head, tail = 0, 1
    n = 0
    while head < tail:
        x = queue[head]
        head += 1
        for u in neighbors(x):
            uid = ids[u]
            if mark[uid] == gen:
                continue
            mark[uid] = gen
            members[n] = u
            n += 1
            queue[tail] = u
            tail += 1
    return n


def _frontier_flat_csr(
    snap: CSRGraph, v: Vertex, forward: bool, scratch, members: list
) -> int:
    """:func:`_frontier_flat` over a CSR snapshot's int rows.

    The snapshot must describe the graph exactly (it is taken immediately
    before the delete); visited stamps are keyed by *snapshot* id, and
    members are collected as vertex objects for the later id translation.
    """
    offsets = snap.out_offsets if forward else snap.in_offsets
    targets = snap.out_targets if forward else snap.in_targets
    table = snap.interner.table
    gen = scratch.next_gen()
    seen = scratch.seen
    queue = scratch.queue
    start = snap.id_of(v)
    seen[start] = gen
    queue[0] = start
    head, tail = 0, 1
    n = 0
    while head < tail:
        x = queue[head]
        head += 1
        for s in targets[offsets[x]:offsets[x + 1]]:
            if seen[s] == gen:
                continue
            seen[s] = gen
            members[n] = table[s]
            n += 1
            queue[tail] = s
            tail += 1
    return n


def _topo_flat(
    graph: DiGraph,
    ids: dict,
    members: list,
    n: int,
    mark: list,
    gen: int,
    forward: bool,
    scratch,
) -> int:
    """:func:`_local_topological` with stamped membership and flat counts.

    Writes the order into ``scratch.topo`` and returns its length.
    Membership in the induced subgraph is ``mark[id] == gen``; pending
    in-degrees live in ``scratch.counts``, indexed by labeling id.
    """
    if n == 0:
        return 0
    upstream = graph.iter_in if forward else graph.iter_out
    downstream = graph.iter_out if forward else graph.iter_in
    counts = scratch.counts
    queue = scratch.queue
    topo = scratch.topo
    tail = 0
    for i in range(n):
        u = members[i]
        c = 0
        for z in upstream(u):
            if mark[ids[z]] == gen:
                c += 1
        counts[ids[u]] = c
        if c == 0:
            queue[tail] = u
            tail += 1
    head = 0
    m = 0
    while head < tail:
        u = queue[head]
        head += 1
        topo[m] = u
        m += 1
        for w in downstream(u):
            wid = ids[w]
            if mark[wid] == gen:
                c = counts[wid] - 1
                counts[wid] = c
                if c == 0:
                    queue[tail] = w
                    tail += 1
    if m != n:
        raise IndexStateError("affected region is not acyclic")
    return m


def _rebuild_labels_flat(
    graph: DiGraph,
    labeling: TOLLabeling,
    u: Vertex,
    incoming: bool,
    g_holders: int,
    g_witnesses: int,
    g_key: int,
    scratch,
) -> None:
    """:func:`_rebuild_labels` on scratch buffers.

    *g_holders* / *g_witnesses* are the generation stamps marking
    ``B-(v)`` (in ``scratch.mark_b``) and ``B+(v)`` (``scratch.mark_a``)
    for the stale-witness guard; ``0`` disables the guard (the second,
    outgoing pass — every ``Lin`` it consults is already rebuilt).

    The hot loops diverge from the object path in three flat-only ways:
    level tags come from the per-delete key cache (*g_key*), candidates
    are sorted as pre-decorated ``(tag, id)`` pairs (no per-element key
    callback), and the rebuilt label set is tracked as generation marks
    during admission and bulk-filled once at the end (no per-label
    ``bisect.insort``).
    """
    interner = labeling.interner
    ids = interner.ids
    table = interner.table
    uid = ids[u]
    okey = labeling.order.key
    keys = scratch.keys
    key_mark = scratch.key_mark
    if key_mark[uid] == g_key:
        ukey = keys[uid]
    else:
        ukey = keys[uid] = okey(u)
        key_mark[uid] = g_key
    if incoming:
        neighbors = graph.iter_in(u)
        their_labels = labeling.in_ids
        cover_labels = labeling.out_ids
        inv_other = labeling.out_holders
        clear = labeling.clear_in_ids
        fill = labeling.fill_in_ids
        remove_mirror = labeling.remove_out_id
    else:
        neighbors = graph.iter_out(u)
        their_labels = labeling.out_ids
        cover_labels = labeling.in_ids
        inv_other = labeling.in_holders
        clear = labeling.clear_out_ids
        fill = labeling.fill_out_ids
        remove_mirror = labeling.remove_in_id

    # Candidate collection with stamped dedup, fused with the Level
    # Constraint prefilter and the key fetch: survivors land in *deco*
    # already decorated for a C-speed tuple sort.
    gen = scratch.next_gen()
    seen = scratch.seen
    deco = []
    for z in neighbors:
        zid = ids[z]
        if seen[zid] != gen:
            seen[zid] = gen
            if key_mark[zid] == g_key:
                k = keys[zid]
            else:
                k = keys[zid] = okey(z)
                key_mark[zid] = g_key
            if k < ukey:
                deco.append((k, zid))
        for w in their_labels[zid]:
            if seen[w] != gen:
                seen[w] = gen
                if key_mark[w] == g_key:
                    k = keys[w]
                else:
                    k = keys[w] = okey(table[w])
                    key_mark[w] = g_key
                if k < ukey:
                    deco.append((k, w))
    clear(uid)
    deco.sort()

    # Re-admit from the highest level down.  Membership of the growing
    # label set is a generation mark (g_own); the sorted array is built
    # once from the admitted buffer after the loop.
    g_own = scratch.next_gen()
    admitted = scratch.cand
    a = 0
    holder_mark = scratch.mark_b
    witness_mark = scratch.mark_a
    doomed = scratch.buf_b
    holders_u = inv_other[uid]
    for _, w in deco:
        if g_holders != 0 and holder_mark[w] == g_holders:
            covered = _covered_flat_suspect(
                graph, table, cover_labels[w], seen, g_own, w, incoming,
                witness_mark, g_witnesses,
            )
        else:
            covered = False
            for x in cover_labels[w]:
                if seen[x] == g_own:
                    covered = True
                    break
        if covered:
            continue  # Path Constraint: covered by a higher label
        seen[w] = g_own
        admitted[a] = w
        a += 1
        # Prune: any s holding w on the opposite side connects to u
        # through w, so u may no longer label s.  The affected s are
        # exactly inv_other[w] ∩ inv_other[u]; iterate the smaller side.
        holders_w = inv_other[w]
        if holders_u and holders_w:
            d = 0
            if len(holders_u) <= len(holders_w):
                for s in holders_u:
                    if s in holders_w:
                        doomed[d] = s
                        d += 1
            else:
                for s in holders_w:
                    if s in holders_u:
                        doomed[d] = s
                        d += 1
            for j in range(d):
                remove_mirror(doomed[j], uid)
    fill(uid, sorted(admitted[:a]))


def _covered_flat_suspect(
    graph: DiGraph,
    table: list,
    cover,
    seen: list,
    g_own: int,
    w: int,
    incoming: bool,
    witness_mark: list,
    g_witnesses: int,
) -> bool:
    """:func:`_covered` for a suspect *w*: re-verify stale witnesses.

    Membership of the label set being rebuilt is ``seen[x] == g_own``
    (the admission marks of :func:`_rebuild_labels_flat`).
    """
    for x in cover:
        if seen[x] != g_own:
            continue
        if witness_mark[x] == g_witnesses:
            src, dst = (w, x) if incoming else (x, w)
            if not bidirectional_reachable(graph, table[src], table[dst]):
                continue
        return True
    return False
