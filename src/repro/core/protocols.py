"""The unified reachability-querier API all index facades speak.

The repository grows four ways to answer the same question "can ``s``
reach ``t``?" — the DAG-level :class:`~repro.core.index.TOLIndex`, the
general-graph :class:`~repro.core.index.ReachabilityIndex`, the immutable
:class:`~repro.core.frozen.FrozenTOLIndex` and the concurrent
:class:`~repro.service.server.ReachabilityService`.
:class:`ReachabilityQuerier` is the structural protocol they all conform
to, so serving code, benchmarks and tests can be written once against the
protocol and handed any facade (``tests/core/test_protocols.py`` drives
one random update/query trace through all four plus a BFS oracle).

The protocol is read-only by design: update methods differ legitimately
across facades (a frozen index has none; the service queues them), but
queries, witness extraction, membership and size accounting are the
invariant surface.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Optional, Protocol, runtime_checkable

__all__ = ["ReachabilityQuerier"]

Vertex = Hashable


@runtime_checkable
class ReachabilityQuerier(Protocol):
    """Anything that can answer reachability queries over a vertex set.

    ``isinstance(obj, ReachabilityQuerier)`` checks method presence (the
    protocol is :func:`~typing.runtime_checkable`); the semantic contract
    below is enforced by the shared conformance suite:

    * :meth:`query` answers ``s -> t`` (every vertex reaches itself);
    * :meth:`query_many` answers a batch, in input order, equal to
      ``[query(s, t) for s, t in pairs]``;
    * :meth:`witness` returns a vertex on some ``s ⇝ t`` path (``s``,
      ``t`` included) when reachable, ``None`` otherwise;
    * ``v in querier`` reports whether ``v`` is indexed;
    * :attr:`num_vertices` counts indexed vertices;
    * :meth:`size` is the total label count ``|L|`` of the underlying
      index, and :meth:`size_bytes` its label payload in bytes
      (``size() * bytes-per-label``; see
      :meth:`repro.core.labeling.TOLLabeling.size_bytes` for the formula).

    Unknown query endpoints raise a :class:`KeyError` subclass
    (:class:`~repro.errors.UnknownVertexError` and friends).
    """

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Return ``True`` iff ``s`` can reach ``t``."""
        ...

    def query_many(
        self, pairs: Iterable[tuple[Vertex, Vertex]]
    ) -> list[bool]:
        """Answer a batch of queries, in input order."""
        ...

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one vertex on some ``s ⇝ t`` path, or ``None``."""
        ...

    def __contains__(self, v: Vertex) -> bool:
        """Return ``True`` iff *v* is indexed."""
        ...

    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        ...

    def size(self) -> int:
        """Total label count ``|L|``."""
        ...

    def size_bytes(self) -> int:
        """Label payload bytes of the underlying index."""
        ...
