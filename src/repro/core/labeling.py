"""The Total Order Labeling state: label sets, inverted indices, queries.

:class:`TOLLabeling` holds, for every vertex ``v`` of a DAG:

* the in-label set ``Lin(v)`` and out-label set ``Lout(v)`` of Definition 1,
* the inverted lists ``Iin(u) = {w : u in Lin(w)}`` and
  ``Iout(u) = {w : u in Lout(w)}`` (Equations 3–4), kept in sync with every
  label mutation — the update algorithms of Section 5 rely on them to find
  all label sets affected by a vertex in time proportional to their number,

plus the :class:`~repro.core.order.LevelOrder` that parameterizes the index.

Queries are answered with the witness set of Equation 1:

    ``W(s, t) = (Lout(s) ∪ {s}) ∩ (Lin(t) ∪ {t})``

returning ``True`` iff it is non-empty (Lemma 1).

This class is deliberately *just* the data structure: construction
(:mod:`repro.core.butterfly`), insertion (:mod:`repro.core.insertion`),
deletion (:mod:`repro.core.deletion`) and reduction
(:mod:`repro.core.reduction`) are separate modules operating on it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Optional

from ..errors import IndexStateError, UnknownVertexError
from .order import LevelOrder

__all__ = ["TOLLabeling"]

Vertex = Hashable

#: Bytes one label entry occupies in the paper's C++ implementation
#: (a 32-bit vertex id); used to report index sizes in bytes as Figure 5
#: does.
BYTES_PER_LABEL = 4


class TOLLabeling:
    """Label sets and inverted indices of a TOL index over a DAG.

    Parameters
    ----------
    order:
        The level order.  Every vertex registered in the labeling must be
        present in the order (and vice versa for labels to make sense).
    """

    __slots__ = ("order", "label_in", "label_out", "inv_in", "inv_out")

    def __init__(self, order: LevelOrder) -> None:
        self.order = order
        self.label_in: dict[Vertex, set[Vertex]] = {}
        self.label_out: dict[Vertex, set[Vertex]] = {}
        self.inv_in: dict[Vertex, set[Vertex]] = {}
        self.inv_out: dict[Vertex, set[Vertex]] = {}
        for v in order:
            self._register(v)

    # ------------------------------------------------------------------
    # Vertex registry
    # ------------------------------------------------------------------

    def _register(self, v: Vertex) -> None:
        self.label_in[v] = set()
        self.label_out[v] = set()
        self.inv_in[v] = set()
        self.inv_out[v] = set()

    def add_vertex(self, v: Vertex) -> None:
        """Register *v* with empty label sets (order must already hold it)."""
        if v in self.label_in:
            raise IndexStateError(f"vertex {v!r} already registered")
        if v not in self.order:
            raise IndexStateError(f"vertex {v!r} missing from the level order")
        self._register(v)

    def drop_vertex(self, v: Vertex) -> None:
        """Unregister *v*: strip it from every label set, then forget it.

        The caller removes *v* from the level order separately.
        """
        for w in tuple(self.inv_in[v]):
            self.remove_in_label(w, v)
        for w in tuple(self.inv_out[v]):
            self.remove_out_label(w, v)
        for u in tuple(self.label_in[v]):
            self.remove_in_label(v, u)
        for u in tuple(self.label_out[v]):
            self.remove_out_label(v, u)
        del self.label_in[v]
        del self.label_out[v]
        del self.inv_in[v]
        del self.inv_out[v]

    def __contains__(self, v: Vertex) -> bool:
        return v in self.label_in

    def vertices(self) -> Iterable[Vertex]:
        """Iterate over all registered vertices."""
        return self.label_in.keys()

    @property
    def num_vertices(self) -> int:
        """Number of registered vertices."""
        return len(self.label_in)

    # ------------------------------------------------------------------
    # Label mutation (inverted lists stay in sync)
    # ------------------------------------------------------------------

    def add_in_label(self, v: Vertex, u: Vertex) -> None:
        """Insert *u* into ``Lin(v)``."""
        self.label_in[v].add(u)
        self.inv_in[u].add(v)

    def add_out_label(self, v: Vertex, u: Vertex) -> None:
        """Insert *u* into ``Lout(v)``."""
        self.label_out[v].add(u)
        self.inv_out[u].add(v)

    def remove_in_label(self, v: Vertex, u: Vertex) -> None:
        """Remove *u* from ``Lin(v)``."""
        self.label_in[v].remove(u)
        self.inv_in[u].remove(v)

    def remove_out_label(self, v: Vertex, u: Vertex) -> None:
        """Remove *u* from ``Lout(v)``."""
        self.label_out[v].remove(u)
        self.inv_out[u].remove(v)

    def discard_in_label(self, v: Vertex, u: Vertex) -> bool:
        """Remove *u* from ``Lin(v)`` if present; report whether it was."""
        if u in self.label_in[v]:
            self.remove_in_label(v, u)
            return True
        return False

    def discard_out_label(self, v: Vertex, u: Vertex) -> bool:
        """Remove *u* from ``Lout(v)`` if present; report whether it was."""
        if u in self.label_out[v]:
            self.remove_out_label(v, u)
            return True
        return False

    def clear_in_labels(self, v: Vertex) -> None:
        """Empty ``Lin(v)`` (inverted lists updated)."""
        for u in tuple(self.label_in[v]):
            self.remove_in_label(v, u)

    def clear_out_labels(self, v: Vertex) -> None:
        """Empty ``Lout(v)`` (inverted lists updated)."""
        for u in tuple(self.label_out[v]):
            self.remove_out_label(v, u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer the reachability query ``s -> t`` (Equation 1 / Lemma 1)."""
        if s == t:
            if s not in self.label_in:
                raise UnknownVertexError(s)
            return True
        try:
            out_s = self.label_out[s]
            in_t = self.label_in[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if t in out_s or s in in_t:
            return True
        if len(out_s) > len(in_t):
            out_s, in_t = in_t, out_s
        return any(w in in_t for w in out_s)

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one element of ``W(s, t)``, or ``None`` if unreachable."""
        if s == t:
            if s not in self.label_in:
                raise UnknownVertexError(s)
            return s
        try:
            out_s = self.label_out[s]
            in_t = self.label_in[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if t in out_s:
            return t
        if s in in_t:
            return s
        small, large = (out_s, in_t) if len(out_s) <= len(in_t) else (in_t, out_s)
        for w in small:
            if w in large:
                return w
        return None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Total number of labels, ``|L| = Σ_v |Lin(v)| + |Lout(v)|``."""
        return sum(len(s) for s in self.label_in.values()) + sum(
            len(s) for s in self.label_out.values()
        )

    def size_bytes(self, bytes_per_label: int = BYTES_PER_LABEL) -> int:
        """Index size in bytes, as reported by the paper's Figure 5."""
        return self.size() * bytes_per_label

    def label_count(self, v: Vertex) -> int:
        """``|Lin(v)| + |Lout(v)|`` for one vertex."""
        return len(self.label_in[v]) + len(self.label_out[v])

    # ------------------------------------------------------------------
    # Copying and comparison
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[Vertex, tuple[frozenset, frozenset]]:
        """Return an immutable ``{v: (Lin(v), Lout(v))}`` view for tests."""
        return {
            v: (frozenset(self.label_in[v]), frozenset(self.label_out[v]))
            for v in self.label_in
        }

    def equals_labels(self, other: "TOLLabeling") -> bool:
        """Compare label sets only (ignores order object identity)."""
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(vertices={self.num_vertices}, "
            f"labels={self.size()})"
        )

    def check_invariants(self) -> None:
        """Validate inverted-list consistency and level constraints (tests)."""
        assert (
            self.label_in.keys()
            == self.label_out.keys()
            == self.inv_in.keys()
            == self.inv_out.keys()
        )
        for v, labels in self.label_in.items():
            for u in labels:
                assert v in self.inv_in[u], (v, u)
                assert self.order.higher(u, v), f"level constraint: {u} in Lin({v})"
        for v, labels in self.label_out.items():
            for u in labels:
                assert v in self.inv_out[u], (v, u)
                assert self.order.higher(u, v), f"level constraint: {u} in Lout({v})"
        for u, holders in self.inv_in.items():
            for w in holders:
                assert u in self.label_in[w], (u, w)
        for u, holders in self.inv_out.items():
            for w in holders:
                assert u in self.label_out[w], (u, w)
