"""The Total Order Labeling state: label buffers, inverted indices, queries.

:class:`TOLLabeling` holds, for every vertex ``v`` of a DAG:

* the in-label set ``Lin(v)`` and out-label set ``Lout(v)`` of Definition 1,
* the inverted lists ``Iin(u) = {w : u in Lin(w)}`` and
  ``Iout(u) = {w : u in Lout(w)}`` (Equations 3–4), kept in sync with every
  label mutation — the update algorithms of Section 5 rely on them to find
  all label sets affected by a vertex in time proportional to their number,

plus the :class:`~repro.core.order.LevelOrder` that parameterizes the index.

Storage layout
--------------
Vertices are interned to dense integer ids by a
:class:`~repro.core.intern.VertexInterner` (ids are stable for a vertex's
lifetime and recycled on deletion).  Each label set is a sorted
``array('i')`` of ids, indexed by the owner's id in the parallel lists
:attr:`in_ids` / :attr:`out_ids`; inverted lists are ``set[int]`` in
:attr:`in_holders` / :attr:`out_holders`.  The algorithms of Section 5
intersect and mutate the flat int buffers directly — the same shape the
paper's C++ implementation and :class:`~repro.core.frozen.FrozenTOLIndex`
use, but kept **live under updates**: insertion into a small sorted array
is a C ``memmove``, and the update algorithms mutate the buffers in place
through the id-level API (:meth:`add_in_id` et al.), so aliases held
across mutations stay valid.

Single-pair queries additionally consult a *lazy frozenset mirror*
(:attr:`in_sets` / :attr:`out_sets`): the first query touching a vertex
materializes ``frozenset(buffer)`` once, every mutation of that vertex's
buffer invalidates its slot, and the query itself is then three C set
operations over small ints (two endpoint probes and one ``isdisjoint``) —
in CPython this beats any bytecode-level merge, while :meth:`witness`
still runs the ordered two-pointer merge over the arrays to return the
lowest-id witness deterministically.

The public API still speaks user vertex objects at the boundary
(:meth:`add_in_label`, :meth:`query`, ...); the dict-like views
:attr:`label_in` / :attr:`label_out` / :attr:`inv_in` / :attr:`inv_out`
materialize plain ``set`` snapshots for tests and diagnostics.

Queries are answered with the witness set of Equation 1:

    ``W(s, t) = (Lout(s) ∪ {s}) ∩ (Lin(t) ∪ {t})``

returning ``True`` iff it is non-empty (Lemma 1).

This class is deliberately *just* the data structure: construction
(:mod:`repro.core.butterfly`), insertion (:mod:`repro.core.insertion`),
deletion (:mod:`repro.core.deletion`) and reduction
(:mod:`repro.core.reduction`) are separate modules operating on it.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from ..errors import IndexStateError, UnknownVertexError
from .intern import VertexInterner
from .order import LevelOrder

__all__ = ["TOLLabeling", "ids_intersect", "first_common_id"]

Vertex = Hashable

#: Bytes one label entry occupies: the itemsize of the ``array('i')``
#: buffers (a 32-bit vertex id), matching the paper's C++ implementation;
#: used to report index sizes in bytes as Figure 5 does.
BYTES_PER_LABEL = array("i").itemsize

#: Size ratio beyond which an intersection galloping-probes the larger
#: side with binary search instead of scanning it linearly.
_GALLOP_SKEW = 16


def ids_intersect(a, b) -> bool:
    """``True`` iff the two sorted int sequences share an element.

    The workhorse of every cover check: tiered into an emptiness bail-out,
    a range-disjointness bail-out, a C membership scan for small sides, a
    galloping binary-search probe for skewed sizes, and a two-pointer merge
    otherwise.
    """
    la = len(a)
    lb = len(b)
    if not la or not lb:
        return False
    if la > lb:
        a, b = b, a
        la, lb = lb, la
    if a[-1] < b[0] or b[-1] < a[0]:
        return False
    if lb <= 32:
        for x in a:  # array.__contains__ is a C scan over the raw buffer
            if x in b:
                return True
        return False
    if la * _GALLOP_SKEW <= lb:
        for x in a:
            j = bisect_left(b, x)
            if j < lb and b[j] == x:
                return True
        return False
    i = j = 0
    x = a[0]
    y = b[0]
    while True:
        if x < y:
            i += 1
            if i == la:
                return False
            x = a[i]
        elif x > y:
            j += 1
            if j == lb:
                return False
            y = b[j]
        else:
            return True


def first_common_id(a, b) -> int:
    """Smallest id shared by two sorted int sequences, or ``-1``."""
    la = len(a)
    lb = len(b)
    if not la or not lb or a[-1] < b[0] or b[-1] < a[0]:
        return -1
    i = j = 0
    x = a[0]
    y = b[0]
    while True:
        if x < y:
            i += 1
            if i == la:
                return -1
            x = a[i]
        elif x > y:
            j += 1
            if j == lb:
                return -1
            y = b[j]
        else:
            return x


class _SideView:
    """Read-only dict-like view of one label/inverted side.

    Keys are user vertex objects; values are freshly-built ``set`` objects
    of user vertices.  Mutating a returned set does **not** write through —
    use the labeling's mutation API.
    """

    __slots__ = ("_labeling", "_buffers")

    def __init__(self, labeling: "TOLLabeling", buffers: list) -> None:
        self._labeling = labeling
        self._buffers = buffers

    def __getitem__(self, v: Vertex) -> set:
        lab = self._labeling
        table = lab.interner.table
        return {table[i] for i in self._buffers[lab.interner.ids[v]]}

    def __contains__(self, v: Vertex) -> bool:
        return v in self._labeling.interner.ids

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labeling.interner.ids)

    def __len__(self) -> int:
        return len(self._labeling.interner.ids)

    def keys(self) -> Iterator[Vertex]:
        return iter(self._labeling.interner.ids)

    def values(self):
        lab = self._labeling
        table = lab.interner.table
        for i in lab.interner.ids.values():
            yield {table[u] for u in self._buffers[i]}

    def items(self):
        lab = self._labeling
        table = lab.interner.table
        for v, i in lab.interner.ids.items():
            yield v, {table[u] for u in self._buffers[i]}


class TOLLabeling:
    """Label buffers and inverted indices of a TOL index over a DAG.

    Parameters
    ----------
    order:
        The level order.  Every vertex registered in the labeling must be
        present in the order (and vice versa for labels to make sense).
    """

    __slots__ = (
        "order",
        "interner",
        "_vids",
        "in_ids",
        "out_ids",
        "in_holders",
        "out_holders",
        "in_sets",
        "out_sets",
        "label_in",
        "label_out",
        "inv_in",
        "inv_out",
        "scratch",
    )

    def __init__(
        self, order: LevelOrder, *, interner: Optional[VertexInterner] = None
    ) -> None:
        self.order = order
        self.interner = VertexInterner() if interner is None else interner
        # Direct reference to the interner's vertex -> id dict (the dict
        # object is stable), skipping a property call on the query path.
        self._vids = self.interner.ids
        #: ``in_ids[i]`` is ``Lin(vertex i)`` as a sorted ``array('i')``.
        self.in_ids: list[Optional[array]] = []
        self.out_ids: list[Optional[array]] = []
        #: ``in_holders[i]`` is ``Iin(i) = {w : i in Lin(w)}`` as id sets.
        self.in_holders: list[Optional[set[int]]] = []
        self.out_holders: list[Optional[set[int]]] = []
        #: Lazily-derived ``frozenset`` mirror of each buffer, used by the
        #: query fast path (C-speed membership/intersection); ``None``
        #: marks a stale slot, re-materialized on next query.  Mutators
        #: invalidate; algorithms never read these (they intersect the
        #: live arrays, whose aliases they hold across mutations).
        self.in_sets: list[Optional[frozenset]] = []
        self.out_sets: list[Optional[frozenset]] = []
        self.label_in = _SideView(self, self.in_ids)
        self.label_out = _SideView(self, self.out_ids)
        self.inv_in = _SideView(self, self.in_holders)
        self.inv_out = _SideView(self, self.out_holders)
        #: Lazily-created :class:`~repro.core.scratch.UpdateScratch` the
        #: flat update kernels reuse across ops (see update_scratch()).
        self.scratch = None
        if interner is None:
            # Bulk path: a fresh interner has no free ids, and a LevelOrder
            # holds distinct vertices, so the whole order interns densely in
            # one pass (ids == level ranks) — equivalent to, and much faster
            # than, per-vertex _register calls.
            count = self.interner.intern_dense(order)
            self.in_ids.extend([array("i") for _ in range(count)])
            self.out_ids.extend([array("i") for _ in range(count)])
            self.in_holders.extend([set() for _ in range(count)])
            self.out_holders.extend([set() for _ in range(count)])
            self.in_sets.extend([None] * count)
            self.out_sets.extend([None] * count)
        else:
            # Adoption path (persistence): the caller hands a pre-built
            # interner covering exactly the order's vertices, so a reload
            # keeps the original id assignment including free-list holes.
            if set(interner.ids) != set(order):
                raise IndexStateError(
                    "adopted interner does not cover the level order"
                )
            live = set(interner.ids.values())
            for i in range(interner.capacity):
                alive = i in live
                self.in_ids.append(array("i") if alive else None)
                self.out_ids.append(array("i") if alive else None)
                self.in_holders.append(set() if alive else None)
                self.out_holders.append(set() if alive else None)
                self.in_sets.append(None)
                self.out_sets.append(None)

    # ------------------------------------------------------------------
    # Vertex registry
    # ------------------------------------------------------------------

    def _register(self, v: Vertex) -> int:
        i = self.interner.intern(v)
        if i == len(self.in_ids):
            self.in_ids.append(array("i"))
            self.out_ids.append(array("i"))
            self.in_holders.append(set())
            self.out_holders.append(set())
            self.in_sets.append(None)
            self.out_sets.append(None)
        else:  # recycled id: the parallel slots already exist
            self.in_ids[i] = array("i")
            self.out_ids[i] = array("i")
            self.in_holders[i] = set()
            self.out_holders[i] = set()
            self.in_sets[i] = None
            self.out_sets[i] = None
        return i

    def add_vertex(self, v: Vertex) -> None:
        """Register *v* with empty label sets (order must already hold it)."""
        if v in self.interner:
            raise IndexStateError(f"vertex {v!r} already registered")
        if v not in self.order:
            raise IndexStateError(f"vertex {v!r} missing from the level order")
        self._register(v)

    def drop_vertex(self, v: Vertex) -> None:
        """Unregister *v*: strip it from every label set, then forget it.

        The caller removes *v* from the level order separately.  The id is
        released to the interner's free list for reuse.
        """
        i = self.interner.id_of(v)
        for w in tuple(self.in_holders[i]):
            self.remove_in_id(w, i)
        for w in tuple(self.out_holders[i]):
            self.remove_out_id(w, i)
        for u in tuple(self.in_ids[i]):
            self.remove_in_id(i, u)
        for u in tuple(self.out_ids[i]):
            self.remove_out_id(i, u)
        self.in_ids[i] = None
        self.out_ids[i] = None
        self.in_holders[i] = None
        self.out_holders[i] = None
        self.in_sets[i] = None
        self.out_sets[i] = None
        self.interner.release(v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self.interner.ids

    def vertices(self) -> Iterable[Vertex]:
        """Iterate over all registered vertices."""
        return self.interner.ids.keys()

    @property
    def num_vertices(self) -> int:
        """Number of registered vertices."""
        return len(self.interner.ids)

    def id_of(self, v: Vertex) -> int:
        """Interned id of *v* (raises :class:`UnknownVertexError`)."""
        return self.interner.id_of(v)

    def vertex_of(self, i: int) -> Vertex:
        """Vertex owning interned id *i*."""
        return self.interner.vertex_of(i)

    def level_key(self, i: int) -> int:
        """Order sort key of the vertex with id *i* (smaller == higher)."""
        return self.order.key(self.interner.table[i])

    def update_scratch(self):
        """The labeling's reusable update-kernel scratch (created lazily).

        One :class:`~repro.core.scratch.UpdateScratch` per labeling, shared
        by every flat insertion/deletion; buffer identity is stable across
        ops, which is what makes steady-state updates allocation-free.
        """
        s = self.scratch
        if s is None:
            from .scratch import UpdateScratch

            s = self.scratch = UpdateScratch()
        return s

    def scratch_stats(self):
        """High-water marks of the update scratch, or ``None`` if unused.

        The health introspector (:mod:`repro.obs.health`) reads this to
        report how much buffer space the flat update kernels have
        claimed without forcing the scratch into existence on a
        read-only labeling.
        """
        return None if self.scratch is None else self.scratch.stats()

    # ------------------------------------------------------------------
    # Label mutation — id level (inverted lists stay in sync)
    # ------------------------------------------------------------------

    def add_in_id(self, vid: int, uid: int) -> None:
        """Insert id *uid* into ``Lin(vid)`` (idempotent, like ``set.add``)."""
        a = self.in_ids[vid]
        pos = bisect_left(a, uid)
        if pos == len(a) or a[pos] != uid:
            a.insert(pos, uid)
            self.in_holders[uid].add(vid)
            self.in_sets[vid] = None

    def add_out_id(self, vid: int, uid: int) -> None:
        """Insert id *uid* into ``Lout(vid)``."""
        a = self.out_ids[vid]
        pos = bisect_left(a, uid)
        if pos == len(a) or a[pos] != uid:
            a.insert(pos, uid)
            self.out_holders[uid].add(vid)
            self.out_sets[vid] = None

    def remove_in_id(self, vid: int, uid: int) -> None:
        """Remove id *uid* from ``Lin(vid)`` (KeyError if absent)."""
        a = self.in_ids[vid]
        pos = bisect_left(a, uid)
        if pos == len(a) or a[pos] != uid:
            raise KeyError(uid)
        del a[pos]
        self.in_holders[uid].remove(vid)
        self.in_sets[vid] = None

    def remove_out_id(self, vid: int, uid: int) -> None:
        """Remove id *uid* from ``Lout(vid)``."""
        a = self.out_ids[vid]
        pos = bisect_left(a, uid)
        if pos == len(a) or a[pos] != uid:
            raise KeyError(uid)
        del a[pos]
        self.out_holders[uid].remove(vid)
        self.out_sets[vid] = None

    def discard_in_id(self, vid: int, uid: int) -> bool:
        """Remove *uid* from ``Lin(vid)`` if present; report whether it was."""
        a = self.in_ids[vid]
        pos = bisect_left(a, uid)
        if pos == len(a) or a[pos] != uid:
            return False
        del a[pos]
        self.in_holders[uid].remove(vid)
        self.in_sets[vid] = None
        return True

    def discard_out_id(self, vid: int, uid: int) -> bool:
        """Remove *uid* from ``Lout(vid)`` if present; report whether it was."""
        a = self.out_ids[vid]
        pos = bisect_left(a, uid)
        if pos == len(a) or a[pos] != uid:
            return False
        del a[pos]
        self.out_holders[uid].remove(vid)
        self.out_sets[vid] = None
        return True

    def clear_in_ids(self, vid: int) -> None:
        """Empty ``Lin(vid)`` in place (aliases stay valid)."""
        a = self.in_ids[vid]
        for uid in a:
            self.in_holders[uid].remove(vid)
        del a[:]
        self.in_sets[vid] = None

    def clear_out_ids(self, vid: int) -> None:
        """Empty ``Lout(vid)`` in place."""
        a = self.out_ids[vid]
        for uid in a:
            self.out_holders[uid].remove(vid)
        del a[:]
        self.out_sets[vid] = None

    def fill_in_ids(self, vid: int, uids) -> None:
        """Bulk-set ``Lin(vid)`` from *uids* (sorted ascending, distinct).

        The batch counterpart of repeated :meth:`add_in_id` for a label
        set that was just cleared: one C-speed ``extend`` instead of a
        ``bisect.insort`` per label.  ``Lin(vid)`` must currently be
        empty; the deletion rebuild kernel is the intended caller.
        """
        a = self.in_ids[vid]
        if a:
            raise IndexStateError(f"fill_in_ids: Lin({vid}) is not empty")
        a.extend(uids)
        holders = self.in_holders
        for uid in a:
            holders[uid].add(vid)
        self.in_sets[vid] = None

    def fill_out_ids(self, vid: int, uids) -> None:
        """Bulk-set ``Lout(vid)`` (mirror of :meth:`fill_in_ids`)."""
        a = self.out_ids[vid]
        if a:
            raise IndexStateError(f"fill_out_ids: Lout({vid}) is not empty")
        a.extend(uids)
        holders = self.out_holders
        for uid in a:
            holders[uid].add(vid)
        self.out_sets[vid] = None

    # ------------------------------------------------------------------
    # Label mutation — user-vertex boundary
    # ------------------------------------------------------------------

    def add_in_label(self, v: Vertex, u: Vertex) -> None:
        """Insert *u* into ``Lin(v)``."""
        ids = self.interner.ids
        self.add_in_id(ids[v], ids[u])

    def add_out_label(self, v: Vertex, u: Vertex) -> None:
        """Insert *u* into ``Lout(v)``."""
        ids = self.interner.ids
        self.add_out_id(ids[v], ids[u])

    def remove_in_label(self, v: Vertex, u: Vertex) -> None:
        """Remove *u* from ``Lin(v)``."""
        ids = self.interner.ids
        self.remove_in_id(ids[v], ids[u])

    def remove_out_label(self, v: Vertex, u: Vertex) -> None:
        """Remove *u* from ``Lout(v)``."""
        ids = self.interner.ids
        self.remove_out_id(ids[v], ids[u])

    def discard_in_label(self, v: Vertex, u: Vertex) -> bool:
        """Remove *u* from ``Lin(v)`` if present; report whether it was."""
        ids = self.interner.ids
        return self.discard_in_id(ids[v], ids[u])

    def discard_out_label(self, v: Vertex, u: Vertex) -> bool:
        """Remove *u* from ``Lout(v)`` if present; report whether it was."""
        ids = self.interner.ids
        return self.discard_out_id(ids[v], ids[u])

    def clear_in_labels(self, v: Vertex) -> None:
        """Empty ``Lin(v)`` (inverted lists updated)."""
        self.clear_in_ids(self.interner.ids[v])

    def clear_out_labels(self, v: Vertex) -> None:
        """Empty ``Lout(v)`` (inverted lists updated)."""
        self.clear_out_ids(self.interner.ids[v])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer the reachability query ``s -> t`` (Equation 1 / Lemma 1).

        The fast path is three C set operations over interned ids: the two
        endpoint-witness probes (``t ∈ Lout(s)``, ``s ∈ Lin(t)``) and one
        ``frozenset.isdisjoint`` for ``Lout(s) ∩ Lin(t)``, using the lazy
        frozenset mirror of the label buffers.
        """
        ids = self._vids
        try:
            sid = ids[s]
            tid = ids[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if sid == tid:
            return True
        out_sets = self.out_sets
        fa = out_sets[sid]
        if fa is None:
            fa = out_sets[sid] = frozenset(self.out_ids[sid])
        in_sets = self.in_sets
        fb = in_sets[tid]
        if fb is None:
            fb = in_sets[tid] = frozenset(self.in_ids[tid])
        return tid in fa or sid in fb or not fa.isdisjoint(fb)

    def query_many(
        self, pairs: Iterable[tuple[Vertex, Vertex]]
    ) -> list[bool]:
        """Answer a batch of queries, in input order."""
        query = self.query
        return [query(s, t) for s, t in pairs]

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one element of ``W(s, t)``, or ``None`` if unreachable."""
        ids = self.interner.ids
        try:
            sid = ids[s]
            tid = ids[t]
        except KeyError as missing:
            raise UnknownVertexError(missing.args[0]) from None
        if sid == tid:
            return s
        out_s = self.out_ids[sid]
        in_t = self.in_ids[tid]
        if tid in out_s:
            return t
        if sid in in_t:
            return s
        w = first_common_id(out_s, in_t)
        return None if w < 0 else self.interner.table[w]

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Total number of labels, ``|L| = Σ_v |Lin(v)| + |Lout(v)|``."""
        total = 0
        for i in self.interner.ids.values():
            total += len(self.in_ids[i]) + len(self.out_ids[i])
        return total

    def size_bytes(self, bytes_per_label: int = BYTES_PER_LABEL) -> int:
        """Label payload bytes: ``size() * bytes_per_label``.

        The default ``bytes_per_label`` is the itemsize of the live
        ``array('i')`` buffers (4 bytes — a 32-bit vertex id), so with no
        argument this is the *exact* number of label-payload bytes held by
        the index, and matches
        :meth:`repro.core.frozen.FrozenTOLIndex.size_bytes` for a frozen
        copy of the same index (Figure 5's accounting).  Container
        overhead (offsets, inverted lists, the interner, the lazy query
        mirror) is excluded on both sides;
        :meth:`FrozenTOLIndex.buffer_bytes` reports the frozen total
        including offsets.
        """
        return self.size() * bytes_per_label

    def label_count(self, v: Vertex) -> int:
        """``|Lin(v)| + |Lout(v)|`` for one vertex."""
        i = self.interner.ids[v]
        return len(self.in_ids[i]) + len(self.out_ids[i])

    # ------------------------------------------------------------------
    # Copying and comparison
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[Vertex, tuple[frozenset, frozenset]]:
        """Return an immutable ``{v: (Lin(v), Lout(v))}`` view for tests."""
        table = self.interner.table
        return {
            v: (
                frozenset(table[u] for u in self.in_ids[i]),
                frozenset(table[u] for u in self.out_ids[i]),
            )
            for v, i in self.interner.ids.items()
        }

    def equals_labels(self, other: "TOLLabeling") -> bool:
        """Compare label sets only (ignores order object identity)."""
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(vertices={self.num_vertices}, "
            f"labels={self.size()})"
        )

    def check_invariants(self) -> None:
        """Validate interning, sortedness, inverted-list and level
        consistency (tests)."""
        self.interner.check_invariants()
        ids = self.interner.ids
        table = self.interner.table
        for v in ids:
            assert v in self.order, f"vertex {v!r} missing from the order"
        for v, i in ids.items():
            lin = self.in_ids[i]
            lout = self.out_ids[i]
            assert lin is not None and lout is not None, v
            assert list(lin) == sorted(set(lin)), f"Lin({v!r}) not sorted-unique"
            assert list(lout) == sorted(set(lout)), f"Lout({v!r}) not sorted-unique"
            assert self.in_sets[i] is None or self.in_sets[i] == frozenset(
                lin
            ), f"stale query mirror for Lin({v!r})"
            assert self.out_sets[i] is None or self.out_sets[i] == frozenset(
                lout
            ), f"stale query mirror for Lout({v!r})"
            for u in lin:
                assert i in self.in_holders[u], (v, table[u])
                assert self.order.higher(table[u], v), (
                    f"level constraint: {table[u]!r} in Lin({v!r})"
                )
            for u in lout:
                assert i in self.out_holders[u], (v, table[u])
                assert self.order.higher(table[u], v), (
                    f"level constraint: {table[u]!r} in Lout({v!r})"
                )
        for v, u in ids.items():
            for w in self.in_holders[u]:
                a = self.in_ids[w]
                pos = bisect_left(a, u)
                assert pos < len(a) and a[pos] == u, (v, table[w])
            for w in self.out_holders[u]:
                a = self.out_ids[w]
                pos = bisect_left(a, u)
                assert pos < len(a) and a[pos] == u, (v, table[w])
