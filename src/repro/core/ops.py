"""The one update representation: :class:`UpdateOp`.

Before this module, four surfaces each carried their own encoding of "a
pending index mutation":

* the service update queue held ``UpdateOp`` objects with trace-style
  short kinds (``addv``/``delv``/``adde``/``dele``),
* WAL records serialized those through ``to_wire()`` dicts,
* the net protocol's update envelope shipped the same dicts under a
  different name, and
* ``serve-replay`` re-parsed trace lines into yet another shape before
  converting.

:class:`UpdateOp` is now the single in-memory value all of them
construct and consume.  The canonical ``kind`` names match the index
API verbs (``insert_vertex`` / ``delete_vertex`` / ``insert_edge`` /
``delete_edge``); :meth:`from_dict` is versioned and still accepts the
legacy short kinds, so WAL files and wire payloads written by earlier
releases keep decoding.  :meth:`to_dict` always emits the canonical
form, and the encoding is deterministic: ``to_dict`` → JSON with sorted
keys → ``from_dict`` → ``to_dict`` is byte-identical (pinned by
``tests/core/test_ops.py``).

Vertices must be JSON-serializable; tuple vertices round-trip back to
tuples (the same convention :mod:`repro.core.serialize` uses).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..errors import WorkloadError

__all__ = ["UpdateOp", "KINDS"]

Vertex = Hashable

#: Canonical update kinds, matching the index API verbs.
KINDS = ("insert_vertex", "delete_vertex", "insert_edge", "delete_edge")

#: Legacy (v1) short kinds, mirroring the trace grammar of
#: :mod:`repro.bench.trace`.  Accepted on decode, never emitted.
_LEGACY_KINDS = {
    "addv": "insert_vertex",
    "delv": "delete_vertex",
    "adde": "insert_edge",
    "dele": "delete_edge",
}


def _unwire(v):
    """JSON round-trips tuple vertices as lists; make them hashable again."""
    return tuple(_unwire(x) for x in v) if isinstance(v, list) else v


@dataclass(frozen=True)
class UpdateOp:
    """One pending index mutation.

    ``kind`` is one of :data:`KINDS`; constructing with a legacy short
    kind (``addv``/``delv``/``adde``/``dele``) normalizes it.  Use the
    classmethod constructors; they normalize arguments and keep the
    unused fields ``None``.
    """

    kind: str
    vertex: Vertex = None
    ins: tuple[Vertex, ...] = ()
    outs: tuple[Vertex, ...] = ()
    tail: Vertex = None
    head: Vertex = None

    def __post_init__(self) -> None:
        kind = _LEGACY_KINDS.get(self.kind, self.kind)
        if kind not in KINDS:
            raise WorkloadError(f"unknown update kind {self.kind!r}")
        if kind != self.kind:
            object.__setattr__(self, "kind", kind)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def insert_vertex(
        cls,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> "UpdateOp":
        """A pending ``insert_vertex(v, ins, outs)``."""
        return cls(
            "insert_vertex",
            vertex=v,
            ins=tuple(in_neighbors),
            outs=tuple(out_neighbors),
        )

    @classmethod
    def delete_vertex(cls, v: Vertex) -> "UpdateOp":
        """A pending ``delete_vertex(v)``."""
        return cls("delete_vertex", vertex=v)

    @classmethod
    def insert_edge(cls, tail: Vertex, head: Vertex) -> "UpdateOp":
        """A pending ``insert_edge(tail, head)``."""
        return cls("insert_edge", tail=tail, head=head)

    @classmethod
    def delete_edge(cls, tail: Vertex, head: Vertex) -> "UpdateOp":
        """A pending ``delete_edge(tail, head)``."""
        return cls("delete_edge", tail=tail, head=head)

    # ------------------------------------------------------------------
    # Encoding — the one dict form shared by WAL records and the wire
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict) -> "UpdateOp":
        """Decode a :meth:`to_dict` dict (WAL record / wire payload).

        Versioned: legacy short kinds written by earlier releases
        (``addv``/``delv``/``adde``/``dele``) are accepted and
        normalized, so a PR-5-era WAL file still replays.

        Raises
        ------
        WorkloadError
            On an unknown kind or missing fields.
        """
        try:
            kind = _LEGACY_KINDS.get(payload["kind"], payload["kind"])
            if kind == "insert_vertex":
                return cls.insert_vertex(
                    _unwire(payload["vertex"]),
                    [_unwire(v) for v in payload.get("ins", ())],
                    [_unwire(v) for v in payload.get("outs", ())],
                )
            if kind == "delete_vertex":
                return cls.delete_vertex(_unwire(payload["vertex"]))
            if kind in ("insert_edge", "delete_edge"):
                return cls(
                    kind,
                    tail=_unwire(payload["tail"]),
                    head=_unwire(payload["head"]),
                )
        except (KeyError, TypeError) as exc:
            raise WorkloadError(
                f"malformed wire-format update: {exc!r}"
            ) from None
        raise WorkloadError(f"unknown wire update kind {payload.get('kind')!r}")

    def to_dict(self) -> dict:
        """JSON-compatible canonical encoding (inverse of :meth:`from_dict`)."""
        if self.kind == "insert_vertex":
            return {
                "kind": "insert_vertex",
                "vertex": self.vertex,
                "ins": list(self.ins),
                "outs": list(self.outs),
            }
        if self.kind == "delete_vertex":
            return {"kind": "delete_vertex", "vertex": self.vertex}
        return {"kind": self.kind, "tail": self.tail, "head": self.head}

    # Deprecated aliases: earlier releases named the dict codec after the
    # WAL wire format.  Kept so external callers keep working; in-tree
    # code uses to_dict/from_dict.
    to_wire = to_dict
    from_wire = from_dict

    @classmethod
    def from_trace_op(cls, op) -> "UpdateOp":
        """Adapt a mutation :class:`~repro.bench.trace.TraceOp`."""
        if op.kind == "addv":
            return cls.insert_vertex(op.vertex, op.ins, op.outs)
        if op.kind == "delv":
            return cls.delete_vertex(op.vertex)
        if op.kind == "adde":
            return cls.insert_edge(op.tail, op.head)
        if op.kind == "dele":
            return cls.delete_edge(op.tail, op.head)
        raise WorkloadError(f"trace op {op.kind!r} is not an update")

    @property
    def payload(self) -> dict:
        """The kind-specific arguments of :meth:`to_dict`, without ``kind``."""
        d = self.to_dict()
        del d["kind"]
        return d

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, index) -> None:
        """Execute this op against any index with the vertex/edge API."""
        if self.kind == "insert_vertex":
            index.insert_vertex(self.vertex, self.ins, self.outs)
        elif self.kind == "delete_vertex":
            index.delete_vertex(self.vertex)
        elif self.kind == "insert_edge":
            index.insert_edge(self.tail, self.head)
        else:
            index.delete_edge(self.tail, self.head)

    def apply_to_graph(self, graph) -> None:
        """Mirror this op onto a plain :class:`~repro.graph.digraph.DiGraph`.

        Used by the service's shadow graph (degraded-mode BFS serving),
        WAL replay during recovery, and the oracle tests — all of which
        need the *graph* effect of an op without touching any index.
        """
        if self.kind == "insert_vertex":
            graph.add_vertex(self.vertex)
            for u in self.ins:
                graph.add_edge(u, self.vertex)
            for w in self.outs:
                graph.add_edge(self.vertex, w)
        elif self.kind == "delete_vertex":
            graph.remove_vertex(self.vertex)
        elif self.kind == "insert_edge":
            graph.add_edge(self.tail, self.head)
        else:
            graph.remove_edge(self.tail, self.head)

    def referenced_vertices(self) -> tuple[Vertex, ...]:
        """Vertices this op requires to already exist.

        For ``insert_vertex`` that is the neighbor lists (the inserted
        vertex itself is new); for the other kinds, every named vertex.
        """
        if self.kind == "insert_vertex":
            return self.ins + self.outs
        if self.kind == "delete_vertex":
            return (self.vertex,)
        return (self.tail, self.head)

    def __str__(self) -> str:
        if self.kind == "insert_vertex":
            return (
                f"insert_vertex {self.vertex} "
                f"in={list(self.ins)} out={list(self.outs)}"
            )
        if self.kind == "delete_vertex":
            return f"delete_vertex {self.vertex}"
        return f"{self.kind} {self.tail} {self.head}"
