"""Preallocated, generation-stamped scratch state for the update kernels.

The flat (``engine="csr"``) variants of vertex insertion and deletion
(:mod:`repro.core.insertion`, :mod:`repro.core.deletion`) are bounded by
allocator traffic, not arithmetic: the object-path kernels build a fresh
``set``/``deque``/``tuple`` cascade on every update.  :class:`UpdateScratch`
replaces all of that with buffers that live as long as the labeling and are
*reused* across updates, so a steady-state update allocates (almost)
nothing:

* **Mark arrays** (:attr:`seen`, :attr:`mark_a`, :attr:`mark_b`) are plain
  int lists indexed by dense vertex id.  Membership is a *generation
  stamp*: ``marks[i] == gen`` means "in the set of generation ``gen``".
  Clearing a set is ``gen = scratch.next_gen()`` — O(1), no writes — and
  distinct generations never collide, so one physical array serves many
  logical sets over time (and even two disjoint sets at once, under two
  different generation values).
* **Cursor buffers** (:attr:`queue`, :attr:`cand`, :attr:`buf_a`,
  :attr:`buf_b`, :attr:`mem_a`, :attr:`mem_b`, :attr:`topo`) are
  preallocated lists written through an explicit cursor (``buf[n] = x;
  n += 1``).  They are never truncated: in CPython ``list.clear()`` /
  ``del lst[:]`` *frees* the backing array, which would defeat reuse, so
  stale entries past the cursor are simply ignored.
* :attr:`counts` backs the local Kahn toposort in deletion.
* **Key cache** (:attr:`keys` guarded by :attr:`key_mark`): level-order
  tags (:meth:`LevelOrder.key <repro.core.order.LevelOrder.key>`) cached
  by labeling id for the duration of one deletion — tags are only
  invalidated by order *insertions* (a relabel), never by ``remove``, so
  one generation stamp makes the cache exact for a whole delete while the
  rebuild loop sorts thousands of candidates by level.

:meth:`begin` sizes every buffer to the labeling's current id capacity
(plus any snapshot's id space) and hands out a fresh generation; kernels
take further generations per sub-phase with :meth:`next_gen`.  Growth only
happens when the id space itself grows — after a warm-up update at a given
size, the buffers are stable objects of stable length (asserted by
``tests/core/test_update_differential.py``).

The scratch deliberately holds no vertex objects beyond the lifetime of
one update (object buffers may pin stale references past their cursors;
:meth:`begin` of the *next* update overwrites them, and nothing reads
past a cursor) and knows nothing about labelings — it attaches to one via
``TOLLabeling.update_scratch()``.
"""

from __future__ import annotations

__all__ = ["UpdateScratch"]

#: Extra slots appended beyond the requested capacity on growth, so a
#: slowly growing graph does not re-extend every buffer on every update.
_HEADROOM = 64


class UpdateScratch:
    """Reusable mark arrays and cursor buffers for one labeling's updates.

    Examples
    --------
    >>> s = UpdateScratch()
    >>> gen = s.begin(4)
    >>> s.mark_a[2] = gen          # put id 2 in this generation's set
    >>> s.mark_a[2] == gen
    True
    >>> s.mark_a[2] == s.next_gen()    # a new generation: empty again
    False
    """

    __slots__ = (
        "generation",
        "seen",
        "mark_a",
        "mark_b",
        "counts",
        "queue",
        "cand",
        "buf_a",
        "buf_b",
        "mem_a",
        "mem_b",
        "topo",
        "keys",
        "key_mark",
    )

    def __init__(self) -> None:
        self.generation = 0
        #: Visited/dedup stamps, keyed by labeling id *or* snapshot id
        #: (one id space per generation — never mixed within one).
        self.seen: list[int] = []
        #: General-purpose stamp arrays keyed by labeling id; insertion
        #: uses them for the Δk sweep's simulated sets, deletion for the
        #: B+(v)/B-(v) membership tests of the stale-witness guard.
        self.mark_a: list[int] = []
        self.mark_b: list[int] = []
        #: In-degree counters for the deletion toposort (Kahn).
        self.counts: list[int] = []
        #: BFS worklist (ids or vertex objects, per phase).
        self.queue: list = []
        #: Candidate accumulator for label (re)builds and sweeps.
        self.cand: list = []
        #: Short-lived copies of inverted-list sets (iterate-while-mutating
        #: safety) and doomed-label accumulators.
        self.buf_a: list = []
        self.buf_b: list = []
        #: Deletion frontier members (B+(v) / B-(v)), live for a whole op.
        self.mem_a: list = []
        self.mem_b: list = []
        #: Toposorted frontier, consumed by the rebuild loop.
        self.topo: list = []
        #: Per-op level-key cache: ``keys[i]`` is valid iff
        #: ``key_mark[i]`` carries the op's key generation.
        self.keys: list[int] = []
        self.key_mark: list[int] = []

    def begin(self, capacity: int) -> int:
        """Size every buffer for *capacity* ids; return a fresh generation.

        Called once at the top of an update with the labeling's interner
        capacity (maxed with any CSR snapshot's id-space size).  Buffers
        only ever grow; after a warm-up op at a given size this is a few
        ``len`` checks and one integer increment.
        """
        if len(self.seen) < capacity:
            grow = capacity + _HEADROOM - len(self.seen)
            pad = [0] * grow
            self.seen.extend(pad)
            self.mark_a.extend(pad)
            self.mark_b.extend(pad)
            self.counts.extend(pad)
            self.queue.extend(pad)
            self.cand.extend(pad)
            self.buf_a.extend(pad)
            self.buf_b.extend(pad)
            self.mem_a.extend(pad)
            self.mem_b.extend(pad)
            self.topo.extend(pad)
            self.keys.extend(pad)
            self.key_mark.extend(pad)
        return self.next_gen()

    def next_gen(self) -> int:
        """Advance to a fresh generation (an O(1) "clear" of every set)."""
        g = self.generation + 1
        self.generation = g
        return g

    def stats(self) -> dict:
        """High-water marks for health introspection.

        Buffers only ever grow, so ``capacity`` (the current buffer
        length) *is* the high-water mark of the id space any update has
        needed; ``generation`` counts logical set clears across the
        scratch's lifetime (a proxy for update sub-phase volume).
        """
        return {
            "capacity": len(self.seen),
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={len(self.seen)}, "
            f"generation={self.generation})"
        )
