"""Diagnostics: label-distribution statistics for a TOL index.

The quality of a TOL index is the distribution of its label-set sizes —
query cost is the size of the two sets probed, memory is their sum, and a
heavy tail means some vertices are expensive to query.  This module
computes the summary a practitioner (or an ablation benchmark) needs to
compare level orders beyond the single ``|L|`` number the paper reports.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable
from dataclasses import dataclass

from .labeling import TOLLabeling

__all__ = ["LabelStats", "labeling_stats", "top_label_holders"]

Vertex = Hashable


@dataclass(frozen=True)
class LabelStats:
    """Summary of a labeling's size distribution.

    Attributes
    ----------
    num_vertices / total_labels:
        Basic sizes (``total_labels`` is the paper's ``|L|``).
    mean / p50 / p90 / p99 / max:
        Statistics of the per-vertex label count ``|Lin(v)| + |Lout(v)|``.
    in_labels / out_labels:
        Totals per side.
    empty_vertices:
        Vertices carrying no labels at all (typical for sources/sinks
        ranked low).
    histogram:
        ``{label_count: vertices_with_that_count}``.
    """

    num_vertices: int
    total_labels: int
    mean: float
    p50: int
    p90: int
    p99: int
    max: int
    in_labels: int
    out_labels: int
    empty_vertices: int
    histogram: dict[int, int]

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"|V|={self.num_vertices} |L|={self.total_labels} "
            f"(in={self.in_labels}, out={self.out_labels}); per-vertex "
            f"mean={self.mean:.2f} p50={self.p50} p90={self.p90} "
            f"p99={self.p99} max={self.max}; "
            f"{self.empty_vertices} label-free vertices"
        )


def _percentile(sorted_values: list[int], fraction: float) -> int:
    if not sorted_values:
        return 0
    position = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[position]


def labeling_stats(labeling: TOLLabeling) -> LabelStats:
    """Compute :class:`LabelStats` for *labeling*."""
    live_ids = list(labeling.interner.ids.values())
    counts = sorted(
        len(labeling.in_ids[i]) + len(labeling.out_ids[i]) for i in live_ids
    )
    total_in = sum(len(labeling.in_ids[i]) for i in live_ids)
    total_out = sum(len(labeling.out_ids[i]) for i in live_ids)
    n = len(counts)
    return LabelStats(
        num_vertices=n,
        total_labels=total_in + total_out,
        mean=(total_in + total_out) / n if n else 0.0,
        p50=_percentile(counts, 0.50),
        p90=_percentile(counts, 0.90),
        p99=_percentile(counts, 0.99),
        max=counts[-1] if counts else 0,
        in_labels=total_in,
        out_labels=total_out,
        empty_vertices=sum(1 for c in counts if c == 0),
        histogram=dict(Counter(counts)),
    )


def top_label_holders(
    labeling: TOLLabeling, k: int = 10
) -> list[tuple[Vertex, int]]:
    """The *k* vertices with the largest label sets (the query hot spots)."""
    ranked = sorted(
        (
            (v, len(labeling.in_ids[i]) + len(labeling.out_ids[i]))
            for v, i in labeling.interner.items()
        ),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return ranked[:k]
