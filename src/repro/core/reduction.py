"""Iterative label reduction (Section 6).

A TOL index's quality is decided entirely by its level order, and the
update algorithms of Section 5 can *re-position* a vertex: delete it
(Algorithm 4), then re-insert it at the size-minimizing level (Algorithms
1–3).  Because the re-insertion considers the vertex's old position among
the candidates, one delete/re-insert round trip can never grow the index —
and on indices built from weak orders (TF's topological order, DL's degree
order) it shrinks them dramatically (Table 4 of the paper reports up to
96% size reduction for TF).

:func:`reduce_labels` sweeps every vertex once per round; rounds repeat
until a fixpoint or *max_rounds*.  The function reports per-round sizes so
benchmarks can chart convergence.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..graph.digraph import DiGraph
from ..obs import trace
from .deletion import delete_vertex
from .insertion import insert_vertex
from .labeling import TOLLabeling

__all__ = ["ReductionReport", "reduce_labels"]

Vertex = Hashable


@dataclass
class ReductionReport:
    """Outcome of a label-reduction run.

    Attributes
    ----------
    initial_size:
        ``|L|`` before any reduction.
    round_sizes:
        ``|L|`` after each completed round.
    vertices_moved:
        How many delete/re-insert round trips changed a vertex's level.
    """

    initial_size: int
    round_sizes: list[int] = field(default_factory=list)
    vertices_moved: int = 0

    @property
    def final_size(self) -> int:
        """``|L|`` after the last round (initial size if none ran)."""
        return self.round_sizes[-1] if self.round_sizes else self.initial_size

    @property
    def reduction(self) -> int:
        """``ΔL``: absolute number of labels removed."""
        return self.initial_size - self.final_size

    @property
    def reduction_ratio(self) -> float:
        """``ΔL / |L|`` as in Table 4 (0.0 for an empty initial index)."""
        if self.initial_size == 0:
            return 0.0
        return self.reduction / self.initial_size


def reduce_labels(
    graph: DiGraph,
    labeling: TOLLabeling,
    *,
    max_rounds: int = 1,
    sweep: Optional[Sequence[Vertex]] = None,
    on_vertex: Optional[Callable[[Vertex, int], None]] = None,
) -> ReductionReport:
    """Shrink *labeling* by re-positioning every vertex (Section 6).

    Parameters
    ----------
    graph:
        The indexed DAG; temporarily mutated (each vertex is removed and
        re-added) but identical to its input state on return.
    labeling:
        The live index; improved in place.
    max_rounds:
        Upper bound on full sweeps.  A round that moves no vertex stops
        the loop early.
    sweep:
        Optional explicit vertex visiting order.  The default visits
        vertices from the lowest level up — low-level vertices are the
        likeliest to be badly placed by a weak initial order, and moving
        them first lets later candidates see the improved landscape.
    on_vertex:
        Optional callback ``(vertex, current_size)`` after each round
        trip, for progress reporting in long benchmark runs.

    Returns
    -------
    ReductionReport
    """
    report = ReductionReport(initial_size=labeling.size())
    # One CSR packing pass serves every round trip of every round: each
    # delete/re-insert restores the graph to the snapshotted state before
    # insert_vertex runs (the snapshot reuse contract, docs/api.md).
    snap = graph.csr()
    with trace.span("tol.reduction") as sp:
        if sp:
            sp.set("initial_size", report.initial_size)
            sp.set("max_rounds", max_rounds)
        for round_no in range(1, max_rounds + 1):
            moved = 0
            order = (
                list(sweep) if sweep is not None else list(labeling.order)[::-1]
            )
            for v in order:
                ins = snap.in_neighbors(v)
                outs = snap.out_neighbors(v)
                anchor_above = labeling.order.predecessor(v)
                anchor_below = labeling.order.successor(v)
                delete_vertex(graph, labeling, v, snapshot=snap)
                graph.add_vertex_if_absent(v)
                for u in ins:
                    graph.add_edge(u, v)
                for w in outs:
                    graph.add_edge(v, w)
                insert_vertex(graph, labeling, v, snapshot=snap)
                new_above = labeling.order.predecessor(v)
                new_below = labeling.order.successor(v)
                if (new_above, new_below) != (anchor_above, anchor_below):
                    moved += 1
                if on_vertex is not None:
                    on_vertex(v, labeling.size())
            report.round_sizes.append(labeling.size())
            report.vertices_moved += moved
            # The per-round |L| trajectory of Table 4 / Figure "conv".
            trace.event(
                "tol.reduction.round",
                round=round_no,
                size=report.round_sizes[-1],
                moved=moved,
            )
            if moved == 0:
                break
        if sp:
            sp.set("rounds", len(report.round_sizes))
            sp.set("final_size", report.final_size)
            sp.set("vertices_moved", report.vertices_moved)
    return report
