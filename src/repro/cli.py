"""Command-line interface: build, persist, query and update TOL indices.

Usage examples::

    python -m repro generate citeseerx graph.txt --vertices 2000
    python -m repro build graph.txt index.tolx --order bu
    python -m repro query index.tolx 17 1291 5 880
    python -m repro update index.tolx --insert 99999 --in 17 --out 42
    python -m repro stats index.tolx
    python -m repro reduce index.tolx --rounds 2
    python -m repro trace-generate graph.txt ops.trace --ops 500
    python -m repro trace-replay graph.txt ops.trace --methods BU Dagger BFS
    python -m repro serve-replay graph.txt ops.trace --readers 8
    python -m repro serve-replay graph.txt ops.trace --metrics-out metrics.prom
    python -m repro serve-replay graph.txt ops.trace --wal state/ --fsync batch
    python -m repro serve graph.txt --port 7421 --max-pending 4096
    python -m repro loadgen graph.txt --spawn --clients 4 --duration 5
    python -m repro recover state/ --checkpoint
    python -m repro metrics graph.txt ops.trace --format json --events ops.jsonl
    python -m repro experiments --only fig7 table4 --chart

Vertex tokens that parse as integers are treated as integers (matching the
edge-list file format); everything else stays a string.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence
from typing import Optional

from . import datasets
from .bench.experiments import ALL_EXPERIMENTS
from .core.index import TOLIndex
from .core.orders import ORDER_STRATEGIES
from .core.serialize import load_index, save_index
from .core.stats import labeling_stats, top_label_holders
from .errors import ReproError, SerializationError, UnknownVertexError
from .graph.io import read_edge_list, write_edge_list

__all__ = ["main", "build_parser"]

#: Distinct nonzero exit codes for the two error families a scripted
#: caller most wants to tell apart (generic ReproError stays 1, argparse
#: / usage errors stay 2).
EXIT_UNKNOWN_VERTEX = 3
EXIT_SERIALIZATION = 4


def _vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _vertex_list(text: Optional[str]):
    if not text:
        return []
    return [_vertex(tok) for tok in text.split(",") if tok]


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def cmd_generate(args: argparse.Namespace) -> int:
    """`repro generate`: write a dataset stand-in as an edge-list file."""
    graph = datasets.load(args.dataset, num_vertices=args.vertices, seed=args.seed)
    write_edge_list(
        graph, args.output,
        header=f"dataset={args.dataset} vertices={args.vertices} seed={args.seed}",
    )
    print(
        f"wrote {args.output}: |V|={graph.num_vertices} |E|={graph.num_edges} "
        f"(stand-in for {args.dataset})"
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """`repro build`: construct and save a TOL index for a graph file."""
    graph = read_edge_list(args.graph)
    start = time.perf_counter()
    index = TOLIndex.build(graph, order=args.order)
    elapsed = time.perf_counter() - start
    save_index(index, args.index, format=args.format)
    stats = labeling_stats(index.labeling)
    print(f"built {args.order} index in {elapsed:.2f}s -> {args.index}")
    print(stats.render())
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """`repro query`: answer (source, target) pairs from a saved index."""
    if len(args.vertices) % 2:
        print("error: query vertices must come in (source, target) pairs",
              file=sys.stderr)
        return 2
    index = load_index(args.index)
    pairs = [
        (_vertex(args.vertices[i]), _vertex(args.vertices[i + 1]))
        for i in range(0, len(args.vertices), 2)
    ]
    exit_code = 0
    for s, t in pairs:
        try:
            verdict = index.query(s, t)
        except UnknownVertexError as exc:
            print(f"{s} -> {t}: error: {exc}", file=sys.stderr)
            exit_code = EXIT_UNKNOWN_VERTEX
            continue
        except ReproError as exc:
            print(f"{s} -> {t}: error: {exc}", file=sys.stderr)
            exit_code = exit_code or 1
            continue
        suffix = ""
        if args.witness:
            suffix = f"  (witness: {index.witness(s, t)})"
        print(f"{s} -> {t}: {'reachable' if verdict else 'unreachable'}{suffix}")
    return exit_code


def cmd_update(args: argparse.Namespace) -> int:
    """`repro update`: insert/delete vertices in a saved index, in place."""
    index = load_index(args.index)
    changed = False
    if args.insert is not None:
        vertex = _vertex(args.insert)
        index.insert_vertex(
            vertex,
            in_neighbors=_vertex_list(args.in_neighbors),
            out_neighbors=_vertex_list(args.out_neighbors),
        )
        print(f"inserted {vertex!r}; index size now {index.size()} labels")
        changed = True
    for victim in args.delete or []:
        vertex = _vertex(victim)
        index.delete_vertex(vertex)
        print(f"deleted {vertex!r}; index size now {index.size()} labels")
        changed = True
    if not changed:
        print("nothing to do: pass --insert and/or --delete", file=sys.stderr)
        return 2
    save_index(index, args.index)
    print(f"saved {args.index}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """`repro stats`: label-distribution diagnostics of a saved index."""
    index = load_index(args.index)
    stats = labeling_stats(index.labeling)
    print(f"{args.index}: |V|={index.num_vertices} |E|={index.num_edges}")
    print(stats.render())
    print("heaviest vertices:")
    for v, count in top_label_holders(index.labeling, k=args.top):
        print(f"  {v!r}: {count} labels")
    return 0


def cmd_reduce(args: argparse.Namespace) -> int:
    """`repro reduce`: run Section-6 label reduction on a saved index."""
    index = load_index(args.index)
    before = index.size()
    start = time.perf_counter()
    report = index.reduce_labels(max_rounds=args.rounds)
    elapsed = time.perf_counter() - start
    save_index(index, args.index)
    print(
        f"reduced {before} -> {report.final_size} labels "
        f"({report.reduction_ratio:.1%} saved, {report.vertices_moved} vertices "
        f"moved) in {elapsed:.1f}s; saved {args.index}"
    )
    return 0


def cmd_trace_generate(args: argparse.Namespace) -> int:
    """`repro trace-generate`: synthesize a mutation/query trace file."""
    from .bench.trace import generate_trace, write_trace

    graph = read_edge_list(args.graph)
    trace = generate_trace(
        graph, args.ops, seed=args.seed, query_fraction=args.query_fraction
    )
    write_trace(trace, args.output)
    print(f"wrote {args.output}: {trace.counts()}")
    return 0


def cmd_trace_replay(args: argparse.Namespace) -> int:
    """`repro trace-replay`: replay a trace against chosen methods."""
    from .bench.harness import METHODS, build_method
    from .bench.trace import read_trace, replay_trace

    graph = read_edge_list(args.graph)
    trace = read_trace(args.trace)
    reports = {}
    for name in args.methods:
        if name not in METHODS:
            print(f"unknown method {name!r}; known: {', '.join(METHODS)}",
                  file=sys.stderr)
            return 2
        reports[name] = replay_trace(build_method(name, graph), trace)

    answers = {name: r.answers for name, r in reports.items()}
    reference = next(iter(answers.values()))
    agree = all(a == reference for a in answers.values())
    print(f"replayed {len(trace)} ops ({len(reference)} queries); "
          f"answers {'AGREE' if agree else 'DISAGREE'} across methods")
    header = f"{'op':7s}" + "".join(f" {name:>12s}" for name in reports)
    print(header)
    for kind in ("addv", "delv", "adde", "dele", "query"):
        row = f"{kind:7s}"
        for report in reports.values():
            row += f" {report.seconds[kind] * 1e3:10.2f}ms"
        print(row)
    return 0 if agree else 1


def _format_metric(value, *, latency: bool = False) -> str:
    """Format one snapshot value; latencies get µs/ms units."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if latency:
            if value < 1e-3:
                return f"{value * 1e6:.1f}µs"
            if value < 1.0:
                return f"{value * 1e3:.2f}ms"
            return f"{value:.2f}s"
        return f"{value:.3g}"
    return str(value)


def render_snapshot(snapshot: dict) -> str:
    """Render a :meth:`ReachabilityService.snapshot` dict as aligned text."""
    lines = []
    for key in sorted(snapshot):
        value = snapshot[key]
        latency = "latency" in key
        if isinstance(value, dict):
            inner = "  ".join(
                f"{k}={_format_metric(v, latency=latency and k != 'count')}"
                for k, v in value.items()
            )
            lines.append(f"  {key:20s} {inner}")
        else:
            lines.append(f"  {key:20s} {_format_metric(value)}")
    return "\n".join(lines)


def cmd_serve_replay(args: argparse.Namespace) -> int:
    """`repro serve-replay`: drive a trace through the concurrent service.

    The trace's mutations go through one writer thread (batched and
    coalesced by the service's update queue); its queries are replayed by
    ``--readers`` concurrent reader threads, each starting from a
    different offset so the cache sees a mixed stream.
    """
    import threading

    from .bench.trace import read_trace
    from .obs import trace as obs_trace
    from .obs.export import write_metrics
    from .obs.registry import MetricRegistry
    from .service.server import ReachabilityService
    from .core.ops import UpdateOp

    if args.readers < 1:
        print(f"error: --readers must be >= 1, got {args.readers}",
              file=sys.stderr)
        return 2
    if args.rounds < 1:
        print(f"error: --rounds must be >= 1, got {args.rounds}",
              file=sys.stderr)
        return 2
    if args.flush_threshold < 1:
        print(f"error: --flush-threshold must be >= 1, "
              f"got {args.flush_threshold}", file=sys.stderr)
        return 2

    graph = read_edge_list(args.graph)
    trace = read_trace(args.trace)
    mutations = [op for op in trace if op.kind != "query"]
    queries = [(op.tail, op.head) for op in trace if op.kind == "query"]
    if not queries:
        print("error: trace contains no query ops; generate one with a "
              "nonzero --query-fraction", file=sys.stderr)
        return 2

    # --metrics-out implies core-span tracing for the whole replay
    # (index build included), routed into the service's own registry so
    # the exported file is one cross-layer snapshot.
    durability = None
    if args.wal:
        from .service.durability import DurabilityManager

        durability = DurabilityManager(
            args.wal,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )

    registry = MetricRegistry() if args.metrics_out else None
    if registry is not None:
        obs_trace.enable(registry)
    restore_handlers = {}
    try:
        service = ReachabilityService(
            graph,
            cache_size=args.cache_size,
            flush_threshold=args.flush_threshold,
            registry=registry,
            durability=durability,
        )

        if args.metrics_out:
            # An interrupted replay should still leave its metrics
            # artifact: flush the registry on SIGINT/SIGTERM, then exit
            # with the conventional 128+signum.  os._exit because the
            # reader threads are mid-replay and non-daemon — unwinding
            # the main thread alone would leave the process hanging.
            import os
            import signal

            def _flush_and_exit(signum, frame):
                try:
                    fmt = write_metrics(service.registry, args.metrics_out)
                    print(
                        f"\ninterrupted by signal {signum}; wrote {fmt} "
                        f"metrics to {args.metrics_out}",
                        file=sys.stderr, flush=True,
                    )
                finally:
                    os._exit(128 + signum)

            for sig in (signal.SIGINT, signal.SIGTERM):
                restore_handlers[sig] = signal.signal(sig, _flush_and_exit)

        unknown = [0] * args.readers

        def reader(idx: int) -> None:
            offset = (idx * 7919) % len(queries)  # decorrelate readers
            for _ in range(args.rounds):
                for i in range(len(queries)):
                    s, t = queries[(offset + i) % len(queries)]
                    try:
                        service.query(s, t)
                    except (ReproError, KeyError):
                        # The writer raced us and removed an endpoint.
                        unknown[idx] += 1

        def writer() -> None:
            for op in mutations:
                service.apply(UpdateOp.from_trace_op(op))
            service.flush()

        threads = [
            threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
            for i in range(args.readers)
        ]
        threads.append(threading.Thread(target=writer, name="writer"))
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    finally:
        if restore_handlers:
            import signal

            for sig, handler in restore_handlers.items():
                signal.signal(sig, handler)
        if registry is not None:
            obs_trace.disable()

    total_queries = args.readers * args.rounds * len(queries)
    print(
        f"served {total_queries} queries ({args.readers} readers x "
        f"{args.rounds} rounds x {len(queries)}) and {len(mutations)} "
        f"mutations in {elapsed:.2f}s "
        f"({total_queries / elapsed:,.0f} queries/s)"
    )
    if sum(unknown):
        print(f"  {sum(unknown)} queries hit a concurrently-removed vertex")
    if durability is not None:
        wal_stats = durability.stats()
        durability.close()
        print(
            f"  wal: {wal_stats['records_appended']} records appended, "
            f"{wal_stats['fsyncs']} fsyncs, "
            f"{wal_stats['checkpoints']} checkpoints "
            f"(covered through seq {wal_stats['checkpointed_seq']}); "
            f"recover with: repro recover {args.wal}"
        )
    print("metrics snapshot:")
    print(render_snapshot(service.snapshot()))
    if args.metrics_out:
        fmt = write_metrics(service.registry, args.metrics_out)
        print(f"wrote {fmt} metrics to {args.metrics_out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """`repro serve`: expose a graph over the TCP wire protocol.

    Builds a :class:`ReachabilityService` over the edge-list file
    (optionally crash-safe via ``--wal``) and fronts it with the asyncio
    :class:`~repro.net.server.ReachabilityServer` — cross-connection
    query batching, admission control (``--max-pending``), structured
    error replies, and graceful drain on SIGTERM/SIGINT.  See
    docs/network.md for the protocol.

    Two extensions (docs/scaling.md):

    * ``--snapshot FILE.tolf`` boots the index from a pack written by
      `repro pack` — no rebuild, no WAL replay;
    * ``--workers N`` serves in multi-process mode: N reader processes
      answer queries from a shared-memory frozen snapshot while this
      process applies updates and republishes.
    """
    import asyncio
    import signal

    from .net.portfile import remove_port_file, write_port_file
    from .net.protocol import PROTOCOL_VERSION
    from .net.server import ReachabilityServer
    from .obs import trace as obs_trace
    from .obs.export import write_metrics
    from .obs.flight import FlightRecorder
    from .obs.health import bind_health_gauges
    from .obs.registry import MetricRegistry
    from .obs.slowlog import SlowQueryLog
    from .service.server import ReachabilityService

    if not args.graph and not args.snapshot:
        print("error: pass a graph edge-list file or --snapshot FILE.tolf",
              file=sys.stderr)
        return 2
    if args.port_file and _port_file_busy(args.port_file):
        return 2
    if args.workers:
        return _cmd_serve_multiprocess(args)
    durability = None
    if args.wal:
        from .service.durability import DurabilityManager

        durability = DurabilityManager(
            args.wal,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
    registry = MetricRegistry()
    if args.metrics_out:
        obs_trace.enable(registry)
    flight = None
    if args.flight_dir:
        flight = FlightRecorder(
            registry,
            capacity=args.flight_capacity,
            interval=args.flight_interval,
            dump_dir=args.flight_dir,
        )
    slowlog = None
    if args.slowlog:
        slowlog = SlowQueryLog(
            args.slowlog,
            threshold_ms=args.slow_ms,
            sample_rate=args.slowlog_sample,
        )
    exit_code = 0
    try:
        service_kwargs = dict(
            cache_size=args.cache_size,
            flush_threshold=args.flush_threshold,
            order=args.order,
            registry=registry,
            durability=durability,
            flight=flight,
        )
        if args.snapshot:
            from .core.serialize import (
                load_pack,
                reachability_index_from_pack,
            )

            frozen, meta = load_pack(args.snapshot)
            index = reachability_index_from_pack(
                frozen, meta, order=args.order
            )
            service = ReachabilityService(index=index, **service_kwargs)
        else:
            service = ReachabilityService(
                read_edge_list(args.graph), **service_kwargs
            )
        bind_health_gauges(registry, service)
        source = args.snapshot or args.graph

        server = ReachabilityServer(
            service,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            max_batch=args.max_batch,
            batch_delay=args.batch_delay,
            drain_timeout=args.drain_timeout,
            slowlog=slowlog,
        )
        if flight is not None:
            flight.start()

        async def run() -> None:
            await server.start()
            loop = asyncio.get_event_loop()
            if flight is not None:
                # SIGQUIT (ctrl-\) dumps the metric timeline without
                # stopping the server — the "what just happened" probe.
                try:
                    loop.add_signal_handler(
                        signal.SIGQUIT,
                        lambda: flight.auto_dump("sigquit"),
                    )
                except (NotImplementedError, RuntimeError, AttributeError):
                    pass
            print(
                f"serving {source} on {server.host}:{server.port} "
                f"(protocol v{PROTOCOL_VERSION}, "
                f"|V|={service.num_vertices}, "
                f"|E|={service.num_edges}); SIGTERM drains gracefully",
                flush=True,
            )
            if args.port_file:
                write_port_file(args.port_file, server.port)
            await server.serve_forever()

        asyncio.run(run())
    finally:
        if args.port_file:
            remove_port_file(args.port_file)
        if flight is not None:
            flight.stop()
        if slowlog is not None:
            slowlog.close()
        if args.metrics_out:
            obs_trace.disable()
        if durability is not None:
            durability.close()
    print("drained; final metrics snapshot:")
    print(render_snapshot(service.snapshot()))
    if slowlog is not None:
        slow_stats = slowlog.stats()
        print(
            f"slow-query log: {slow_stats['written']} lines written "
            f"({slow_stats['seen']} requests seen, threshold "
            f"{slow_stats['threshold_ms']}ms) -> {args.slowlog}"
        )
    if args.metrics_out:
        fmt = write_metrics(registry, args.metrics_out)
        print(f"wrote {fmt} metrics to {args.metrics_out}")
    return exit_code


def _port_file_busy(path: str) -> bool:
    """Refuse to clobber a port file whose owning server still runs."""
    from .net.portfile import read_port_file
    from .shm.control import pid_alive

    port, pid = read_port_file(path)
    if pid is not None and pid_alive(pid):
        print(
            f"error: port file {path} is owned by live pid {pid} "
            f"(port {port}); is another server already running?",
            file=sys.stderr,
        )
        return True
    return False


def _cmd_serve_multiprocess(args: argparse.Namespace) -> int:
    """The ``--workers N`` branch of `repro serve`.

    This process becomes a pure supervisor (see repro.net.multiproc):
    the service itself is built — or recovered from ``--wal`` — inside
    the ``serve-writer`` subprocess, so a writer crash costs a respawn,
    not the assembly.
    """
    from .net.multiproc import MultiProcessServer
    from .net.protocol import PROTOCOL_VERSION

    writer_args = []
    if args.graph:
        writer_args += ["--graph", args.graph]
    if args.snapshot:
        writer_args += ["--snapshot", args.snapshot]
    if args.wal:
        writer_args += [
            "--wal", args.wal,
            "--fsync", args.fsync,
            "--checkpoint-every", str(args.checkpoint_every),
        ]
    writer_args += [
        "--order", args.order,
        "--cache-size", str(args.cache_size),
        "--flush-threshold", str(args.flush_threshold),
        "--max-pending", str(args.max_pending),
        "--max-batch", str(args.max_batch),
        "--batch-delay", str(args.batch_delay),
        "--drain-timeout", str(args.drain_timeout),
        "--publish-interval", str(args.publish_interval),
        "--grace-period", str(args.grace_period),
    ]
    if args.slowlog:
        writer_args += ["--slowlog", args.slowlog,
                        "--slow-ms", str(args.slow_ms)]
    if args.flight_dir:
        writer_args += ["--flight-dir", args.flight_dir]
    if args.metrics_out:
        writer_args += ["--metrics-out", args.metrics_out]

    mp = MultiProcessServer(
        workers=args.workers,
        writer_args=writer_args,
        host=args.host,
        port=args.port,
        max_staleness=args.max_staleness,
        forward_timeout=args.forward_timeout,
    )
    source = args.snapshot or args.graph
    print(
        f"serving {source} on {args.host}:{mp.port} "
        f"(protocol v{PROTOCOL_VERSION}, {args.workers} reader workers, "
        f"writer subprocess on 127.0.0.1:{mp.writer_port}); "
        f"SIGTERM drains gracefully",
        flush=True,
    )
    exit_code = mp.run(port_file=args.port_file)
    print(f"drained; worker restarts={mp.restarts()}, "
          f"writer restarts={mp.writer_restarts()}")
    return exit_code


def cmd_serve_writer(args: argparse.Namespace) -> int:
    """Hidden: writer-process entry point spawned by `repro serve --workers`.

    Not for direct use — it expects an inherited listening-socket fd and
    a live shared-memory control block owned by the supervisor (see
    repro.net.writerproc).  Recovers from ``--wal`` when the directory
    already holds state, which is exactly what a post-crash respawn sees.
    """
    from .net.writerproc import run_writer_process

    return run_writer_process(
        listen_fd=args.fd,
        control_name=args.control,
        graph=args.graph,
        snapshot=args.snapshot,
        wal=args.wal,
        fsync=args.fsync,
        checkpoint_every=args.checkpoint_every,
        publish_interval=args.publish_interval,
        grace_period=args.grace_period,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        batch_delay=args.batch_delay,
        drain_timeout=args.drain_timeout,
        slowlog_path=args.slowlog,
        slow_ms=args.slow_ms,
        flight_dir=args.flight_dir,
        metrics_out=args.metrics_out,
        cache_size=args.cache_size,
        flush_threshold=args.flush_threshold,
        order=args.order,
    )


def cmd_shm_janitor(args: argparse.Namespace) -> int:
    """`repro shm-janitor`: scan for / reap orphaned shared-memory segments.

    Every `repro serve --workers` boot runs the same reap automatically;
    this command exists for operators cleaning up after SIGKILLed runs
    without starting a server, and for CI leak assertions
    (``--scan`` exits 1 when orphans exist).
    """
    import json as _json

    from .shm.janitor import reap_orphans, scan_orphans

    if args.scan:
        orphans = scan_orphans(min_age=args.min_age)
        print(_json.dumps(orphans, indent=2, sort_keys=True))
        return 1 if orphans else 0
    reaped = reap_orphans(min_age=args.min_age)
    total = sum(len(v) for v in reaped.values())
    print(f"reaped {total} segment(s) from {len(reaped)} orphaned "
          f"server(s)")
    for base, names in sorted(reaped.items()):
        print(f"  {base}: {', '.join(names)}")
    return 0


def cmd_serve_worker(args: argparse.Namespace) -> int:
    """Hidden: reader-worker entry point spawned by `repro serve --workers`.

    Not for direct use — it expects an inherited listening-socket fd and
    a live shared-memory control block (see repro.net.multiproc).
    """
    from .net.worker import run_reader_worker

    return run_reader_worker(
        listen_fd=args.fd,
        control_name=args.control,
        writer_host=args.writer_host,
        writer_port=args.writer_port,
        worker_id=args.worker_id,
        max_staleness=args.max_staleness,
        forward_timeout=args.forward_timeout,
    )


def cmd_pack(args: argparse.Namespace) -> int:
    """`repro pack`: freeze a graph's index into an mmap-able .tolf pack.

    Builds the :class:`ReachabilityIndex` (SCC condensation + TOL
    labels), freezes it to flat CSR buffers, and writes the TOLF pack —
    the zero-copy snapshot format `repro serve --snapshot` boots from
    without rebuilding and `repro serve --workers` publishes through
    shared memory.  The pack carries the original graph alongside the
    labels so the booted server still applies updates.
    """
    from .core.frozen import freeze
    from .core.serialize import graph_to_dict, hashable_vertex, save_pack
    from .core.index import ReachabilityIndex

    graph = read_edge_list(args.graph)
    start = time.perf_counter()
    index = ReachabilityIndex(graph, order=args.order)
    build_s = time.perf_counter() - start
    frozen = freeze(index.tol)
    graph_doc = graph_to_dict(index.condensation.graph)
    # component_of aligned to the vertex table, so the pack restores the
    # condensation with identical component ids.
    hashables = [hashable_vertex(v) for v in graph_doc["vertices"]]
    meta = {
        "vertices": graph_doc["vertices"],
        "graph_edges": graph_doc["edges"],
        "component_of": [
            index.condensation.component_of[v] for v in hashables
        ],
        "epoch": 0,
        "order": args.order,
        "source": str(args.graph),
    }
    save_pack(args.output, frozen, meta)
    size = os.path.getsize(args.output)
    print(
        f"packed {args.graph} -> {args.output}: "
        f"|V|={graph.num_vertices} |E|={graph.num_edges} "
        f"|L|={frozen.size()} ({size:,} bytes, built in {build_s:.2f}s)"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """`repro loadgen`: drive client processes against a net server.

    Either targets a running server (``--host``/``--port``) or spawns
    one itself (``--spawn``, which also exercises the SIGTERM drain on
    the way out).  Writes the qps/latency headline to ``--output``
    (default ``BENCH_serve.json``).
    """
    from .net.loadgen import run_loadgen, spawned_server, write_bench_json

    if args.spawn and args.port is not None:
        print("error: pass either --spawn or --port, not both",
              file=sys.stderr)
        return 2
    if not args.spawn and args.port is None:
        print("error: pass --port (running server) or --spawn",
              file=sys.stderr)
        return 2
    if args.chaos and args.spawn and not args.workers:
        print("error: --chaos needs a multi-process server "
              "(--spawn --workers N)", file=sys.stderr)
        return 2
    duration = 1.5 if args.quick else args.duration
    graph = read_edge_list(args.graph)

    def drive(host: str, port: int) -> dict:
        return run_loadgen(
            host, port, graph,
            clients=args.clients,
            duration=duration,
            batch=args.batch,
            skew=args.skew,
            seed=args.seed,
            verify=args.verify,
            chaos=args.chaos,
        )

    if args.spawn:
        server_args = [
            "--max-pending", str(args.server_max_pending),
            "--batch-delay", str(args.server_batch_delay),
        ]
        if args.server_wal:
            server_args += ["--wal", args.server_wal]
        if args.server_flight_dir:
            server_args += ["--flight-dir", args.server_flight_dir]
        workers_args = (
            ["--workers", str(args.workers)] if args.workers else []
        )
        single = None
        if args.compare_single and args.workers:
            # Baseline first: same graph, same load, classic
            # single-process server.
            with spawned_server(
                args.graph, server_args=server_args
            ) as server:
                single = drive(server.host, server.port)
                server.terminate()
            print(
                f"single-process baseline: {single['qps']:,.0f} qps",
                flush=True,
            )
        with spawned_server(
            args.graph, server_args=server_args + workers_args
        ) as server:
            result = drive(server.host, server.port)
            exit_code = server.terminate()
            result["server_exit_code"] = exit_code
            if exit_code != 0:
                print(f"warning: server exited with code {exit_code}",
                      file=sys.stderr)
        if args.workers:
            result["workers"] = args.workers
        if single is not None:
            result["single_process"] = {
                "qps": single["qps"],
                "latency_ms": single["latency_ms"],
                "totals": single["totals"],
            }
            result["speedup_vs_single"] = (
                round(result["qps"] / single["qps"], 3)
                if single["qps"] else None
            )
    else:
        result = drive(args.host, args.port)
        if args.workers:
            result["workers"] = args.workers

    totals = result["totals"]
    lat = result["latency_ms"]
    lat_text = (
        f"p50 {lat['p50']:.2f}ms  p99 {lat['p99']:.2f}ms"
        if lat else "no admitted requests"
    )
    print(
        f"{result['clients']} client processes x {result['duration_s']}s: "
        f"{totals['queries']} queries, {result['qps']:,.0f} qps aggregate, "
        f"{lat_text}"
    )
    availability = result.get("availability")
    avail_text = (
        f"{availability:.4%} available" if availability is not None
        else "availability n/a"
    )
    print(
        f"  shed {totals['shed']} requests, {totals['errors']} errors, "
        f"{totals.get('unavailable', 0)} unavailable ({avail_text}), "
        f"{totals['degraded_replies']} degraded replies"
        + (f", {totals.get('stale_replies', 0)} stale replies"
           if totals.get("stale_replies") else "")
        + (f", {totals['verify_failures']} oracle disagreements"
           if args.verify else "")
    )
    chaos = result.get("chaos")
    if chaos is not None:
        if chaos.get("error"):
            print(f"  chaos {chaos['mode']}: FAILED — {chaos['error']}",
                  file=sys.stderr)
        else:
            ttr = chaos.get("time_to_recovery_s")
            rate = chaos.get("error_rate_during_outage")
            print(
                f"  chaos {chaos['mode']}: killed pid "
                f"{chaos.get('killed_pid')}, "
                + (f"recovered in {ttr:.2f}s" if ttr is not None
                   else "NOT RECOVERED")
                + f"; outage error rate "
                + (f"{rate:.2%}" if rate is not None else "n/a")
                + f" ({chaos.get('outage_errors', 0)}/"
                  f"{chaos.get('outage_requests', 0)} requests)"
            )
    speedup = result.get("speedup_vs_single")
    if speedup is not None:
        print(
            f"  speedup vs single process: {speedup:.2f}x "
            f"({result['workers']} workers)"
        )
    if args.output:
        path = write_bench_json(result, args.output)
        print(f"wrote {path}")
    if args.verify and totals["verify_failures"]:
        print("error: admitted answers disagreed with the BFS oracle",
              file=sys.stderr)
        return 1
    if args.expect_shed and totals["shed"] == 0:
        print("error: --expect-shed was set but nothing was shed",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        if speedup is None:
            print("error: --min-speedup needs --workers with "
                  "--compare-single", file=sys.stderr)
            return 2
        if speedup < args.min_speedup:
            print(
                f"error: speedup {speedup:.2f}x is below the "
                f"--min-speedup {args.min_speedup}x gate",
                file=sys.stderr,
            )
            return 1
    if args.chaos:
        if chaos is None or chaos.get("error"):
            print("error: the chaos leg did not run", file=sys.stderr)
            return 1
        if not chaos.get("recovered"):
            print("error: the writer never recovered after the chaos "
                  "kill", file=sys.stderr)
            return 1
        ttr = chaos.get("time_to_recovery_s")
        if args.chaos_max_recovery_s is not None and (
            ttr is None or ttr > args.chaos_max_recovery_s
        ):
            print(
                f"error: recovery took {ttr}s, above the "
                f"--chaos-max-recovery-s {args.chaos_max_recovery_s} gate",
                file=sys.stderr,
            )
            return 1
        rate = chaos.get("error_rate_during_outage")
        if args.chaos_max_error_rate is not None and (
            rate is not None and rate > args.chaos_max_error_rate
        ):
            print(
                f"error: outage error rate {rate:.2%} is above the "
                f"--chaos-max-error-rate {args.chaos_max_error_rate} gate",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """`repro recover`: rebuild serving state from a durability directory.

    Loads the newest valid checkpoint, replays the WAL suffix (truncating
    any torn tail), rebuilds the index from the recovered graph and runs
    the sampled Definition-1 self-audit.  Exit code 1 means the audit
    failed — the state recovered but the rebuilt index disagrees with
    BFS, which should never happen and warrants a bug report.
    """
    from .service.server import ReachabilityService

    start = time.perf_counter()
    service = ReachabilityService.recover(
        args.directory,
        fsync=args.fsync,
        checkpoint_every=args.checkpoint_every,
    )
    elapsed = time.perf_counter() - start
    print(f"{service.last_recovery} in {elapsed:.2f}s")
    healthy = service.self_audit(args.audit_samples)
    print(
        "definition-1 self-audit: "
        + ("PASS" if healthy else "FAIL (index disagrees with BFS)")
    )
    if args.checkpoint:
        path = service.checkpoint()
        print(f"checkpoint written: {path}")
    service.durability.close()
    return 0 if healthy else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    """`repro metrics`: export a metric registry — replayed or live.

    Two modes:

    * **Replay** (positional ``graph trace``): single-threaded replay of
      a trace through a :class:`ReachabilityService` with core-span
      tracing enabled from *before* index construction — so the exported
      registry carries the whole telemetry story in one snapshot: the
      `tol.build` span, every `tol.insert`/`tol.delete` with Δk-sweep
      and repair-frontier sizes, the optional `tol.reduction` rounds,
      cache hit-rate and query-latency percentiles.
    * **Live scrape** (``--connect HOST:PORT``): fetch the running
      server's registry snapshot over the ``stats`` wire op and render
      it — counters, gauges (including the ``health.*`` family), and
      histogram summaries.

    See docs/observability.md for the metric names and span taxonomy.
    """
    from .bench.trace import read_trace
    from .obs import JsonlSink, render_json, render_prometheus, trace
    from .obs.registry import MetricRegistry
    from .service.server import ReachabilityService
    from .core.ops import UpdateOp

    if args.connect:
        return _metrics_connect(args)
    if not args.graph or not args.trace:
        print(
            "error: pass `graph trace` positionals (replay mode) or "
            "--connect HOST:PORT (live scrape)",
            file=sys.stderr,
        )
        return 2
    graph = read_edge_list(args.graph)
    trace_ops = read_trace(args.trace)

    registry = MetricRegistry()
    sink = JsonlSink(args.events) if args.events else None
    try:
        with trace.capture(registry, sink):
            service = ReachabilityService(
                graph, cache_size=args.cache_size, registry=registry
            )
            for op in trace_ops:
                if op.kind == "query":
                    try:
                        service.query(op.tail, op.head)
                    except ReproError:
                        pass  # the trace may query a deleted endpoint
                else:
                    service.apply(UpdateOp.from_trace_op(op))
            service.flush()
            if args.reduce_rounds:
                service.reduce_labels(max_rounds=args.reduce_rounds)
    finally:
        if sink is not None:
            sink.close()

    rendered = (
        render_json(registry)
        if args.format == "json"
        else render_prometheus(registry)
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if sink is not None:
        print(
            f"wrote {sink.records_written} JSONL events to {args.events}",
            file=sys.stderr,
        )
    return 0


def _parse_connect(spec: str) -> tuple:
    """Split a ``HOST:PORT`` spec (port required)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(f"--connect expects HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _metrics_connect(args: argparse.Namespace) -> int:
    """Live-scrape mode of `repro metrics`."""
    import json as json_mod

    from .net.client import ReachabilityClient
    from .obs.export import render_prometheus_snapshot

    host, port = _parse_connect(args.connect)
    with ReachabilityClient(host, port) as client:
        snapshot = client.registry_snapshot()
    rendered = (
        json_mod.dumps(snapshot, indent=2, sort_keys=True)
        if args.format == "json"
        else render_prometheus_snapshot(snapshot)
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """`repro health`: live index-health introspection.

    Either scrapes a running server's ``health`` wire op
    (``--connect HOST:PORT``) or builds a service over a local edge-list
    file and reports the same payload — label-size distribution (mean /
    p95 / max Lin and Lout), where in the total order the label mass
    sits (decile coverage + the order-quality score), scratch-buffer
    high-water marks, WAL lag and checkpoint age.
    """
    import json as json_mod

    from .obs.health import render_health

    if args.connect:
        from .net.client import ReachabilityClient

        host, port = _parse_connect(args.connect)
        with ReachabilityClient(host, port) as client:
            payload = client.health()
    elif args.graph:
        from .service.server import ReachabilityService

        service = ReachabilityService(
            read_edge_list(args.graph), order=args.order
        )
        payload = service.health()
    else:
        print(
            "error: pass a graph edge-list file or --connect HOST:PORT",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_health(payload))
    return 0


def cmd_slowlog(args: argparse.Namespace) -> int:
    """`repro slowlog`: tail or aggregate a slow-query log.

    The log is JSONL written by a server started with ``--slowlog``
    (see `repro serve`); this reads it back — the last N lines with
    ``--tail``, or the aggregate view (count, outcome mix, duration
    percentiles, per-stage means, slowest traces) with ``--aggregate``.
    """
    import json as json_mod

    from .obs.slowlog import aggregate_slowlog, read_slowlog

    records = read_slowlog(args.path, tail=args.tail)
    if args.aggregate:
        agg = aggregate_slowlog(records)
        print(json_mod.dumps(agg, indent=2, sort_keys=True))
        return 0
    for record in records:
        print(json_mod.dumps(record, sort_keys=True))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """`repro experiments`: print the paper's tables and figures."""
    wanted = args.only or sorted(ALL_EXPERIMENTS)
    for name in wanted:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: "
                  f"{', '.join(sorted(ALL_EXPERIMENTS))}", file=sys.stderr)
            return 2
    for name in wanted:
        kwargs = {}
        if args.vertices is not None:
            kwargs["num_vertices"] = args.vertices
        result = ALL_EXPERIMENTS[name](**kwargs)
        print()
        print(result.render())
        if args.chart:
            from .bench.charts import render_bar_chart

            print()
            print(render_bar_chart(result))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the `repro` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TOL reachability indices for dynamic graphs (SIGMOD'14 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a dataset stand-in as an edge list")
    p.add_argument("dataset", choices=[n for n in datasets.DATASET_NAMES])
    p.add_argument("output")
    p.add_argument("--vertices", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("build", help="build an index from an edge-list file")
    p.add_argument("graph")
    p.add_argument("index")
    p.add_argument(
        "--order", default="butterfly-u",
        choices=sorted(set(ORDER_STRATEGIES)),
    )
    p.add_argument("--format", default="auto", choices=["auto", "binary", "json"])
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("query", help="answer reachability queries")
    p.add_argument("index")
    p.add_argument("vertices", nargs="+", help="source target [source target ...]")
    p.add_argument("--witness", action="store_true", help="show one witness vertex")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("update", help="insert/delete vertices in a saved index")
    p.add_argument("index")
    p.add_argument("--insert", default=None, help="vertex to insert")
    p.add_argument("--in", dest="in_neighbors", default="",
                   help="comma-separated in-neighbors of the inserted vertex")
    p.add_argument("--out", dest="out_neighbors", default="",
                   help="comma-separated out-neighbors of the inserted vertex")
    p.add_argument("--delete", action="append", default=[],
                   help="vertex to delete (repeatable)")
    p.set_defaults(func=cmd_update)

    p = sub.add_parser("stats", help="label statistics of a saved index")
    p.add_argument("index")
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("reduce", help="run Section-6 label reduction in place")
    p.add_argument("index")
    p.add_argument("--rounds", type=int, default=1)
    p.set_defaults(func=cmd_reduce)

    p = sub.add_parser("trace-generate",
                       help="synthesize a replayable mutation/query trace")
    p.add_argument("graph", help="edge-list file of the starting graph")
    p.add_argument("output", help="trace file to write")
    p.add_argument("--ops", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--query-fraction", type=float, default=0.5)
    p.set_defaults(func=cmd_trace_generate)

    p = sub.add_parser("trace-replay",
                       help="replay a trace against one or more methods")
    p.add_argument("graph", help="edge-list file of the starting graph")
    p.add_argument("trace", help="trace file to replay")
    p.add_argument("--methods", nargs="+", default=["BU", "Dagger"])
    p.set_defaults(func=cmd_trace_replay)

    p = sub.add_parser(
        "serve-replay",
        help="replay a trace through the concurrent serving layer",
    )
    p.add_argument("graph", help="edge-list file of the starting graph")
    p.add_argument("trace", help="trace file providing queries and mutations")
    p.add_argument("--readers", type=int, default=4,
                   help="number of concurrent reader threads")
    p.add_argument("--rounds", type=int, default=1,
                   help="times each reader replays the query stream")
    p.add_argument("--cache-size", type=int, default=4096,
                   help="query-result LRU capacity (0 disables)")
    p.add_argument("--flush-threshold", type=int, default=8,
                   help="apply queued updates once this many are pending")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="export the metric registry after the replay "
                        "(.json = JSON, else Prometheus text); also "
                        "enables core-span tracing for the run")
    p.add_argument("--wal", default=None, metavar="DIR",
                   help="durability directory: log every update to a WAL "
                        "and checkpoint periodically (see `repro recover`)")
    p.add_argument("--fsync", default="batch",
                   choices=["always", "batch", "never"],
                   help="WAL fsync policy (with --wal)")
    p.add_argument("--checkpoint-every", type=int, default=256,
                   help="checkpoint after this many WAL records (with --wal)")
    p.set_defaults(func=cmd_serve_replay)

    p = sub.add_parser(
        "serve",
        help="serve a graph over TCP (length-prefixed JSON protocol)",
    )
    p.add_argument("graph", nargs="?", default=None,
                   help="edge-list file of the graph to serve (optional "
                        "with --snapshot)")
    p.add_argument("--snapshot", default=None, metavar="FILE.tolf",
                   help="boot from a `repro pack` artifact instead of "
                        "building the index from the edge list")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="multi-process mode: N reader processes answer "
                        "queries from a shared-memory frozen snapshot; "
                        "this process becomes the writer (0 = classic "
                        "single-process serving)")
    p.add_argument("--publish-interval", type=float, default=0.2,
                   help="seconds between snapshot-republish checks "
                        "(with --workers)")
    p.add_argument("--grace-period", type=float, default=5.0,
                   help="seconds a superseded shared-memory segment stays "
                        "linked for late readers (with --workers)")
    p.add_argument("--max-staleness", type=float, default=0.0,
                   help="with --workers: refuse snapshot answers older "
                        "than this many seconds while the writer is down "
                        "(0 = serve stale answers indefinitely, stamped "
                        "with stale_ms)")
    p.add_argument("--forward-timeout", type=float, default=5.0,
                   help="with --workers: seconds a reader waits on the "
                        "writer for a forwarded op before answering "
                        "writer_unavailable")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the actually bound port here once listening "
                        "(for scripts and the load generator)")
    p.add_argument("--order", default="butterfly-u",
                   choices=sorted(set(ORDER_STRATEGIES)))
    p.add_argument("--cache-size", type=int, default=4096,
                   help="query-result LRU capacity (0 disables)")
    p.add_argument("--flush-threshold", type=int, default=8,
                   help="apply queued updates once this many are pending")
    p.add_argument("--max-pending", type=int, default=4096,
                   help="admission-control bound on queued query pairs; "
                        "excess requests get a structured 'overloaded' "
                        "reply (0 = unbounded)")
    p.add_argument("--max-batch", type=int, default=1024,
                   help="most pairs coalesced into one query_batch call")
    p.add_argument("--batch-delay", type=float, default=0.0,
                   help="artificial per-batch delay in seconds (testing "
                        "knob: makes overload reproducible)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds the SIGTERM drain waits for admitted "
                        "requests")
    p.add_argument("--wal", default=None, metavar="DIR",
                   help="durability directory (WAL + checkpoints)")
    p.add_argument("--fsync", default="batch",
                   choices=["always", "batch", "never"],
                   help="WAL fsync policy (with --wal)")
    p.add_argument("--checkpoint-every", type=int, default=256,
                   help="checkpoint after this many WAL records (with --wal)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="export the metric registry after the drain "
                        "(.json = JSON, else Prometheus text)")
    p.add_argument("--slowlog", default=None, metavar="PATH",
                   help="write a JSONL slow-query log here (read it back "
                        "with `repro slowlog`)")
    p.add_argument("--slow-ms", type=float, default=50.0,
                   help="slow-query threshold in milliseconds (with "
                        "--slowlog)")
    p.add_argument("--slowlog-sample", type=float, default=0.0,
                   help="fraction of below-threshold requests to sample "
                        "into the log anyway (with --slowlog)")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="enable the flight recorder and write its dumps "
                        "here (auto-dumps on degraded entry, quarantine, "
                        "recovery; SIGQUIT dumps on demand)")
    p.add_argument("--flight-interval", type=float, default=1.0,
                   help="seconds between flight-recorder snapshots "
                        "(with --flight-dir)")
    p.add_argument("--flight-capacity", type=int, default=256,
                   help="snapshots retained in the flight-recorder ring "
                        "(with --flight-dir)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive multi-process Zipfian load at a net server",
    )
    p.add_argument("graph", help="edge-list file the server was started on")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="port of a running `repro serve` instance")
    p.add_argument("--spawn", action="store_true",
                   help="spawn the server subprocess here (and SIGTERM it "
                        "when done) instead of targeting --port")
    p.add_argument("--clients", type=int, default=4,
                   help="number of client worker processes")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds each client sends load")
    p.add_argument("--batch", type=int, default=16,
                   help="query pairs per request frame")
    p.add_argument("--skew", type=float, default=1.1,
                   help="Zipf skew of the endpoint popularity")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="check every admitted answer against a BFS oracle "
                        "in the worker (small graphs only)")
    p.add_argument("--expect-shed", action="store_true",
                   help="exit 1 unless at least one request was shed "
                        "(for overload smoke tests)")
    p.add_argument("--quick", action="store_true",
                   help="smoke mode: shrink the duration to ~1.5s")
    p.add_argument("--output", default="BENCH_serve.json", metavar="PATH",
                   help="where to write the qps/latency artifact "
                        "('' disables)")
    p.add_argument("--server-max-pending", type=int, default=4096,
                   help="--max-pending for the spawned server (with --spawn)")
    p.add_argument("--server-batch-delay", type=float, default=0.0,
                   help="--batch-delay for the spawned server (with --spawn)")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="spawn the server in multi-process mode with N "
                        "reader workers (with --spawn); recorded in the "
                        "artifact's `workers` field")
    p.add_argument("--compare-single", action="store_true",
                   help="also run a single-process baseline first (with "
                        "--spawn --workers) and record `single_process` + "
                        "`speedup_vs_single` in the artifact")
    p.add_argument("--min-speedup", type=float, default=None, metavar="X",
                   help="exit 1 unless speedup_vs_single >= X (with "
                        "--compare-single)")
    p.add_argument("--chaos", choices=["kill-writer"], default=None,
                   help="inject a process fault mid-run and record the "
                        "outage error rate + time-to-recovery in the "
                        "artifact (needs a multi-process server)")
    p.add_argument("--chaos-max-recovery-s", type=float, default=None,
                   metavar="S",
                   help="exit 1 if the chaos recovery took longer than S "
                        "seconds (with --chaos)")
    p.add_argument("--chaos-max-error-rate", type=float, default=None,
                   metavar="F",
                   help="exit 1 if the fraction of failed requests during "
                        "the chaos outage exceeds F (with --chaos)")
    p.add_argument("--server-wal", default=None, metavar="DIR",
                   help="--wal directory for the spawned server (with "
                        "--spawn); lets a chaos-killed writer recover "
                        "from its checkpoint + WAL instead of rebuilding")
    p.add_argument("--server-flight-dir", default=None, metavar="DIR",
                   help="--flight-dir for the spawned server (with "
                        "--spawn); CI's chaos-smoke job uploads the "
                        "recorder dumps as a failure artifact")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "pack",
        help="freeze a graph's index into an mmap-able .tolf snapshot "
             "pack (boot it with `repro serve --snapshot`)",
    )
    p.add_argument("graph", help="edge-list file to index and freeze")
    p.add_argument("output", help="pack file to write (convention: .tolf)")
    p.add_argument("--order", default="butterfly-u",
                   choices=sorted(set(ORDER_STRATEGIES)))
    p.set_defaults(func=cmd_pack)

    # Hidden plumbing: the reader-worker subprocess behind
    # `repro serve --workers`.  Takes an inherited listening-socket fd
    # and the shared-memory control-block name; not useful by hand.
    p = sub.add_parser("serve-worker")
    p.add_argument("--fd", type=int, required=True)
    p.add_argument("--control", required=True)
    p.add_argument("--writer-host", default="127.0.0.1")
    p.add_argument("--writer-port", type=int, required=True)
    p.add_argument("--worker-id", type=int, required=True)
    p.add_argument("--max-staleness", type=float, default=0.0)
    p.add_argument("--forward-timeout", type=float, default=5.0)
    p.set_defaults(func=cmd_serve_worker)

    # Hidden plumbing: the writer subprocess behind `repro serve
    # --workers`.  Builds (or recovers) the service, attaches the
    # publisher to the supervisor's control block, serves forwarded
    # traffic on the inherited fd.
    p = sub.add_parser("serve-writer")
    p.add_argument("--fd", type=int, required=True)
    p.add_argument("--control", required=True)
    p.add_argument("--graph", default=None)
    p.add_argument("--snapshot", default=None)
    p.add_argument("--wal", default=None)
    p.add_argument("--fsync", default="batch",
                   choices=["always", "batch", "never"])
    p.add_argument("--checkpoint-every", type=int, default=256)
    p.add_argument("--order", default="butterfly-u",
                   choices=sorted(set(ORDER_STRATEGIES)))
    p.add_argument("--cache-size", type=int, default=4096)
    p.add_argument("--flush-threshold", type=int, default=8)
    p.add_argument("--max-pending", type=int, default=4096)
    p.add_argument("--max-batch", type=int, default=1024)
    p.add_argument("--batch-delay", type=float, default=0.0)
    p.add_argument("--drain-timeout", type=float, default=10.0)
    p.add_argument("--publish-interval", type=float, default=0.2)
    p.add_argument("--grace-period", type=float, default=5.0)
    p.add_argument("--slowlog", default=None)
    p.add_argument("--slow-ms", type=float, default=50.0)
    p.add_argument("--flight-dir", default=None)
    p.add_argument("--metrics-out", default=None)
    p.set_defaults(func=cmd_serve_writer)

    p = sub.add_parser(
        "shm-janitor",
        help="reap shared-memory segments orphaned by dead servers",
    )
    p.add_argument("--scan", action="store_true",
                   help="report orphans as JSON without unlinking "
                        "(exit 1 when any exist — CI leak assertion)")
    p.add_argument("--min-age", type=float, default=30.0,
                   help="age gate (seconds) for control-block-less "
                        "segment families")
    p.set_defaults(func=cmd_shm_janitor)

    p = sub.add_parser(
        "recover",
        help="rebuild serving state from a WAL + checkpoint directory",
    )
    p.add_argument("directory",
                   help="durability directory (wal.log + checkpoints/)")
    p.add_argument("--fsync", default="batch",
                   choices=["always", "batch", "never"],
                   help="WAL fsync policy for continued operation")
    p.add_argument("--checkpoint-every", type=int, default=256,
                   help="checkpoint cadence for continued operation")
    p.add_argument("--audit-samples", type=int, default=32,
                   help="vertex pairs checked by the post-recovery "
                        "Definition-1 self-audit")
    p.add_argument("--checkpoint", action="store_true",
                   help="write a fresh checkpoint covering the recovered "
                        "state before exiting")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "metrics",
        help="export a metric registry: replay a trace, or scrape a "
             "running server with --connect",
    )
    p.add_argument("graph", nargs="?", default=None,
                   help="edge-list file of the starting graph (replay mode)")
    p.add_argument("trace", nargs="?", default=None,
                   help="trace file providing queries and mutations "
                        "(replay mode)")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="scrape a running `repro serve` instance's "
                        "registry over the stats wire op instead of "
                        "replaying")
    p.add_argument("--format", default="prometheus",
                   choices=["prometheus", "json"],
                   help="rendering of the metric registry")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the rendering here instead of stdout")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="also write per-operation JSONL span/event records")
    p.add_argument("--cache-size", type=int, default=4096,
                   help="query-result LRU capacity (0 disables)")
    p.add_argument("--reduce-rounds", type=int, default=1,
                   help="Section-6 reduction rounds to run after the "
                        "replay (0 skips; default 1, so the snapshot "
                        "shows the reduction span)")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "health",
        help="live index-health introspection (local graph or --connect)",
    )
    p.add_argument("graph", nargs="?", default=None,
                   help="edge-list file to build and inspect locally")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="scrape a running `repro serve` instance's "
                        "health wire op instead")
    p.add_argument("--order", default="butterfly-u",
                   choices=sorted(set(ORDER_STRATEGIES)),
                   help="order strategy for local builds")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON payload instead of the "
                        "human rendering")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "slowlog",
        help="tail or aggregate a slow-query log written by `repro serve`",
    )
    p.add_argument("path", help="the JSONL slow-query log file")
    p.add_argument("--tail", type=int, default=None, metavar="N",
                   help="only the last N records")
    p.add_argument("--aggregate", action="store_true",
                   help="print the aggregate view (percentiles, stage "
                        "means, slowest traces) instead of raw lines")
    p.set_defaults(func=cmd_slowlog)

    p = sub.add_parser("experiments", help="print the paper's tables/figures")
    p.add_argument("--only", nargs="*", default=None,
                   help="subset of: " + " ".join(sorted(ALL_EXPERIMENTS)))
    p.add_argument("--vertices", type=int, default=None,
                   help="override every dataset's stand-in size")
    p.add_argument("--chart", action="store_true",
                   help="also draw each experiment as an ASCII bar chart")
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnknownVertexError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_VERTEX
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SERIALIZATION
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pipe (`repro slowlog ... | head`) closed early; the
        # interpreter would otherwise traceback while flushing stdout.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
