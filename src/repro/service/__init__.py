"""Concurrent query-serving layer over the dynamic reachability indices.

The core package (:mod:`repro.core`) is deliberately single-threaded: the
paper's algorithms mutate shared label sets and an order-maintenance
structure in place, so unsynchronized concurrent access would corrupt the
index.  This subpackage adds the serving shell a production deployment
needs for the paper's mixed read/write regime (Section 8, "Experiments on
Dynamic Graphs"):

* :mod:`repro.service.concurrency` — a writer-preferring reader-writer
  lock and a monotonic epoch counter bumped on every successful update;
* :mod:`repro.service.cache` — a bounded LRU query cache whose entries
  are stamped with the epoch they were computed at, so one integer bump
  lazily invalidates the whole cache without scanning it;
* :mod:`repro.service.updates` — a coalescing update queue that merges
  redundant insert/delete operations before they reach the index;
* :mod:`repro.service.metrics` — the serving-layer naming over the
  unified :class:`~repro.obs.registry.MetricRegistry` (instrument
  classes live in :mod:`repro.obs`), behind a single ``snapshot()``
  dict;
* :mod:`repro.service.durability` — crash safety: a CRC-checksummed
  write-ahead log with torn-tail truncation, atomic checkpoints over
  :mod:`repro.core.serialize`, and the checkpoint-plus-WAL-suffix
  recovery path;
* :mod:`repro.service.faults` — deterministic fault injection (named
  crash points) and the retry/quarantine
  :class:`~repro.service.faults.FaultPolicy` for poison updates;
* :mod:`repro.service.server` — :class:`ReachabilityService`, the facade
  tying them together around a
  :class:`~repro.core.index.ReachabilityIndex`, including degraded-mode
  BFS serving and the sampled Definition-1 self-audit.

See ``docs/service.md`` for the lock discipline and invalidation rules,
``docs/robustness.md`` for the crash-safety story,
``python -m repro serve-replay`` for a runnable multi-threaded driver,
and ``benchmarks/bench_service_mixed.py`` for throughput measurements.
"""

from .cache import EpochLRUCache
from .concurrency import EpochCounter, RWLock
from .durability import (
    CheckpointStore,
    DurabilityManager,
    RecoveryReport,
    WriteAheadLog,
    recover_state,
)
from .faults import (
    CRASH_POINTS,
    FaultInjector,
    FaultPolicy,
    InjectedCrash,
    QuarantinedUpdate,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .server import ReachabilityService
from .updates import CoalescingUpdateQueue, UpdateOp

__all__ = [
    "ReachabilityService",
    "RWLock",
    "EpochCounter",
    "EpochLRUCache",
    "CoalescingUpdateQueue",
    "UpdateOp",
    "ServiceMetrics",
    "LatencyHistogram",
    "WriteAheadLog",
    "CheckpointStore",
    "DurabilityManager",
    "RecoveryReport",
    "recover_state",
    "FaultInjector",
    "FaultPolicy",
    "InjectedCrash",
    "QuarantinedUpdate",
    "CRASH_POINTS",
]
