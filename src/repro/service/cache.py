"""An epoch-invalidated, bounded LRU cache for query results.

Reachability answers are only valid for one version of the graph, and a
single vertex update can flip the answer of arbitrarily many ``(s, t)``
pairs — eager invalidation would mean scanning every cached pair on every
write.  Instead each entry is stamped with the index epoch it was computed
at (:class:`~repro.service.concurrency.EpochCounter`); a lookup presents
the *current* epoch, and an entry from any earlier epoch is treated as a
miss and dropped on contact.  A write therefore invalidates the entire
cache in O(1) — it just bumps the epoch — and stale entries are evicted
lazily, either on re-lookup or by ordinary LRU pressure.

The same trick appears in serving systems as "generational" or
"epoch-based" cache invalidation; it trades a small amount of dead weight
(stale entries occupying slots until touched) for constant-time writes,
which is the correct trade for the paper's update-heavy dynamic workloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Optional

__all__ = ["MISS", "EpochLRUCache"]

#: Sentinel returned by :meth:`EpochLRUCache.get` on a miss, so ``False``
#: (a perfectly good reachability answer) stays distinguishable.
MISS = object()

Key = Hashable


class EpochLRUCache:
    """A bounded LRU mapping ``key -> (epoch, value)`` (see module docs).

    Parameters
    ----------
    capacity:
        Maximum number of live entries.  ``0`` disables the cache
        entirely (every ``get`` misses, every ``put`` is a no-op), which
        gives benchmarks a true cache-off baseline without branching at
        the call sites.

    Thread safety: every public method takes the internal mutex, so the
    cache may be shared by any number of reader threads.  Hit/miss
    bookkeeping is kept inside, exposed via :meth:`stats`.

    Examples
    --------
    >>> cache = EpochLRUCache(capacity=2)
    >>> cache.put(("a", "b"), epoch=0, value=True)
    >>> cache.get(("a", "b"), epoch=0)
    True
    >>> cache.get(("a", "b"), epoch=1) is MISS   # a write happened
    True
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Key, tuple[int, object]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stale_drops = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """The configured maximum entry count."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: Key, epoch: int):
        """Return the cached value for *key* at *epoch*, or :data:`MISS`.

        An entry stamped with an epoch other than *epoch* is stale: it is
        removed and counted in ``stale_drops``, and the lookup misses.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISS
            cached_epoch, value = entry
            if cached_epoch != epoch:
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return MISS
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Key, epoch: int, value: object) -> None:
        """Store *value* for *key* at *epoch*, evicting LRU entries."""
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def bind_registry(self, registry, prefix: str = "cache") -> None:
        """Publish this cache's live stats into a metric registry.

        Registers one callback per stat (``cache.hits``,
        ``cache.hit_rate``, ...) so a registry snapshot or Prometheus
        export reads the *current* values — no double bookkeeping, no
        sampling loop.  The callbacks hold a reference to the cache;
        re-binding a rebuilt cache under the same prefix just replaces
        them.
        """
        for stat in (
            "entries", "hits", "misses", "hit_rate", "stale_drops",
            "evictions",
        ):
            registry.register_callback(
                f"{prefix}.{stat}",
                lambda stat=stat: self.stats()[stat],
            )

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits / lookups, or ``None`` before the first lookup."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else None

    def stats(self) -> dict:
        """Counters for :meth:`ReachabilityService.snapshot`."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else None,
                "stale_drops": self._stale_drops,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"{type(self).__name__}(entries={s['entries']}/{s['capacity']}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )
