"""Synchronization primitives for the serving layer.

Two small pieces, both deliberately boring:

* :class:`RWLock` — a writer-preferring readers-writer lock.  Queries on a
  TOL index are pure reads over the label dictionaries, so any number may
  proceed in parallel; the update algorithms (Section 5) mutate labels,
  inverted lists and the order structure together and therefore need full
  exclusion.  Writer preference keeps a steady query stream from starving
  the update queue — the paper's dynamic experiments interleave both.

* :class:`EpochCounter` — a monotonic version number for the index.  Every
  successful insert/delete/reduction bumps it exactly once; readers stamp
  derived results (cached answers) with the epoch they were computed at.
  Anything stamped with an older epoch is stale by definition, which is
  what lets the query cache invalidate lazily in O(1) per write
  (:mod:`repro.service.cache`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

__all__ = ["RWLock", "EpochCounter"]


class RWLock:
    """A writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; writers get full
    exclusion.  A waiting writer blocks *new* readers from entering, so
    writes cannot starve under a continuous query stream.

    The lock is not reentrant: a thread must not acquire it (in either
    mode) while already holding it — upgrading a read hold to a write
    hold deadlocks by design, as it would for any correct RW lock.

    Examples
    --------
    >>> lock = RWLock()
    >>> with lock.read_locked():
    ...     pass
    >>> with lock.write_locked():
    ...     pass
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Enter the read side; return ``True`` on success.

        With ``timeout=None`` (the default) this blocks until no writer
        is active or waiting and always returns ``True``.  With a
        timeout in seconds it gives up after the deadline and returns
        ``False`` *without* holding the lock — the serving layer's
        per-query deadline, which falls back to degraded-mode BFS
        instead of stalling behind a long writer (e.g. a rebuild).
        """
        with self._cond:
            if timeout is None:
                while self._writer_active or self._writers_waiting:
                    self._cond.wait()
            else:
                deadline = time.monotonic() + timeout
                while self._writer_active or self._writers_waiting:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
            self._active_readers += 1
            return True

    def release_read(self) -> None:
        """Leave the read side; wake writers when the last reader exits."""
        with self._cond:
            self._active_readers -= 1
            if self._active_readers < 0:
                self._active_readers = 0
                raise RuntimeError("release_read() without acquire_read()")
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        """``with``-statement form of acquire_read/release_read."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until the lock is free of readers and writers, then own it."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Give up write ownership and wake every waiter."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write() without acquire_write()")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        """``with``-statement form of acquire_write/release_write."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"{type(self).__name__}(readers={self._active_readers}, "
                f"writer={self._writer_active}, "
                f"writers_waiting={self._writers_waiting})"
            )


class EpochCounter:
    """A thread-safe monotonic version counter.

    ``value`` reads the current epoch; :meth:`bump` advances it by one and
    returns the new epoch.  The serving layer bumps once per successful
    index mutation while holding the write lock, so within any read-locked
    section the epoch is constant.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, start: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = start

    @property
    def value(self) -> int:
        """The current epoch."""
        with self._lock:
            return self._value

    def bump(self) -> int:
        """Advance the epoch by one; return the new value."""
        with self._lock:
            self._value += 1
            return self._value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value})"
