"""Serving metrics, rebuilt on the unified observability registry.

The instrument classes (:class:`LatencyHistogram`, :class:`RunningStats`)
moved to :mod:`repro.obs.registry` — this module re-exports them for
backwards compatibility — and :class:`ServiceMetrics` is now a thin
naming layer over a :class:`~repro.obs.registry.MetricRegistry`: every
counter and histogram the service touches is registered under a
``service.``-prefixed name, so the same registry can also receive the
core-algorithm spans (:mod:`repro.obs.trace`) and cache gauges, and one
Prometheus/JSON export covers the whole stack.

:meth:`ServiceMetrics.snapshot` namespaces counters under a
``"counters"`` sub-dict.  The old flat merge meant a counter whose name
matched a histogram key (``query_latency``) silently shadowed the
histogram entry; now the names cannot collide — and the registry itself
rejects rebinding a name to a different instrument kind.
"""

from __future__ import annotations

from typing import Optional

from ..obs.registry import LatencyHistogram, MetricRegistry, RunningStats

__all__ = ["LatencyHistogram", "RunningStats", "ScopedMetrics", "ServiceMetrics"]

#: Registry prefix for every metric owned by the serving layer.
_PREFIX = "service."


class ScopedMetrics:
    """A prefix-scoped naming layer over one :class:`MetricRegistry`.

    Each subsystem claims a dotted prefix (``service.``, ``net.``) and
    records through short local names; the registry — and therefore the
    Prometheus/JSON exporters — sees the fully qualified ones.  Sharing
    one registry across scopes is the point: the network front end, the
    service and the core spans all land in a single snapshot.
    """

    def __init__(
        self, registry: Optional[MetricRegistry] = None, *, prefix: str
    ) -> None:
        if not prefix.endswith("."):
            raise ValueError(f"metric prefix must end with '.', got {prefix!r}")
        self.registry = registry if registry is not None else MetricRegistry()
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        """The dotted namespace every local name is registered under."""
        return self._prefix

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self.registry.incr(self._prefix + name, amount)

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self.registry.counter(self._prefix + name).value

    def histogram(self, name: str) -> LatencyHistogram:
        """Get-or-create the scoped latency histogram *name*."""
        return self.registry.histogram(self._prefix + name)

    def stats(self, name: str) -> RunningStats:
        """Get-or-create the scoped running-stats recorder *name*."""
        return self.registry.stats(self._prefix + name)

    def scoped_counters(self) -> dict:
        """All counters under this prefix, with the prefix stripped."""
        return {
            name[len(self._prefix):]: value
            for name, value in self.registry.snapshot()["counters"].items()
            if name.startswith(self._prefix)
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(prefix={self._prefix!r})"


class ServiceMetrics(ScopedMetrics):
    """Counters and histograms for :class:`ReachabilityService`.

    Parameters
    ----------
    registry:
        The :class:`MetricRegistry` to register instruments in.  Pass
        the registry you also hand to :func:`repro.obs.trace.enable` to
        get serving metrics and core spans in one snapshot; the default
        is a fresh private registry.

    Counter names are short (``queries``, ``updates_applied``); in the
    registry they live under the ``service.`` prefix
    (``service.queries``), which is also how the Prometheus exporter
    sees them.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        super().__init__(registry, prefix=_PREFIX)
        #: Per-query service time (cache hits and misses alike).
        self.query_latency = self.histogram("query_latency")
        #: Wall time of one write-lock critical section (whole batch).
        self.batch_apply_latency = self.histogram("batch_apply_latency")
        #: Number of index mutations applied per drained batch.
        self.batch_size = self.stats("batch_size")

    def snapshot(self) -> dict:
        """Counters (namespaced) plus the three recorder summaries.

        Shape: ``{"counters": {name: int}, "query_latency": {...},
        "batch_apply_latency": {...}, "batch_size": {...}}`` — counter
        names have the ``service.`` prefix stripped back off.
        """
        return {
            "counters": self.scoped_counters(),
            "query_latency": self.query_latency.snapshot(),
            "batch_apply_latency": self.batch_apply_latency.snapshot(),
            "batch_size": self.batch_size.snapshot(),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.snapshot()!r})"
