"""Serving metrics, rebuilt on the unified observability registry.

The instrument classes (:class:`LatencyHistogram`, :class:`RunningStats`)
moved to :mod:`repro.obs.registry` — this module re-exports them for
backwards compatibility — and :class:`ServiceMetrics` is now a thin
naming layer over a :class:`~repro.obs.registry.MetricRegistry`: every
counter and histogram the service touches is registered under a
``service.``-prefixed name, so the same registry can also receive the
core-algorithm spans (:mod:`repro.obs.trace`) and cache gauges, and one
Prometheus/JSON export covers the whole stack.

:meth:`ServiceMetrics.snapshot` namespaces counters under a
``"counters"`` sub-dict.  The old flat merge meant a counter whose name
matched a histogram key (``query_latency``) silently shadowed the
histogram entry; now the names cannot collide — and the registry itself
rejects rebinding a name to a different instrument kind.
"""

from __future__ import annotations

from typing import Optional

from ..obs.registry import LatencyHistogram, MetricRegistry, RunningStats

__all__ = ["LatencyHistogram", "RunningStats", "ServiceMetrics"]

#: Registry prefix for every metric owned by the serving layer.
_PREFIX = "service."


class ServiceMetrics:
    """Counters and histograms for :class:`ReachabilityService`.

    Parameters
    ----------
    registry:
        The :class:`MetricRegistry` to register instruments in.  Pass
        the registry you also hand to :func:`repro.obs.trace.enable` to
        get serving metrics and core spans in one snapshot; the default
        is a fresh private registry.

    Counter names are short (``queries``, ``updates_applied``); in the
    registry they live under the ``service.`` prefix
    (``service.queries``), which is also how the Prometheus exporter
    sees them.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        #: Per-query service time (cache hits and misses alike).
        self.query_latency = self.registry.histogram(
            _PREFIX + "query_latency"
        )
        #: Wall time of one write-lock critical section (whole batch).
        self.batch_apply_latency = self.registry.histogram(
            _PREFIX + "batch_apply_latency"
        )
        #: Number of index mutations applied per drained batch.
        self.batch_size = self.registry.stats(_PREFIX + "batch_size")

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self.registry.incr(_PREFIX + name, amount)

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self.registry.counter(_PREFIX + name).value

    def snapshot(self) -> dict:
        """Counters (namespaced) plus the three recorder summaries.

        Shape: ``{"counters": {name: int}, "query_latency": {...},
        "batch_apply_latency": {...}, "batch_size": {...}}`` — counter
        names have the ``service.`` prefix stripped back off.
        """
        counters = {
            name[len(_PREFIX):]: value
            for name, value in self.registry.snapshot()["counters"].items()
            if name.startswith(_PREFIX)
        }
        return {
            "counters": counters,
            "query_latency": self.query_latency.snapshot(),
            "batch_apply_latency": self.batch_apply_latency.snapshot(),
            "batch_size": self.batch_size.snapshot(),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.snapshot()!r})"
