"""Serving metrics: counters and latency histograms with one snapshot.

Query latencies are long-tailed (a cache hit is two dict probes; a miss on
a heavy vertex intersects large label sets), so mean latency hides exactly
what matters.  :class:`LatencyHistogram` keeps counts in geometrically
spaced buckets — the scheme used by Prometheus/HDR-style recorders — which
makes ``record()`` O(log #buckets), memory constant, and percentile
estimates accurate to one bucket width (here a factor of 2).

:class:`ServiceMetrics` groups the histograms and counters the service
updates on its hot paths and renders everything as one plain ``dict`` via
:meth:`ServiceMetrics.snapshot`, so the CLI, tests and benchmarks can
print or assert on it without knowing the internals.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional

__all__ = ["LatencyHistogram", "RunningStats", "ServiceMetrics"]

#: Geometric bucket upper bounds for latencies, in seconds: 1 µs up to
#: ~67 s doubling each step; anything slower lands in a final overflow
#: bucket.  26 buckets cover every rate this pure-Python index can hit.
_BOUNDS = tuple(1e-6 * 2**i for i in range(26))


class LatencyHistogram:
    """A fixed-bucket geometric histogram of durations in seconds.

    Thread-safe; all mutation happens under an internal mutex.  Quantiles
    are upper bounds of the containing bucket, i.e. conservative to within
    one power of two.
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BOUNDS) + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        idx = bisect_left(_BOUNDS, seconds)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> Optional[float]:
        """Mean of the observations, or ``None`` if there are none."""
        with self._lock:
            return self._sum / self._count if self._count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimated *q*-quantile (0 < q <= 1), or ``None`` when empty.

        Returns the upper bound of the bucket containing the quantile
        rank; observations beyond the last bound report the maximum seen.
        """
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if not self._count:
                return None
            rank = q * self._count
            seen = 0
            for idx, bucket in enumerate(self._counts):
                seen += bucket
                if seen >= rank:
                    if idx < len(_BOUNDS):
                        return min(_BOUNDS[idx], self._max)
                    return self._max
            return self._max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> dict:
        """``{count, mean, p50, p95, p99, max}`` with seconds as values."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self._max if self.count else None,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(count={self.count}, mean={self.mean})"


class RunningStats:
    """Count / mean / min / max of a stream of numbers (thread-safe)."""

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def record(self, value: float) -> None:
        """Add one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def snapshot(self) -> dict:
        """``{count, mean, min, max}``; mean is ``None`` when empty."""
        with self._lock:
            return {
                "count": self._count,
                "mean": self._sum / self._count if self._count else None,
                "min": self._min,
                "max": self._max,
            }

    def __repr__(self) -> str:
        s = self.snapshot()
        return f"{type(self).__name__}(count={s['count']}, mean={s['mean']})"


class ServiceMetrics:
    """Counters and histograms for :class:`ReachabilityService`.

    Counters are a plain name -> int mapping guarded by one mutex
    (:meth:`incr`); histograms are fixed at construction.  Everything
    flattens into :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        #: Per-query service time (cache hits and misses alike).
        self.query_latency = LatencyHistogram()
        #: Wall time of one write-lock critical section (whole batch).
        self.batch_apply_latency = LatencyHistogram()
        #: Number of index mutations applied per drained batch.
        self.batch_size = RunningStats()

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """One flat dict of every counter and histogram summary."""
        with self._lock:
            counters = dict(self._counters)
        return {
            **counters,
            "query_latency": self.query_latency.snapshot(),
            "batch_apply_latency": self.batch_apply_latency.snapshot(),
            "batch_size": self.batch_size.snapshot(),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.snapshot()!r})"
