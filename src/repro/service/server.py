"""`ReachabilityService` — concurrent serving facade over the index.

Lock discipline
---------------

One writer-preferring :class:`~repro.service.concurrency.RWLock` guards
the index:

* **Queries** take the read lock, read the epoch, consult the cache and
  (on a miss) the index, all inside one read-locked section — so the
  answer, the epoch stamp and the cache entry are mutually consistent.
  :meth:`ReachabilityService.query_batch` answers a whole deduplicated
  batch under a single acquisition.
* **Updates** never touch the index directly: they are submitted to a
  :class:`~repro.service.updates.CoalescingUpdateQueue` and applied by
  whichever thread triggers a flush — the whole drained batch inside one
  write-locked critical section, with the epoch bumped once per
  *successful* mutation.  A ``flush_threshold`` of 1 (the default) makes
  every update apply immediately; larger thresholds trade staleness for
  update throughput (fewer lock round-trips, more coalescing).
* A separate writer mutex serializes flushers, so two threads calling
  :meth:`flush` concurrently cannot interleave their batches.

Because cached answers are epoch-stamped and every write bumps the epoch,
a query can never return an answer computed against a different graph
version than the one it reports — the invariant the stress test
(``tests/service/test_concurrency.py``) checks against a BFS oracle.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Hashable, Iterable
from typing import Optional, Union

from ..core.index import ReachabilityIndex
from ..errors import ReproError
from ..graph.digraph import DiGraph
from ..obs.registry import MetricRegistry
from .cache import MISS, EpochLRUCache
from .concurrency import EpochCounter, RWLock
from .metrics import ServiceMetrics
from .updates import CoalescingUpdateQueue, UpdateOp

__all__ = ["ReachabilityService"]

Vertex = Hashable
Pair = tuple[Vertex, Vertex]


class ReachabilityService:
    """Thread-safe reachability serving over a dynamic graph.

    Parameters
    ----------
    graph:
        Starting graph (cycles allowed); an internal
        :class:`~repro.core.index.ReachabilityIndex` is built over a copy.
        Pass ``index=`` instead to adopt a prebuilt one.
    index:
        A ready :class:`ReachabilityIndex` to serve.  The service becomes
        its owner: mutating it from outside afterwards breaks the epoch
        bookkeeping.
    cache_size:
        Capacity of the query-result LRU (0 disables caching).
    flush_threshold:
        Apply queued updates as soon as this many are pending.  1 =
        write-through; larger values batch and coalesce.
    record_applied:
        Keep an in-order log of ``(epoch, op)`` for every successfully
        applied mutation, readable via :attr:`applied_ops`.  Used by the
        oracle tests to reconstruct the graph at any epoch; off by
        default (it grows without bound).
    registry:
        A :class:`~repro.obs.registry.MetricRegistry` to record into
        (default: a fresh private one).  The service registers its
        counters/histograms under ``service.*``, the cache's live stats
        under ``cache.*``, and index-size gauges under ``index.*``.
        Point :func:`repro.obs.trace.enable` at the same registry
        (:attr:`registry`) and one snapshot additionally carries the
        core-algorithm spans — cache hit-rate through label churn.

    Examples
    --------
    >>> g = DiGraph(edges=[("a", "b"), ("b", "c")])
    >>> service = ReachabilityService(g)
    >>> service.query("a", "c")
    True
    >>> service.submit_update(UpdateOp.delete_vertex("b"))
    >>> service.query("a", "c")
    False
    >>> service.epoch
    1
    """

    def __init__(
        self,
        graph: Optional[DiGraph] = None,
        *,
        index: Optional[ReachabilityIndex] = None,
        cache_size: int = 4096,
        flush_threshold: int = 1,
        order: Union[str, object] = "butterfly-u",
        record_applied: bool = False,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if index is not None and graph is not None:
            raise ValueError("pass either graph or index, not both")
        if flush_threshold < 1:
            raise ValueError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        self._index = (
            index
            if index is not None
            else ReachabilityIndex(graph, order=order)
        )
        self._rwlock = RWLock()
        self._epoch = EpochCounter()
        self._cache = EpochLRUCache(cache_size)
        self._queue = CoalescingUpdateQueue()
        self._flush_threshold = flush_threshold
        self._flush_mutex = threading.Lock()
        self._metrics = ServiceMetrics(registry)
        self._cache.bind_registry(self._metrics.registry)
        self._metrics.registry.register_callback(
            "service.epoch", lambda: self._epoch.value
        )
        self._metrics.registry.register_callback(
            "index.size", lambda: self.size()
        )
        self._metrics.registry.register_callback(
            "index.num_vertices", lambda: self.num_vertices
        )
        self._applied: Optional[list[tuple[int, UpdateOp]]] = (
            [] if record_applied else None
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` against the current index version."""
        return self.query_with_epoch(s, t)[0]

    def query_with_epoch(self, s: Vertex, t: Vertex) -> tuple[bool, int]:
        """Answer ``s -> t`` and report the epoch the answer is valid at.

        The epoch is read under the same read-lock hold that computes (or
        fetches) the answer, so the pair is consistent even while a writer
        is waiting.
        """
        start = time.perf_counter()
        with self._rwlock.read_locked():
            epoch = self._epoch.value
            answer = self._answer_locked(s, t, epoch)
        self._metrics.query_latency.record(time.perf_counter() - start)
        self._metrics.incr("queries")
        return answer, epoch

    def query_many(self, pairs: Iterable[Pair]) -> list[bool]:
        """Answer a batch of queries, in input order.

        :class:`~repro.core.protocols.ReachabilityQuerier` spelling of
        :meth:`query_batch` (same single-acquisition, deduplicated path).
        """
        return self.query_batch(pairs)

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one vertex on some ``s ⇝ t`` path, or ``None``.

        Witnesses are not cached (they are not epoch-stamped booleans);
        the lookup runs against the index under the read lock.
        """
        with self._rwlock.read_locked():
            return self._index.witness(s, t)

    def __contains__(self, v: Vertex) -> bool:
        with self._rwlock.read_locked():
            return v in self._index

    def query_batch(self, pairs: Iterable[Pair]) -> list[bool]:
        """Answer many queries under one read-lock acquisition.

        Duplicate pairs are answered once; results come back in input
        order.  This is the high-throughput entry point: one lock
        round-trip and one epoch read for the whole batch.
        """
        pairs = list(pairs)
        unique: dict[Pair, bool] = dict.fromkeys(pairs)  # insertion-ordered
        start = time.perf_counter()
        with self._rwlock.read_locked():
            epoch = self._epoch.value
            for pair in unique:
                unique[pair] = self._answer_locked(pair[0], pair[1], epoch)
        self._metrics.query_latency.record(time.perf_counter() - start)
        self._metrics.incr("queries", len(pairs))
        self._metrics.incr("batch_calls")
        self._metrics.incr("batch_dedup_saved", len(pairs) - len(unique))
        return [unique[pair] for pair in pairs]

    def _answer_locked(self, s: Vertex, t: Vertex, epoch: int) -> bool:
        """Cache-through lookup; caller must hold the read lock."""
        key = (s, t)
        cached = self._cache.get(key, epoch)
        if cached is not MISS:
            return cached  # type: ignore[return-value]
        answer = self._index.query(s, t)
        self._cache.put(key, epoch, answer)
        return answer

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def submit_update(self, op: UpdateOp) -> None:
        """Queue one mutation; flush if the threshold is reached."""
        self._queue.submit(op)
        if len(self._queue) >= self._flush_threshold:
            self.flush()

    def insert_vertex(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> None:
        """Queue a vertex insertion (convenience for :meth:`submit_update`)."""
        self.submit_update(UpdateOp.insert_vertex(v, in_neighbors, out_neighbors))

    def delete_vertex(self, v: Vertex) -> None:
        """Queue a vertex deletion."""
        self.submit_update(UpdateOp.delete_vertex(v))

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Queue an edge insertion."""
        self.submit_update(UpdateOp.insert_edge(tail, head))

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Queue an edge deletion."""
        self.submit_update(UpdateOp.delete_edge(tail, head))

    def flush(self) -> int:
        """Drain the queue and apply the batch; return ops applied.

        Invalid operations (e.g. deleting a vertex that never existed)
        are rejected individually — counted in the ``updates_rejected``
        metric, without bumping the epoch or aborting the rest of the
        batch.
        """
        with self._flush_mutex:
            batch = self._queue.drain()
            if not batch:
                return 0
            applied = 0
            start = time.perf_counter()
            with self._rwlock.write_locked():
                for op in batch:
                    try:
                        op.apply(self._index)
                    except ReproError:
                        self._metrics.incr("updates_rejected")
                        continue
                    epoch = self._epoch.bump()
                    if self._applied is not None:
                        self._applied.append((epoch, op))
                    applied += 1
            elapsed = time.perf_counter() - start
        self._metrics.batch_apply_latency.record(elapsed)
        self._metrics.batch_size.record(len(batch))
        self._metrics.incr("updates_applied", applied)
        return applied

    def reduce_labels(self, *, max_rounds: int = 1):
        """Flush pending updates, then run Section-6 label reduction.

        The reduction rewrites labels in place, so it runs under the
        write lock and bumps the epoch like any other mutation.
        """
        self.flush()
        with self._flush_mutex, self._rwlock.write_locked():
            report = self._index.reduce_labels(max_rounds=max_rounds)
            self._epoch.bump()
            self._metrics.incr("reductions")
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current index version (number of successful mutations)."""
        return self._epoch.value

    @property
    def metrics(self) -> ServiceMetrics:
        """The live metrics recorder."""
        return self._metrics

    @property
    def registry(self) -> MetricRegistry:
        """The metric registry everything records into.

        Hand this to :func:`repro.obs.trace.enable` to route core spans
        into the same snapshot, or to
        :func:`repro.obs.export.render_prometheus` to scrape it.
        """
        return self._metrics.registry

    @property
    def cache(self) -> EpochLRUCache:
        """The query-result cache (shared; treat as read-only)."""
        return self._cache

    @property
    def queue_depth(self) -> int:
        """Number of updates waiting to be applied."""
        return len(self._queue)

    @property
    def applied_ops(self) -> list[tuple[int, UpdateOp]]:
        """The ``(epoch, op)`` log (requires ``record_applied=True``)."""
        if self._applied is None:
            raise ValueError(
                "construct the service with record_applied=True to keep "
                "the applied-op log"
            )
        return list(self._applied)

    @property
    def num_vertices(self) -> int:
        """Vertex count of the served graph (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the served graph (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.num_edges

    def size(self) -> int:
        """Label count ``|L|`` of the underlying index (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.size()

    def size_bytes(self) -> int:
        """Label payload bytes of the underlying index (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.size_bytes()

    def snapshot(self) -> dict:
        """All serving metrics as one nested dict (cheap; lock-light).

        Keys: ``epoch``, ``queue``, ``cache``, ``counters`` (plain
        ``name -> int``), and the three recorder summaries
        (``query_latency``, ``batch_apply_latency``, ``batch_size``).
        For the full cross-layer view — including core spans when
        tracing is enabled — snapshot :attr:`registry` instead.
        """
        return {
            "epoch": self.epoch,
            "queue": self._queue.stats(),
            "cache": self._cache.stats(),
            **self._metrics.snapshot(),
        }

    # ------------------------------------------------------------------
    # Context manager: flush on exit
    # ------------------------------------------------------------------

    def __enter__(self) -> "ReachabilityService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(epoch={self.epoch}, "
            f"queue_depth={self.queue_depth}, "
            f"cache={self._cache!r})"
        )
