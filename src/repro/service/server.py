"""`ReachabilityService` — concurrent serving facade over the index.

Lock discipline
---------------

One writer-preferring :class:`~repro.service.concurrency.RWLock` guards
the index:

* **Queries** take the read lock, read the epoch, consult the cache and
  (on a miss) the index, all inside one read-locked section — so the
  answer, the epoch stamp and the cache entry are mutually consistent.
  :meth:`ReachabilityService.query_batch` answers a whole deduplicated
  batch under a single acquisition.
* **Updates** never touch the index directly: they are submitted to a
  :class:`~repro.service.updates.CoalescingUpdateQueue` and applied by
  whichever thread triggers a flush — the whole drained batch inside one
  write-locked critical section, with the epoch bumped once per
  *successful* mutation.  A ``flush_threshold`` of 1 (the default) makes
  every update apply immediately; larger thresholds trade staleness for
  update throughput (fewer lock round-trips, more coalescing).
* A separate writer mutex serializes flushers, so two threads calling
  :meth:`flush` concurrently cannot interleave their batches.

Because cached answers are epoch-stamped and every write bumps the epoch,
a query can never return an answer computed against a different graph
version than the one it reports — the invariant the stress test
(``tests/service/test_concurrency.py``) checks against a BFS oracle.

Robustness (see ``docs/robustness.md``)
---------------------------------------

The service additionally keeps a **mirror**: a plain
:class:`~repro.graph.digraph.DiGraph` copy of the served graph, updated
under its own small ``_mirror_lock`` (nested inside the write lock, with
the epoch bump inside the mirror lock so mirror state and epoch move
together).  The mirror powers three things:

* **degraded mode** — when :attr:`degraded` is set (a failed self-audit,
  an operator call, or mid-recovery), queries are answered by
  bidirectional BFS over the mirror instead of the index: slower but
  correct by Definition 1, and never blocked behind the write lock;
* **per-query deadlines** — with ``query_deadline`` set, a query that
  cannot take the read lock in time falls back to the same BFS path
  rather than stalling behind a long writer (counted in
  ``degraded_queries``);
* **checkpoints and self-audit** — the mirror is the state that
  checkpoints snapshot, and the reference the sampled Definition-1
  audit compares index answers against.

Durability is optional: pass a
:class:`~repro.service.durability.DurabilityManager` and every drained
batch is appended to its write-ahead log (and synced, per its fsync
policy) *before* any op touches the index, with periodic checkpoints
covering the WAL prefix.  :meth:`ReachabilityService.recover` rebuilds a
service from that directory after a crash.  Failing ops are governed by
a :class:`~repro.service.faults.FaultPolicy`: deterministic rejections
(:class:`~repro.errors.ReproError`) are counted and skipped as before;
anything else is retried with backoff and then quarantined, so a poison
update never wedges the writer or blocks readers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Hashable, Iterable
from pathlib import Path
from random import Random
from typing import Optional, Union

from ..core.index import ReachabilityIndex
from ..errors import ReproError, UnknownVertexError
from ..graph.digraph import DiGraph
from ..graph.traversal import bidirectional_reachable
from ..obs import trace as obs_trace
from ..obs.flight import FlightRecorder
from ..obs.health import collect_health
from ..obs.registry import MetricRegistry
from .cache import MISS, EpochLRUCache
from .concurrency import EpochCounter, RWLock
from .durability import DurabilityManager, RecoveryReport, recover_state
from .faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultPolicy,
    QuarantinedUpdate,
)
from .metrics import ServiceMetrics
from .updates import CoalescingUpdateQueue, UpdateOp

__all__ = ["ReachabilityService"]

Vertex = Hashable
Pair = tuple[Vertex, Vertex]


class ReachabilityService:
    """Thread-safe reachability serving over a dynamic graph.

    Parameters
    ----------
    graph:
        Starting graph (cycles allowed); an internal
        :class:`~repro.core.index.ReachabilityIndex` is built over a copy.
        Pass ``index=`` instead to adopt a prebuilt one.
    index:
        A ready :class:`ReachabilityIndex` to serve.  The service becomes
        its owner: mutating it from outside afterwards breaks the epoch
        bookkeeping.
    engine:
        Update-kernel engine for the internal index (``"csr"`` flat
        kernels by default; ``"object"`` legacy path).  Ignored when
        ``index=`` is passed.
    cache_size:
        Capacity of the query-result LRU (0 disables caching).
    flush_threshold:
        Apply queued updates as soon as this many are pending.  1 =
        write-through; larger values batch and coalesce.
    record_applied:
        Keep an in-order log of ``(epoch, op)`` for every successfully
        applied mutation, readable via :attr:`applied_ops`.  Used by the
        oracle tests to reconstruct the graph at any epoch; off by
        default (it grows without bound).
    registry:
        A :class:`~repro.obs.registry.MetricRegistry` to record into
        (default: a fresh private one).  The service registers its
        counters/histograms under ``service.*``, the cache's live stats
        under ``cache.*``, and index-size gauges under ``index.*``.
        Point :func:`repro.obs.trace.enable` at the same registry
        (:attr:`registry`) and one snapshot additionally carries the
        core-algorithm spans — cache hit-rate through label churn.
    durability:
        A :class:`~repro.service.durability.DurabilityManager`; when set,
        every drained batch is WAL-logged before it is applied and
        checkpoints are taken per the manager's cadence.
    fault_policy:
        Retry/quarantine policy for non-deterministic op failures
        (default :class:`~repro.service.faults.FaultPolicy`).
    injector:
        Fault injector whose named crash points the apply loop fires
        (default: the shared no-op injector).
    query_deadline:
        Seconds a query may wait for the read lock before answering from
        the mirror in degraded mode (``None`` = wait forever).
    audit_interval:
        Run a sampled Definition-1 self-audit every this many flushed
        batches (0 = only when :meth:`self_audit` is called explicitly).
    audit_samples:
        Vertex pairs checked per audit.

    Examples
    --------
    >>> g = DiGraph(edges=[("a", "b"), ("b", "c")])
    >>> service = ReachabilityService(g)
    >>> service.query("a", "c")
    True
    >>> service.submit_update(UpdateOp.delete_vertex("b"))
    >>> service.query("a", "c")
    False
    >>> service.epoch
    1
    """

    def __init__(
        self,
        graph: Optional[DiGraph] = None,
        *,
        index: Optional[ReachabilityIndex] = None,
        cache_size: int = 4096,
        flush_threshold: int = 1,
        order: Union[str, object] = "butterfly-u",
        engine: str = "csr",
        record_applied: bool = False,
        registry: Optional[MetricRegistry] = None,
        durability: Optional[DurabilityManager] = None,
        fault_policy: Optional[FaultPolicy] = None,
        injector: FaultInjector = NULL_INJECTOR,
        query_deadline: Optional[float] = None,
        audit_interval: int = 0,
        audit_samples: int = 16,
        flight: Optional["FlightRecorder"] = None,
    ) -> None:
        if index is not None and graph is not None:
            raise ValueError("pass either graph or index, not both")
        if flush_threshold < 1:
            raise ValueError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        if query_deadline is not None and query_deadline <= 0:
            raise ValueError(
                f"query_deadline must be positive, got {query_deadline}"
            )
        if audit_interval < 0:
            raise ValueError(
                f"audit_interval must be >= 0, got {audit_interval}"
            )
        self._index = (
            index
            if index is not None
            else ReachabilityIndex(graph, order=order, engine=engine)
        )
        self._order = order
        self._engine = engine
        self._rwlock = RWLock()
        self._epoch = EpochCounter()
        self._cache = EpochLRUCache(cache_size)
        self._queue = CoalescingUpdateQueue()
        self._flush_threshold = flush_threshold
        self._flush_mutex = threading.Lock()
        self._flushes = 0
        self._metrics = ServiceMetrics(registry)
        self._cache.bind_registry(self._metrics.registry)

        # Robustness state: mirror graph, degraded flag, fault handling.
        self._mirror = self._index.condensation.graph.copy()
        self._mirror_lock = threading.Lock()
        self._degraded = threading.Event()
        self._policy = fault_policy if fault_policy is not None else FaultPolicy()
        self._injector = injector
        self._query_deadline = query_deadline
        self._audit_interval = audit_interval
        self._audit_samples = audit_samples
        self._quarantined: deque[QuarantinedUpdate] = deque(
            maxlen=self._policy.max_quarantined
        )
        self._durability = durability
        self._last_recovery: Optional[RecoveryReport] = None
        # Post-mortem flight recorder (see repro.obs.flight): when wired,
        # the service auto-dumps its timeline on degraded-mode entry,
        # quarantine and recovery.  Trace ids submitted with updates are
        # remembered (keyed by op identity) until the op is flushed, so
        # WAL records and quarantine entries carry the originating
        # batch's trace.
        self._flight = flight
        self._op_traces: dict[int, str] = {}

        reg = self._metrics.registry
        if durability is not None:
            durability.bind_registry(reg)
            # A fresh durability directory under a non-empty starting
            # graph needs a baseline checkpoint: the WAL only carries
            # *updates*, so without one, recovery would replay onto an
            # empty graph and silently lose the base state.
            if (
                durability.wal.last_seq == 0
                and durability.checkpointed_seq == 0
                and not durability.checkpoints.paths()
                and self._mirror.num_vertices
            ):
                durability.checkpoint(
                    self._mirror.copy(), {"wal_seq": 0, "epoch": 0}
                )
        # Pre-create the robustness counters so they are visible (at 0)
        # in `repro metrics` before anything goes wrong.
        for name in (
            "degraded.queries",
            "updates.quarantined",
            "recovery.replayed_records",
            "wal.records_appended",
            "wal.fsyncs",
        ):
            reg.counter(name)
        reg.register_callback(
            "service.degraded", lambda: int(self._degraded.is_set())
        )
        reg.register_callback(
            "service.quarantine_depth", lambda: len(self._quarantined)
        )
        reg.register_callback("service.epoch", lambda: self._epoch.value)
        # Gauge callbacks run inside registry.snapshot(), i.e. on the
        # metrics-scrape path — they must never park behind a stuck or
        # long-running writer (scraping is how you *notice* a stuck
        # writer).  Vertex count comes from the mirror; the label count
        # try-locks and falls back to the last value it managed to read.
        self._size_gauge = self._index.size()
        reg.register_callback("index.size", self._gauge_size)
        reg.register_callback(
            "index.num_vertices", self._gauge_num_vertices
        )
        self._applied: Optional[list[tuple[int, UpdateOp]]] = (
            [] if record_applied else None
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory,
        *,
        fsync: str = "batch",
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
        injector: FaultInjector = NULL_INJECTOR,
        **service_kwargs,
    ) -> "ReachabilityService":
        """Rebuild a service from a durability directory after a crash.

        Loads the newest valid checkpoint, replays the WAL suffix onto
        it (:func:`~repro.service.durability.recover_state`), rebuilds
        the index from the recovered graph, and returns a service wired
        to the same directory so logging continues where it left off.
        The report is kept on :attr:`last_recovery`, and the number of
        replayed records lands in the ``recovery_replayed_records``
        counter.
        """
        report = recover_state(directory, fsync=fsync, injector=injector)
        durability = DurabilityManager(
            directory,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            injector=injector,
        )
        service = cls(
            report.graph,
            durability=durability,
            injector=injector,
            **service_kwargs,
        )
        service._last_recovery = report
        service._metrics.registry.incr(
            "recovery.replayed_records", report.replayed
        )
        if service._flight is not None:
            service._flight.auto_dump(
                "recovery",
                replayed=report.replayed,
                skipped=report.skipped,
            )
        return service

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` against the current index version."""
        return self.query_with_epoch(s, t)[0]

    def query_with_epoch(self, s: Vertex, t: Vertex) -> tuple[bool, int]:
        """Answer ``s -> t`` and report the epoch the answer is valid at.

        The epoch is read under the same read-lock hold that computes (or
        fetches) the answer, so the pair is consistent even while a writer
        is waiting.  In degraded mode — or when ``query_deadline`` expires
        before the read lock is free — the answer comes from bidirectional
        BFS over the mirror instead, under the mirror lock, with the same
        (answer, epoch) consistency.
        """
        start = time.perf_counter()
        if self._degraded.is_set():
            answer, epoch = self._answer_degraded(s, t)
        elif not self._rwlock.acquire_read(timeout=self._query_deadline):
            answer, epoch = self._answer_degraded(s, t)
        else:
            try:
                epoch = self._epoch.value
                answer = self._answer_locked(s, t, epoch)
            finally:
                self._rwlock.release_read()
        self._metrics.query_latency.record(time.perf_counter() - start)
        self._metrics.incr("queries")
        return answer, epoch

    def query_many(self, pairs: Iterable[Pair]) -> list[bool]:
        """Answer a batch of queries, in input order.

        :class:`~repro.core.protocols.ReachabilityQuerier` spelling of
        :meth:`query_batch` (same single-acquisition, deduplicated path).
        """
        return self.query_batch(pairs)

    def witness(self, s: Vertex, t: Vertex) -> Optional[Vertex]:
        """Return one vertex on some ``s ⇝ t`` path, or ``None``.

        Witnesses are not cached (they are not epoch-stamped booleans);
        the lookup runs against the index under the read lock.
        """
        with self._rwlock.read_locked():
            return self._index.witness(s, t)

    def __contains__(self, v: Vertex) -> bool:
        if self._degraded.is_set():
            with self._mirror_lock:
                return self._mirror.has_vertex(v)
        with self._rwlock.read_locked():
            return v in self._index

    def query_batch(self, pairs: Iterable[Pair]) -> list[bool]:
        """Answer many queries under one read-lock acquisition.

        Duplicate pairs are answered once; results come back in input
        order.  This is the high-throughput entry point: one lock
        round-trip and one epoch read for the whole batch.  Degraded
        mode and deadline expiry fall back to the mirror, one mirror-lock
        hold for the whole batch.
        """
        return self.query_batch_with_epoch(pairs)[0]

    def query_batch_with_epoch(
        self, pairs: Iterable[Pair], *, timings: Optional[dict] = None
    ) -> tuple[list[bool], int, bool]:
        """:meth:`query_batch` plus the consistency metadata.

        Returns ``(answers, epoch, degraded)``: the answers in input
        order, the epoch they are valid at, and whether they came from
        the degraded mirror-BFS path instead of the index.  The network
        front end uses this to stamp every reply envelope.

        When *timings* is a dict, the call takes the instrumented path
        and fills it in place with the stage breakdown the tracing tier
        reports per reply: ``lock_ms`` (read-lock wait), ``probe_ms``
        (cache + index time), ``cache_hits`` / ``cache_misses``, and
        ``degraded``.  The default ``timings=None`` path is byte-for-byte
        the pre-instrumentation hot path — the disabled-path overhead
        budget (benchmarks/bench_obs_overhead.py) depends on that.
        """
        if timings is not None:
            return self._query_batch_timed(pairs, timings)
        pairs = list(pairs)
        unique: dict[Pair, bool] = dict.fromkeys(pairs)  # insertion-ordered
        start = time.perf_counter()
        degraded = False
        if self._degraded.is_set() or not self._rwlock.acquire_read(
            timeout=self._query_deadline
        ):
            degraded = True
            with self._mirror_lock:
                epoch = self._epoch.value
                for pair in unique:
                    unique[pair] = bidirectional_reachable(
                        self._mirror, pair[0], pair[1]
                    )
            self._metrics.registry.incr("degraded.queries", len(pairs))
        else:
            try:
                epoch = self._epoch.value
                for pair in unique:
                    unique[pair] = self._answer_locked(pair[0], pair[1], epoch)
            finally:
                self._rwlock.release_read()
        self._metrics.query_latency.record(time.perf_counter() - start)
        self._metrics.incr("queries", len(pairs))
        self._metrics.incr("batch_calls")
        self._metrics.incr("batch_dedup_saved", len(pairs) - len(unique))
        return [unique[pair] for pair in pairs], epoch, degraded

    def _query_batch_timed(
        self, pairs: Iterable[Pair], timings: dict
    ) -> tuple[list[bool], int, bool]:
        """The instrumented twin of :meth:`query_batch_with_epoch`.

        Same semantics (one lock acquisition, deduplicated probes,
        mirror fallback), but every stage is clocked into *timings* so
        the network front end can hand the breakdown back to a traced
        client.  Kept separate so the untimed path stays free of the
        extra ``perf_counter`` calls and bookkeeping.
        """
        pairs = list(pairs)
        unique: dict[Pair, bool] = dict.fromkeys(pairs)
        start = time.perf_counter()
        degraded = False
        hits = 0
        if self._degraded.is_set():
            acquired = False
        else:
            acquired = self._rwlock.acquire_read(timeout=self._query_deadline)
        lock_done = time.perf_counter()
        if not acquired:
            degraded = True
            with self._mirror_lock:
                epoch = self._epoch.value
                for pair in unique:
                    unique[pair] = bidirectional_reachable(
                        self._mirror, pair[0], pair[1]
                    )
            self._metrics.registry.incr("degraded.queries", len(pairs))
        else:
            try:
                epoch = self._epoch.value
                cache = self._cache
                for pair in unique:
                    cached = cache.get(pair, epoch)
                    if cached is not MISS:
                        hits += 1
                        unique[pair] = cached
                    else:
                        answer = self._index.query(pair[0], pair[1])
                        cache.put(pair, epoch, answer)
                        unique[pair] = answer
            finally:
                self._rwlock.release_read()
        end = time.perf_counter()
        timings["lock_ms"] = round((lock_done - start) * 1e3, 4)
        timings["probe_ms"] = round((end - lock_done) * 1e3, 4)
        timings["cache_hits"] = hits
        timings["cache_misses"] = 0 if degraded else len(unique) - hits
        timings["degraded"] = degraded
        self._metrics.query_latency.record(end - start)
        self._metrics.incr("queries", len(pairs))
        self._metrics.incr("batch_calls")
        self._metrics.incr("batch_dedup_saved", len(pairs) - len(unique))
        return [unique[pair] for pair in pairs], epoch, degraded

    def _answer_locked(self, s: Vertex, t: Vertex, epoch: int) -> bool:
        """Cache-through lookup; caller must hold the read lock."""
        key = (s, t)
        cached = self._cache.get(key, epoch)
        if cached is not MISS:
            return cached  # type: ignore[return-value]
        answer = self._index.query(s, t)
        self._cache.put(key, epoch, answer)
        return answer

    def _answer_degraded(self, s: Vertex, t: Vertex) -> tuple[bool, int]:
        """BFS over the mirror — correct by Definition 1, index-free.

        Runs under the mirror lock, where the writer also bumps the
        epoch, so the (answer, epoch) pair stays consistent.  Answers
        are not cached (they would poison the cache for the epoch).
        """
        with self._mirror_lock:
            epoch = self._epoch.value
            answer = bidirectional_reachable(self._mirror, s, t)
        self._metrics.registry.incr("degraded.queries")
        return answer, epoch

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def submit_update(
        self,
        op: UpdateOp,
        *,
        validate: bool = True,
        trace_id: Optional[str] = None,
    ) -> None:
        """Queue one mutation; flush if the threshold is reached.

        With ``validate=True`` (the default), an op referencing a vertex
        that neither exists nor is pending insertion is rejected *here*
        with :class:`~repro.errors.UnknownVertexError`, before it ever
        enters the queue — the caller gets the error on the submitting
        thread instead of a silent apply-time rejection counted in a
        metric.  Apply-time rejection still backstops races (a vertex
        deleted by another writer between validation and apply).

        *trace_id* tags the op with the request trace it arrived under;
        the tag follows the op into its WAL record, any retry/quarantine
        events, and the quarantine log entry, so a failed update can be
        walked back to the client call that sent it.
        """
        if validate:
            self._validate_refs(op)
        if trace_id is not None:
            if len(self._op_traces) > 4096:
                # Ops coalesced away in the queue never reach a flush,
                # so their tags would otherwise accumulate forever.
                self._op_traces.clear()
            self._op_traces[id(op)] = trace_id
        self._queue.submit(op)
        if len(self._queue) >= self._flush_threshold:
            self.flush()

    def _validate_refs(self, op: UpdateOp) -> None:
        """Raise :class:`UnknownVertexError` for dangling references.

        The membership view is the mirror (all applied ops) adjusted by
        the pending queue in submission order, so a queued-but-unapplied
        ``insert_vertex`` already satisfies references and a queued
        ``delete_vertex`` already invalidates them.
        """
        refs = op.referenced_vertices()
        if not refs:
            return
        added: set[Vertex] = set()
        removed: set[Vertex] = set()
        for pending in self._queue.pending_ops():
            if pending.kind == "insert_vertex":
                added.add(pending.vertex)
                removed.discard(pending.vertex)
            elif pending.kind == "delete_vertex":
                removed.add(pending.vertex)
                added.discard(pending.vertex)
        with self._mirror_lock:
            for v in refs:
                if v in removed or (
                    v not in added and not self._mirror.has_vertex(v)
                ):
                    raise UnknownVertexError(v)

    def apply(
        self,
        op: UpdateOp,
        *,
        validate: bool = True,
        trace_id: Optional[str] = None,
    ) -> None:
        """Queue one :class:`~repro.core.ops.UpdateOp`.

        The unified write entry point: the named convenience methods
        (:meth:`insert_vertex` …) all construct an :class:`UpdateOp` and
        route through here, and :meth:`apply_batch` loops over it.
        Equivalent to :meth:`submit_update` (kept as the historical
        name); passing anything other than an :class:`UpdateOp` — raw
        tuples or wire dicts — is not supported.
        """
        self.submit_update(op, validate=validate, trace_id=trace_id)

    def apply_batch(
        self,
        ops: Iterable[UpdateOp],
        *,
        validate: bool = True,
        trace_id: Optional[str] = None,
    ) -> int:
        """Queue every op in *ops*, then flush; return ops accepted.

        Validation failures (:class:`~repro.errors.UnknownVertexError`)
        raise on the offending op, leaving earlier ops queued — call
        :meth:`flush` (or submit more ops) to land them.  *trace_id*
        tags every op in the batch (see :meth:`submit_update`).
        """
        accepted = 0
        for op in ops:
            self.apply(op, validate=validate, trace_id=trace_id)
            accepted += 1
        self.flush()
        return accepted

    def insert_vertex(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> None:
        """Queue a vertex insertion (convenience for :meth:`apply`)."""
        self.apply(UpdateOp.insert_vertex(v, in_neighbors, out_neighbors))

    def delete_vertex(self, v: Vertex) -> None:
        """Queue a vertex deletion."""
        self.apply(UpdateOp.delete_vertex(v))

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Queue an edge insertion."""
        self.apply(UpdateOp.insert_edge(tail, head))

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Queue an edge deletion."""
        self.apply(UpdateOp.delete_edge(tail, head))

    def flush(self) -> int:
        """Drain the queue and apply the batch; return ops applied.

        The full sequence, per batch: WAL-log every op (when durability
        is configured) and sync once; apply under the write lock with
        per-op retry/quarantine; mirror each success and bump the epoch
        under the mirror lock; then maybe checkpoint.  Invalid
        operations (:class:`ReproError` — e.g. deleting a vertex that
        never existed) are rejected individually and counted in
        ``updates_rejected``; non-deterministic failures are retried per
        the :class:`~repro.service.faults.FaultPolicy` and quarantined
        on exhaustion (``updates_quarantined``) — either way the rest of
        the batch proceeds and readers never wait on a poison op.
        """
        with self._flush_mutex:
            batch = self._queue.drain()
            if not batch:
                return 0
            traces = {
                id(op): self._op_traces.pop(id(op), None) for op in batch
            }
            if self._durability is not None:
                batch = self._log_batch(batch, traces)
                if not batch:
                    return 0
            applied = 0
            start = time.perf_counter()
            with self._rwlock.write_locked():
                for op in batch:
                    epoch = self._apply_one(op, traces.get(id(op)))
                    if epoch is None:
                        continue
                    if self._applied is not None:
                        self._applied.append((epoch, op))
                    applied += 1
            elapsed = time.perf_counter() - start
            if self._durability is not None and applied:
                self._maybe_checkpoint()
            self._flushes += 1
            flushes = self._flushes
        self._metrics.batch_apply_latency.record(elapsed)
        self._metrics.batch_size.record(len(batch))
        self._metrics.incr("updates_applied", applied)
        if self._audit_interval and flushes % self._audit_interval == 0:
            self.self_audit(self._audit_samples)
        return applied

    def _apply_one(
        self, op: UpdateOp, trace_id: Optional[str] = None
    ) -> Optional[int]:
        """Apply one op under the write lock; return its epoch or ``None``.

        ``None`` means the op took no effect: a deterministic rejection
        (counted) or quarantine after the policy's retries ran out.
        """
        attempts = 0
        while True:
            try:
                self._injector.fire("service.apply")
                op.apply(self._index)
            except ReproError:
                self._metrics.incr("updates_rejected")
                return None
            except Exception as exc:  # noqa: BLE001 - the quarantine boundary
                attempts += 1
                if attempts > self._policy.max_retries:
                    self._quarantine(op, exc, attempts, trace_id)
                    return None
                obs_trace.event(
                    "service.retry",
                    attempt=attempts,
                    trace=trace_id,
                    kind=op.kind,
                )
                # Backoff while holding the write lock: releasing it
                # mid-batch would expose a half-applied batch, so the
                # policy keeps these waits in the low milliseconds.
                time.sleep(self._policy.backoff_base * (2 ** (attempts - 1)))
                continue
            with self._mirror_lock:
                op.apply_to_graph(self._mirror)
                return self._epoch.bump()

    def _log_batch(
        self, batch: list[UpdateOp], traces: dict[int, Optional[str]]
    ) -> list[UpdateOp]:
        """WAL-append the batch (with retry/quarantine) and sync once.

        Returns the ops that were durably logged; an op whose append
        keeps failing is quarantined *before* apply, so the in-memory
        state never runs ahead of the log.  Each record is stamped with
        the op's originating trace id (when one was submitted), so WAL
        replay events after a crash name the batch that wrote them.
        """
        wal = self._durability.wal
        survivors: list[UpdateOp] = []
        for op in batch:
            trace_id = traces.get(id(op))
            attempts = 0
            while True:
                try:
                    wal.append(op, trace=trace_id)
                except OSError as exc:
                    attempts += 1
                    if attempts > self._policy.max_retries:
                        self._quarantine(op, exc, attempts, trace_id)
                        break
                    obs_trace.event(
                        "service.wal_retry",
                        attempt=attempts,
                        trace=trace_id,
                        kind=op.kind,
                    )
                    time.sleep(
                        self._policy.backoff_base * (2 ** (attempts - 1))
                    )
                    continue
                survivors.append(op)
                break
        try:
            wal.sync()
        except OSError:
            # Records are flushed (process-crash durable) but not synced;
            # keep serving rather than losing the drained batch.
            self._metrics.registry.incr("wal.sync_errors")
        return survivors

    def _quarantine(
        self,
        op: UpdateOp,
        exc: Exception,
        attempts: int,
        trace_id: Optional[str] = None,
    ) -> None:
        self._quarantined.append(
            QuarantinedUpdate(
                op=op, error=repr(exc), attempts=attempts, trace_id=trace_id
            )
        )
        self._metrics.registry.incr("updates.quarantined")
        obs_trace.event(
            "service.quarantined",
            attempts=attempts,
            trace=trace_id,
            kind=op.kind,
        )
        if self._flight is not None:
            self._flight.auto_dump(
                "quarantine", kind=op.kind, trace=trace_id, error=repr(exc)
            )

    def _maybe_checkpoint(self) -> None:
        """Hand the manager a mirror snapshot; called under the flush mutex."""
        with self._mirror_lock:
            snapshot = self._mirror.copy()
            meta = {
                "wal_seq": self._durability.wal.last_seq,
                "epoch": self._epoch.value,
            }
        try:
            self._durability.maybe_checkpoint(snapshot, meta)
        except OSError:
            self._metrics.registry.incr("checkpoint.errors")

    def checkpoint(self) -> Path:
        """Flush, then force a checkpoint covering the current WAL position."""
        if self._durability is None:
            raise ValueError("service has no durability manager")
        self.flush()
        with self._flush_mutex:
            with self._mirror_lock:
                snapshot = self._mirror.copy()
                meta = {
                    "wal_seq": self._durability.wal.last_seq,
                    "epoch": self._epoch.value,
                }
            return self._durability.checkpoint(snapshot, meta)

    def reduce_labels(self, *, max_rounds: int = 1):
        """Flush pending updates, then run Section-6 label reduction.

        The reduction rewrites labels in place, so it runs under the
        write lock and bumps the epoch like any other mutation.
        """
        self.flush()
        with self._flush_mutex, self._rwlock.write_locked():
            report = self._index.reduce_labels(max_rounds=max_rounds)
            with self._mirror_lock:
                self._epoch.bump()
            self._metrics.incr("reductions")
        return report

    # ------------------------------------------------------------------
    # Degraded mode, audit, rebuild
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether queries are currently served from the mirror BFS path."""
        return self._degraded.is_set()

    def enter_degraded(self) -> None:
        """Route queries through the mirror until :meth:`exit_degraded`.

        Operators (and :meth:`self_audit`) flip this when the index is
        suspect or a long write-side operation is in flight; readers
        keep getting correct answers, just without the index speedup.
        """
        self._trip_degraded("operator")

    def exit_degraded(self) -> None:
        """Resume serving from the index."""
        self._degraded.clear()

    def _trip_degraded(self, reason: str) -> None:
        """Enter degraded mode; on the edge, dump the flight recorder.

        The dump captures the metric timeline *leading up to* the
        transition — the whole point of the ring buffer — so it fires
        only on the clear→set edge, not on repeated entries.
        """
        already = self._degraded.is_set()
        self._degraded.set()
        if not already:
            obs_trace.event("service.degraded_enter", reason=reason)
            if self._flight is not None:
                self._flight.auto_dump("degraded", reason=reason)

    def self_audit(self, samples: Optional[int] = None, *, seed: int = 0) -> bool:
        """Sampled Definition-1 audit: does the index agree with BFS?

        Draws vertex pairs from the mirror and compares the index's
        answer with bidirectional BFS over the mirror — the definition
        the index is supposed to encode.  Any disagreement flips the
        service into degraded mode (readers instantly fall back to the
        correct path) and returns ``False``; call :meth:`rebuild_index`
        to repair and resume.  Runs under the flush mutex so no writer
        moves the state between the two reads.
        """
        samples = self._audit_samples if samples is None else samples
        rng = Random(seed)
        with self._flush_mutex:
            with self._mirror_lock:
                vertices = list(self._mirror.vertices())
            if len(vertices) < 2:
                self._metrics.registry.incr("service.audits")
                return True
            for _ in range(samples):
                s = rng.choice(vertices)
                t = rng.choice(vertices)
                with self._rwlock.read_locked():
                    try:
                        got = self._index.query(s, t)
                    except ReproError:
                        got = None
                with self._mirror_lock:
                    try:
                        want = bidirectional_reachable(self._mirror, s, t)
                    except ReproError:
                        want = None
                if got != want:
                    self._trip_degraded("audit_failure")
                    self._metrics.registry.incr("service.audit_failures")
                    return False
        self._metrics.registry.incr("service.audits")
        return True

    def rebuild_index(self) -> int:
        """Rebuild the index from the mirror and leave degraded mode.

        The rebuild happens off the write lock (readers keep going —
        degraded readers on the mirror, healthy ones on the old index);
        only the final swap takes it.  Returns the post-swap epoch.
        """
        with self._flush_mutex:
            with self._mirror_lock:
                snapshot = self._mirror.copy()
            new_index = ReachabilityIndex(
                snapshot, order=self._order, engine=self._engine
            )
            with self._rwlock.write_locked():
                self._index = new_index
                with self._mirror_lock:
                    epoch = self._epoch.bump()
            self._degraded.clear()
            self._metrics.registry.incr("service.rebuilds")
        return epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current index version (number of successful mutations)."""
        return self._epoch.value

    @property
    def metrics(self) -> ServiceMetrics:
        """The live metrics recorder."""
        return self._metrics

    @property
    def registry(self) -> MetricRegistry:
        """The metric registry everything records into.

        Hand this to :func:`repro.obs.trace.enable` to route core spans
        into the same snapshot, or to
        :func:`repro.obs.export.render_prometheus` to scrape it.
        """
        return self._metrics.registry

    @property
    def cache(self) -> EpochLRUCache:
        """The query-result cache (shared; treat as read-only)."""
        return self._cache

    @property
    def queue_depth(self) -> int:
        """Number of updates waiting to be applied."""
        return len(self._queue)

    @property
    def quarantined(self) -> tuple[QuarantinedUpdate, ...]:
        """Updates given up on after retries (newest last, bounded)."""
        return tuple(self._quarantined)

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The durability manager, when crash safety is configured."""
        return self._durability

    @property
    def last_recovery(self) -> Optional[RecoveryReport]:
        """The report from :meth:`recover`, when this service came from one."""
        return self._last_recovery

    @property
    def applied_ops(self) -> list[tuple[int, UpdateOp]]:
        """The ``(epoch, op)`` log (requires ``record_applied=True``)."""
        if self._applied is None:
            raise ValueError(
                "construct the service with record_applied=True to keep "
                "the applied-op log"
            )
        return list(self._applied)

    @property
    def num_vertices(self) -> int:
        """Vertex count of the served graph (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the served graph (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.num_edges

    def size(self) -> int:
        """Label count ``|L|`` of the underlying index (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.size()

    def freeze_snapshot(self):
        """Consistent ``(frozen, component_of, epoch)`` triple for publishing.

        Taken under the read lock so the frozen index, the component map
        and the epoch describe the same instant; the shared-memory
        publisher (:class:`repro.shm.publisher.SnapshotPublisher`) packs
        this triple into an immutable segment for reader processes.
        """
        from ..core.frozen import freeze

        with self._rwlock.read_locked():
            epoch = self._epoch.value
            frozen = freeze(self._index.tol)
            component_of = dict(self._index.condensation.component_of)
        return frozen, component_of, epoch

    def size_bytes(self) -> int:
        """Label payload bytes of the underlying index (consistent read)."""
        with self._rwlock.read_locked():
            return self._index.size_bytes()

    def _gauge_num_vertices(self) -> int:
        with self._mirror_lock:
            return self._mirror.num_vertices

    def _gauge_size(self) -> int:
        if self._rwlock.acquire_read(timeout=0.05):
            try:
                self._size_gauge = self._index.size()
            finally:
                self._rwlock.release_read()
        return self._size_gauge

    def snapshot(self) -> dict:
        """All serving metrics as one nested dict (cheap; lock-light).

        Keys: ``epoch``, ``degraded``, ``quarantined``, ``queue``,
        ``cache``, ``counters`` (plain ``name -> int``), the three
        recorder summaries (``query_latency``, ``batch_apply_latency``,
        ``batch_size``), and — when durability is configured — ``wal``
        (seq position, appends, fsyncs, checkpoint coverage).  For the
        full cross-layer view — including core spans when tracing is
        enabled — snapshot :attr:`registry` instead.
        """
        out = {
            "epoch": self.epoch,
            "degraded": self.degraded,
            "quarantined": len(self._quarantined),
            "queue": self._queue.stats(),
            "cache": self._cache.stats(),
            **self._metrics.snapshot(),
        }
        if self._durability is not None:
            out["wal"] = self._durability.stats()
        if self._flight is not None:
            out["flight"] = self._flight.stats()
        return out

    def health(self) -> dict:
        """Live index-health payload (:func:`repro.obs.health.collect_health`).

        Label-size distribution, order-quality score, scratch high-water
        marks, WAL lag, checkpoint age — the ``health`` wire op and the
        ``repro health`` CLI both serve exactly this dict.
        """
        return collect_health(self)

    @property
    def flight(self) -> Optional[FlightRecorder]:
        """The wired flight recorder, when post-mortem capture is on."""
        return self._flight

    # ------------------------------------------------------------------
    # Context manager: flush on exit
    # ------------------------------------------------------------------

    def __enter__(self) -> "ReachabilityService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()
        if self._durability is not None:
            self._durability.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(epoch={self.epoch}, "
            f"queue_depth={self.queue_depth}, "
            f"degraded={self.degraded}, "
            f"cache={self._cache!r})"
        )
