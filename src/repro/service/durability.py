"""Crash safety for the serving layer: WAL, checkpoints, recovery.

The paper's index is an in-memory structure; a process crash loses it.
This module adds the standard database recipe around
:class:`~repro.service.server.ReachabilityService`:

* :class:`WriteAheadLog` — every update is appended as a length-prefixed,
  CRC32-checksummed JSON record *before* it is applied, under a
  configurable fsync policy (``always`` / ``batch`` / ``never``).
  Opening a WAL validates every record and truncates the first torn or
  corrupt tail — the normal aftermath of a crash mid-append.
* :class:`CheckpointStore` — periodic snapshots of the served graph via
  :func:`repro.core.serialize.save_checkpoint` (format-versioned,
  checksummed), written to a temp file and atomically renamed, with the
  newest few retained.  Loading walks newest-to-oldest past any corrupt
  file.
* :func:`recover_state` — the recovery path: load the newest *valid*
  checkpoint, then replay the WAL suffix (records with a sequence number
  beyond the checkpoint's coverage) on top of it.  The index itself is
  never persisted: it is rebuilt deterministically from the recovered
  graph, which is what the crash-matrix test verifies against a BFS
  oracle.

Sequence numbers are assigned by the WAL, start at 1, and survive
checkpoint trims (the file header records the trimmed base), so
``checkpoint coverage + WAL suffix`` always partitions the update
history.  An update is *durable* once its record is appended and synced;
an update is *acked* only when ``flush()`` returns — so a crash at any
named :data:`~repro.service.faults.CRASH_POINTS` site loses at most
un-acked updates, never acked ones (with ``fsync="always"``/``"batch"``).

All WAL/checkpoint I/O goes through the module's
:class:`~repro.service.faults.FaultInjector` crash points, which is what
makes the crash matrix deterministic.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..core.serialize import load_checkpoint, save_checkpoint
from ..errors import ReproError, SerializationError
from ..graph.digraph import DiGraph
from ..obs import trace as obs_trace
from .faults import NULL_INJECTOR, FaultInjector, InjectedCrash
from ..core.ops import UpdateOp

__all__ = [
    "FSYNC_POLICIES",
    "WriteAheadLog",
    "CheckpointStore",
    "DurabilityManager",
    "RecoveryReport",
    "recover_state",
]

PathLike = Union[str, Path]

#: When the WAL calls ``os.fsync``: after every append, once per batch
#: (at the explicit :meth:`WriteAheadLog.sync`), or never (page cache
#: only — durable against process crash, not power loss).
FSYNC_POLICIES = ("always", "batch", "never")

_WAL_MAGIC = b"TOLWAL1\n"
_WAL_BASE = struct.Struct("<Q")  # seq covered by trims before record 1
_RECORD_HEADER = struct.Struct("<II")  # payload length, CRC32(payload)
_WAL_HEADER_LEN = len(_WAL_MAGIC) + _WAL_BASE.size


def _encode_record(
    seq: int, op: UpdateOp, trace: Optional[str] = None
) -> bytes:
    body = {"seq": seq, "op": op.to_dict()}
    if trace is not None:
        # Only stamped records carry the key, so untraced WALs stay
        # byte-identical with every log written before trace ids existed.
        body["trace"] = trace
    payload = json.dumps(
        body, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_records(
    blob: bytes,
) -> tuple[int, list[tuple[int, UpdateOp, Optional[str]]], int]:
    """Parse a WAL image; return ``(base_seq, records, valid_end)``.

    Records are ``(seq, op, trace)`` triples — ``trace`` is the
    originating batch's trace id, or ``None`` for unstamped records.
    Stops — without raising — at the first torn, corrupt, or
    out-of-sequence record; ``valid_end`` is the byte offset of the last
    good record's end, which :meth:`WriteAheadLog.open` truncates to.
    """
    if blob[: len(_WAL_MAGIC)] != _WAL_MAGIC or len(blob) < _WAL_HEADER_LEN:
        raise SerializationError("not a TOL write-ahead log (bad magic)")
    (base,) = _WAL_BASE.unpack_from(blob, len(_WAL_MAGIC))
    records: list[tuple[int, UpdateOp, Optional[str]]] = []
    prev = base
    offset = _WAL_HEADER_LEN
    while offset + _RECORD_HEADER.size <= len(blob):
        length, checksum = _RECORD_HEADER.unpack_from(blob, offset)
        start = offset + _RECORD_HEADER.size
        if length > len(blob) - start:
            break  # torn tail: length prefix promises more bytes than exist
        payload = blob[start : start + length]
        if zlib.crc32(payload) != checksum:
            break
        try:
            body = json.loads(payload.decode("utf-8"))
            seq = body["seq"]
            op = UpdateOp.from_dict(body["op"])
            trace = body.get("trace")
        except (ValueError, KeyError, TypeError, ReproError):
            break
        if seq != prev + 1:
            break  # a gap or replay means everything after is suspect
        records.append((seq, op, trace))
        prev = seq
        offset = start + length
    return base, records, offset


class WriteAheadLog:
    """An append-only log of update records with torn-tail recovery.

    Record layout: 4-byte little-endian payload length, 4-byte CRC32 of
    the payload, then the payload — the JSON ``{"seq": n, "op": {...}}``.
    The file starts with an 8-byte magic and an 8-byte *base* sequence
    number (the highest seq removed by checkpoint trims), so sequence
    numbers stay monotonic across the log's whole lifetime.

    Opening an existing log validates every record and truncates the
    file at the first bad one; :attr:`truncated_bytes` reports how much
    was dropped (0 for a clean shutdown).

    Thread-safe; every public method takes the internal lock.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync: str = "batch",
        injector: FaultInjector = NULL_INJECTOR,
        registry=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._path = Path(path)
        self._fsync = fsync
        self._injector = injector
        self._registry = registry
        self._lock = threading.RLock()
        self._file = None
        self._last_seq = 0
        self.records_appended = 0
        self.fsyncs = 0
        self.truncated_bytes = 0
        self._open()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _open(self) -> None:
        path = self._path
        path.parent.mkdir(parents=True, exist_ok=True)
        if not path.exists():
            self._write_fresh(path, base=0, records=())
        blob = path.read_bytes()
        if len(blob) < _WAL_HEADER_LEN and _WAL_MAGIC.startswith(
            blob[: len(_WAL_MAGIC)]
        ):
            # Crash during creation left a partial header: start over.
            self.truncated_bytes = len(blob)
            self._write_fresh(path, base=0, records=())
            blob = path.read_bytes()
        base, records, valid_end = _scan_records(blob)
        self._last_seq = records[-1][0] if records else base
        if valid_end < len(blob):
            self.truncated_bytes += len(blob) - valid_end
            with open(path, "r+b") as f:
                f.truncate(valid_end)
                f.flush()
                if self._fsync != "never":
                    os.fsync(f.fileno())
        self._file = open(path, "ab")

    def _write_fresh(self, path: Path, base: int, records) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as f:
            f.write(_WAL_MAGIC + _WAL_BASE.pack(base))
            for seq, op, trace in records:
                f.write(_encode_record(seq, op, trace))
            f.flush()
            if self._fsync != "never":
                os.fsync(f.fileno())
        os.replace(tmp, path)

    def close(self) -> None:
        """Flush and close the append handle (the log stays valid)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, op: UpdateOp, *, trace: Optional[str] = None) -> int:
        """Append one update record; return its sequence number.

        The record is flushed to the OS before returning (so it survives
        a process crash); ``fsync="always"`` additionally syncs it to
        stable storage here, ``"batch"`` defers that to :meth:`sync`.
        *trace* stamps the record with the originating batch's trace id
        so durability incidents correlate with client-visible replies
        (untraced records encode byte-identically to older WALs).
        """
        with self._lock:
            if self._file is None:
                raise SerializationError("write-ahead log is closed")
            seq = self._last_seq + 1
            record = _encode_record(seq, op, trace)
            self._injector.fire("wal.append.before")
            if self._injector.take("wal.append.torn") is not None:
                # Simulate a crash mid-write: half the record reaches the
                # file, then the process dies.  open() must truncate it.
                self._file.write(record[: max(1, len(record) // 2)])
                self._file.flush()
                raise InjectedCrash("wal.append.torn")
            self._file.write(record)
            self._file.flush()
            self._injector.fire("wal.append.after")
            self._last_seq = seq
            self.records_appended += 1
            self._count("wal.records_appended")
            if self._fsync == "always":
                self._sync_locked()
            return seq

    def sync(self) -> None:
        """Force appended records to stable storage (fsync policy permitting)."""
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        if self._file is None:
            return
        self._file.flush()
        self._injector.fire("wal.sync")
        if self._fsync == "never":
            return
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._count("wal.fsyncs")

    # ------------------------------------------------------------------
    # Reading and trimming
    # ------------------------------------------------------------------

    def records(self) -> list[tuple[int, UpdateOp]]:
        """Re-read every valid ``(seq, op)`` record from disk, in order."""
        return [(seq, op) for seq, op, _ in self.records_with_traces()]

    def records_with_traces(
        self,
    ) -> list[tuple[int, UpdateOp, Optional[str]]]:
        """``(seq, op, trace)`` triples from disk; ``trace`` may be ``None``."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
            _, records, _ = _scan_records(self._path.read_bytes())
            return records

    def truncate_through(self, seq: int) -> int:
        """Drop every record with sequence number <= *seq*; return kept count.

        Called after a checkpoint covering *seq*: the dropped prefix is
        redundant with the snapshot.  The rewrite goes through a temp
        file and an atomic rename, so a crash mid-trim leaves either the
        old or the new log, never a mangled one.
        """
        with self._lock:
            keep = [
                (s, op, trace)
                for s, op, trace in self.records_with_traces()
                if s > seq
            ]
            if self._file is not None:
                self._file.close()
            self._write_fresh(self._path, base=seq, records=keep)
            self._file = open(self._path, "ab")
            self._last_seq = max(self._last_seq, seq)
            return len(keep)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        """Location of the log file."""
        return self._path

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (trims included)."""
        with self._lock:
            return self._last_seq

    def bind_registry(self, registry) -> None:
        """Route counters into *registry* (seeding it with current totals)."""
        with self._lock:
            self._registry = registry
            registry.incr("wal.records_appended", self.records_appended)
            registry.incr("wal.fsyncs", self.fsyncs)

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.incr(name)

    def stats(self) -> dict:
        """Counters for snapshots: seq position, appends, fsyncs, trims."""
        with self._lock:
            return {
                "last_seq": self._last_seq,
                "records_appended": self.records_appended,
                "fsyncs": self.fsyncs,
                "truncated_bytes": self.truncated_bytes,
            }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({str(self._path)!r}, "
            f"last_seq={self.last_seq}, fsync={self._fsync!r})"
        )


class CheckpointStore:
    """Atomic, retained, corruption-tolerant graph snapshots.

    Files are named ``ckpt-<wal_seq>.tolc`` so the covered WAL position
    is readable without opening them.  :meth:`write` goes through a temp
    file and ``os.replace``; :meth:`load_latest` walks newest-to-oldest
    and skips anything :func:`~repro.core.serialize.load_checkpoint`
    rejects, so one corrupt (or half-renamed) checkpoint costs recovery
    freshness, never availability.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        keep: int = 2,
        injector: FaultInjector = NULL_INJECTOR,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        self._injector = injector

    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._dir

    def paths(self) -> list[Path]:
        """Checkpoint files, oldest first (temp files excluded)."""
        return sorted(self._dir.glob("ckpt-*.tolc"))

    @staticmethod
    def seq_of(path: Path) -> int:
        """The WAL sequence number a checkpoint file's name claims."""
        return int(path.stem.split("-", 1)[1])

    def write(self, graph: DiGraph, meta: dict) -> Path:
        """Persist one snapshot; returns the final (renamed) path."""
        seq = int(meta.get("wal_seq", 0))
        final = self._dir / f"ckpt-{seq:012d}.tolc"
        tmp = final.with_name(final.name + ".tmp")
        self._injector.fire("checkpoint.serialize")
        save_checkpoint(tmp, graph, meta)
        with open(tmp, "rb") as f:
            os.fsync(f.fileno())
        self._injector.fire("checkpoint.rename")
        os.replace(tmp, final)
        self._fsync_dir()
        self._injector.fire("checkpoint.after")
        self.prune()
        return final

    def load_latest(self) -> Optional[tuple[DiGraph, dict, Path]]:
        """Newest checkpoint that decodes cleanly, or ``None``.

        Returns ``(graph, meta, path)``.  Corrupt or truncated files are
        skipped (newest first), which is the fallback the crash matrix
        exercises by tearing the most recent checkpoint.
        """
        for path in reversed(self.paths()):
            try:
                graph, meta = load_checkpoint(path)
            except (SerializationError, OSError):
                continue
            return graph, meta, path
        return None

    def prune(self) -> None:
        """Drop all but the newest *keep* checkpoints, and stray temp files."""
        for stale in self.paths()[: -self._keep]:
            stale.unlink(missing_ok=True)
        for tmp in self._dir.glob("ckpt-*.tolc.tmp"):
            tmp.unlink(missing_ok=True)

    def _fsync_dir(self) -> None:
        # Make the rename itself durable; best-effort off-POSIX.
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({str(self._dir)!r}, "
            f"checkpoints={len(self.paths())})"
        )


class DurabilityManager:
    """One WAL plus one checkpoint store under a single directory.

    Layout: ``<directory>/wal.log`` and ``<directory>/checkpoints/``.
    The manager tracks how far the newest checkpoint covers the WAL and
    triggers a new one every *checkpoint_every* appended records
    (:meth:`maybe_checkpoint`); after a successful checkpoint the covered
    WAL prefix is trimmed.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        fsync: str = "batch",
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
        injector: FaultInjector = NULL_INJECTOR,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(
            self.directory / "wal.log", fsync=fsync, injector=injector
        )
        self.checkpoints = CheckpointStore(
            self.directory / "checkpoints",
            keep=keep_checkpoints,
            injector=injector,
        )
        self._checkpoint_every = checkpoint_every
        self._checkpointed_seq = max(
            (CheckpointStore.seq_of(p) for p in self.checkpoints.paths()),
            default=0,
        )

    @property
    def checkpointed_seq(self) -> int:
        """WAL position covered by the newest checkpoint (0 = none)."""
        return self._checkpointed_seq

    def log_batch(self, ops) -> list[int]:
        """Append a batch of ops and sync once; return their seq numbers."""
        seqs = [self.wal.append(op) for op in ops]
        self.wal.sync()
        return seqs

    def maybe_checkpoint(self, graph: DiGraph, meta: dict) -> Optional[Path]:
        """Checkpoint if the uncovered WAL suffix reached the threshold."""
        if not self._checkpoint_every:
            return None
        if self.wal.last_seq - self._checkpointed_seq < self._checkpoint_every:
            return None
        return self.checkpoint(graph, meta)

    def checkpoint(self, graph: DiGraph, meta: dict) -> Path:
        """Write a snapshot covering the current WAL position, then trim."""
        meta = dict(meta)
        meta.setdefault("wal_seq", self.wal.last_seq)
        path = self.checkpoints.write(graph, meta)
        self._checkpointed_seq = int(meta["wal_seq"])
        self.wal.truncate_through(self._checkpointed_seq)
        return path

    def bind_registry(self, registry) -> None:
        """Route WAL counters into the service's metric registry."""
        self.wal.bind_registry(registry)

    def close(self) -> None:
        """Close the WAL handle."""
        self.wal.close()

    def stats(self) -> dict:
        """WAL counters plus checkpoint coverage, for snapshots."""
        return {
            **self.wal.stats(),
            "checkpointed_seq": self._checkpointed_seq,
            "checkpoints": len(self.checkpoints.paths()),
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({str(self.directory)!r}, "
            f"last_seq={self.wal.last_seq}, "
            f"checkpointed_seq={self._checkpointed_seq})"
        )


@dataclass
class RecoveryReport:
    """What :func:`recover_state` found and rebuilt."""

    graph: DiGraph
    last_seq: int
    checkpoint_seq: int
    checkpoint_path: Optional[Path]
    replayed: int
    skipped: int
    truncated_bytes: int
    checkpoint_meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        source = (
            f"checkpoint {self.checkpoint_path.name} (seq {self.checkpoint_seq})"
            if self.checkpoint_path is not None
            else "empty graph (no valid checkpoint)"
        )
        return (
            f"recovered |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} from {source}; "
            f"replayed {self.replayed} WAL records "
            f"(skipped {self.skipped}, truncated {self.truncated_bytes} "
            f"torn bytes, last seq {self.last_seq})"
        )


def recover_state(
    directory: PathLike,
    *,
    fsync: str = "batch",
    injector: FaultInjector = NULL_INJECTOR,
) -> RecoveryReport:
    """Rebuild the served graph from a durability directory.

    Loads the newest checkpoint that passes its checksum (walking past
    corrupt ones), then replays every WAL record with ``seq`` beyond the
    checkpoint's coverage.  Replayed records that the graph rejects
    (:class:`~repro.errors.ReproError` — e.g. an op the live service had
    also rejected) are counted in ``skipped`` and do not stop replay.
    Opening the WAL truncates any torn tail as a side effect.

    The caller turns ``report.graph`` into a fresh index;
    :meth:`ReachabilityService.recover` packages that.
    """
    directory = Path(directory)
    store = CheckpointStore(directory / "checkpoints", injector=injector)
    found = store.load_latest()
    if found is None:
        graph, meta, path = DiGraph(), {}, None
    else:
        graph, meta, path = found
    base_seq = int(meta.get("wal_seq", 0))
    replayed = skipped = 0
    with WriteAheadLog(
        directory / "wal.log", fsync=fsync, injector=injector
    ) as wal:
        for seq, op, trace_id in wal.records_with_traces():
            if seq <= base_seq:
                continue
            try:
                op.apply_to_graph(graph)
            except ReproError:
                skipped += 1
                obs_trace.event(
                    "wal.replay_skipped", seq=seq, trace=trace_id,
                    kind=op.kind,
                )
            else:
                replayed += 1
                obs_trace.event(
                    "wal.replay", seq=seq, trace=trace_id, kind=op.kind
                )
        return RecoveryReport(
            graph=graph,
            last_seq=max(wal.last_seq, base_seq),
            checkpoint_seq=base_seq,
            checkpoint_path=path,
            replayed=replayed,
            skipped=skipped,
            truncated_bytes=wal.truncated_bytes,
            checkpoint_meta=dict(meta),
        )
