"""A coalescing queue of index updates.

The paper prices each update individually (Figures 2 and 4), but a serving
system sees updates as a *stream*, and real streams are redundant: a
short-lived vertex is inserted and deleted before anyone queries it, an
edge flaps on and off.  Feeding such pairs through Algorithms 1–4 does
real work twice for a net effect of nothing.  The queue here buffers
pending :class:`UpdateOp` values and cancels redundant pairs before the
writer drains it:

* ``insert_vertex(v)`` followed by ``delete_vertex(v)`` — both are
  dropped, together with any queued edge updates incident to ``v``
  (those edges only exist because ``v`` was going to).
* ``insert_edge(u, w)`` followed by ``delete_edge(u, w)`` — both dropped.

Cancellation is conservative: a pair is only cancelled when no pending
operation *between* the two depends on the first one's effect (for
example a queued ``insert_vertex(w, in_neighbors=[v])`` pins ``v``'s
insertion in place).  Coalescing preserves the final index state for any
stream that would have applied cleanly one-by-one; streams containing
invalid operations get those operations rejected at apply time either
way.

Draining is all-or-nothing under the writer lock
(:meth:`CoalescingUpdateQueue.drain`), which is what turns k queued
updates into one write-lock critical section in
:class:`~repro.service.server.ReachabilityService`.

:class:`UpdateOp` itself lives in :mod:`repro.core.ops` (it is the one
representation shared by this queue, WAL records, the net protocol's
update envelope, and trace replay); it is re-exported here for
backwards compatibility.  Submitting raw tuples or dicts to the queue
was never supported and the legacy short kind names (``addv`` etc.) are
deprecated — construct :class:`UpdateOp` values via its classmethods.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable

from ..core.ops import UpdateOp

__all__ = ["UpdateOp", "CoalescingUpdateQueue"]

Vertex = Hashable


class CoalescingUpdateQueue:
    """Thread-safe FIFO of :class:`UpdateOp` with redundant-pair cancelling.

    :meth:`submit` enqueues one op, first attempting the cancellations
    described in the module docstring; :meth:`drain` atomically takes the
    whole pending batch in submission order.  All methods are safe to call
    from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[UpdateOp] = []
        self._submitted = 0
        self._coalesced = 0
        self._drained_batches = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Enqueue with coalescing
    # ------------------------------------------------------------------

    def submit(self, op: UpdateOp) -> int:
        """Enqueue *op*; return how many ops were cancelled (0 = enqueued).

        A nonzero return counts both sides of a cancelled pair plus any
        dependent edge ops dropped with them — i.e. the number of index
        mutations that will now never run.
        """
        with self._lock:
            self._submitted += 1
            cancelled = 0
            if op.kind == "delete_vertex":
                cancelled = self._cancel_vertex(op.vertex)
            elif op.kind == "delete_edge":
                cancelled = self._cancel_edge(op.tail, op.head)
            if cancelled:
                self._coalesced += cancelled + 1
                return cancelled + 1
            self._pending.append(op)
            return 0

    def _cancel_vertex(self, v: Vertex) -> int:
        """Cancel a pending ``insert_vertex v`` (plus its dependent edge ops).

        Scans newest-to-oldest.  Edge ops incident to *v* seen on the way
        are dependents of the pending insertion and get dropped with it; a
        pending ``insert_vertex w`` that names *v* as a neighbor depends on *v*
        staying inserted, so the scan aborts.  Returns the number of
        pending ops removed (0 if no cancellation happened).
        """
        pending = self._pending
        dependents: list[int] = []
        for i in range(len(pending) - 1, -1, -1):
            o = pending[i]
            if o.kind == "insert_vertex":
                if o.vertex == v:
                    for j in sorted(dependents + [i], reverse=True):
                        del pending[j]
                    return 1 + len(dependents)
                if v in o.ins or v in o.outs:
                    return 0
            elif o.kind == "delete_vertex":
                if o.vertex == v:
                    return 0
            elif v in (o.tail, o.head):
                dependents.append(i)
        return 0

    def _cancel_edge(self, tail: Vertex, head: Vertex) -> int:
        """Cancel a pending ``insert_edge (tail, head)``; 0 if not possible."""
        pending = self._pending
        for i in range(len(pending) - 1, -1, -1):
            o = pending[i]
            if o.kind == "insert_edge" and o.tail == tail and o.head == head:
                del pending[i]
                return 1
            if o.kind == "delete_edge" and o.tail == tail and o.head == head:
                return 0
            if o.kind in ("insert_vertex", "delete_vertex") and o.vertex in (
                tail,
                head,
            ):
                return 0
        return 0

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def pending_ops(self) -> tuple[UpdateOp, ...]:
        """Snapshot of the pending batch, oldest first (non-draining).

        The service's up-front update validation reads this to treat a
        queued-but-unapplied ``insert_vertex`` as an existing vertex (and
        a queued ``delete_vertex`` as a removal) when checking later
        references.
        """
        with self._lock:
            return tuple(self._pending)

    def drain(self) -> list[UpdateOp]:
        """Atomically take (and clear) the pending batch, oldest first."""
        with self._lock:
            batch, self._pending = self._pending, []
            if batch:
                self._drained_batches += 1
            return batch

    def stats(self) -> dict:
        """Counters for :meth:`ReachabilityService.snapshot`."""
        with self._lock:
            return {
                "depth": len(self._pending),
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "drained_batches": self._drained_batches,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"{type(self).__name__}(depth={s['depth']}, "
            f"submitted={s['submitted']}, coalesced={s['coalesced']})"
        )
