"""A coalescing queue of index updates.

The paper prices each update individually (Figures 2 and 4), but a serving
system sees updates as a *stream*, and real streams are redundant: a
short-lived vertex is inserted and deleted before anyone queries it, an
edge flaps on and off.  Feeding such pairs through Algorithms 1–4 does
real work twice for a net effect of nothing.  The queue here buffers
pending :class:`UpdateOp` values and cancels redundant pairs before the
writer drains it:

* ``insert_vertex(v)`` followed by ``delete_vertex(v)`` — both are
  dropped, together with any queued edge updates incident to ``v``
  (those edges only exist because ``v`` was going to).
* ``insert_edge(u, w)`` followed by ``delete_edge(u, w)`` — both dropped.

Cancellation is conservative: a pair is only cancelled when no pending
operation *between* the two depends on the first one's effect (for
example a queued ``insert_vertex(w, in_neighbors=[v])`` pins ``v``'s
insertion in place).  Coalescing preserves the final index state for any
stream that would have applied cleanly one-by-one; streams containing
invalid operations get those operations rejected at apply time either
way.

Draining is all-or-nothing under the writer lock
(:meth:`CoalescingUpdateQueue.drain`), which is what turns k queued
updates into one write-lock critical section in
:class:`~repro.service.server.ReachabilityService`.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..errors import WorkloadError

__all__ = ["UpdateOp", "CoalescingUpdateQueue"]

Vertex = Hashable

#: Update kinds, mirroring the trace grammar of :mod:`repro.bench.trace`
#: minus ``query`` (queries never enter the write path).
_KINDS = ("addv", "delv", "adde", "dele")


def _unwire(v):
    """JSON round-trips tuple vertices as lists; make them hashable again."""
    return tuple(_unwire(x) for x in v) if isinstance(v, list) else v


@dataclass(frozen=True)
class UpdateOp:
    """One pending index mutation.

    ``kind`` is one of ``addv`` (vertex, ins, outs), ``delv`` (vertex),
    ``adde`` / ``dele`` (tail, head).  Use the classmethod constructors;
    they normalize arguments and keep the unused fields ``None``.
    """

    kind: str
    vertex: Vertex = None
    ins: tuple[Vertex, ...] = ()
    outs: tuple[Vertex, ...] = ()
    tail: Vertex = None
    head: Vertex = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(f"unknown update kind {self.kind!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def insert_vertex(
        cls,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> "UpdateOp":
        """A pending ``insert_vertex(v, ins, outs)``."""
        return cls(
            "addv", vertex=v, ins=tuple(in_neighbors), outs=tuple(out_neighbors)
        )

    @classmethod
    def delete_vertex(cls, v: Vertex) -> "UpdateOp":
        """A pending ``delete_vertex(v)``."""
        return cls("delv", vertex=v)

    @classmethod
    def insert_edge(cls, tail: Vertex, head: Vertex) -> "UpdateOp":
        """A pending ``insert_edge(tail, head)``."""
        return cls("adde", tail=tail, head=head)

    @classmethod
    def delete_edge(cls, tail: Vertex, head: Vertex) -> "UpdateOp":
        """A pending ``delete_edge(tail, head)``."""
        return cls("dele", tail=tail, head=head)

    @classmethod
    def from_wire(cls, payload: dict) -> "UpdateOp":
        """Decode a :meth:`to_wire` dict (the WAL record payload).

        Raises
        ------
        WorkloadError
            On an unknown kind or missing fields.
        """
        try:
            kind = payload["kind"]
            if kind == "addv":
                return cls.insert_vertex(
                    _unwire(payload["vertex"]),
                    [_unwire(v) for v in payload.get("ins", ())],
                    [_unwire(v) for v in payload.get("outs", ())],
                )
            if kind == "delv":
                return cls.delete_vertex(_unwire(payload["vertex"]))
            if kind in ("adde", "dele"):
                return cls(
                    kind,
                    tail=_unwire(payload["tail"]),
                    head=_unwire(payload["head"]),
                )
        except (KeyError, TypeError) as exc:
            raise WorkloadError(
                f"malformed wire-format update: {exc!r}"
            ) from None
        raise WorkloadError(f"unknown wire update kind {payload.get('kind')!r}")

    def to_wire(self) -> dict:
        """JSON-compatible encoding (inverse of :meth:`from_wire`).

        Vertices must be JSON-serializable; tuples round-trip back to
        tuples (the same convention :mod:`repro.core.serialize` uses).
        """
        if self.kind == "addv":
            return {
                "kind": "addv",
                "vertex": self.vertex,
                "ins": list(self.ins),
                "outs": list(self.outs),
            }
        if self.kind == "delv":
            return {"kind": "delv", "vertex": self.vertex}
        return {"kind": self.kind, "tail": self.tail, "head": self.head}

    @classmethod
    def from_trace_op(cls, op) -> "UpdateOp":
        """Adapt a mutation :class:`~repro.bench.trace.TraceOp`."""
        if op.kind == "addv":
            return cls.insert_vertex(op.vertex, op.ins, op.outs)
        if op.kind == "delv":
            return cls.delete_vertex(op.vertex)
        if op.kind == "adde":
            return cls.insert_edge(op.tail, op.head)
        if op.kind == "dele":
            return cls.delete_edge(op.tail, op.head)
        raise WorkloadError(f"trace op {op.kind!r} is not an update")

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, index) -> None:
        """Execute this op against any index with the vertex/edge API."""
        if self.kind == "addv":
            index.insert_vertex(self.vertex, self.ins, self.outs)
        elif self.kind == "delv":
            index.delete_vertex(self.vertex)
        elif self.kind == "adde":
            index.insert_edge(self.tail, self.head)
        else:
            index.delete_edge(self.tail, self.head)

    def apply_to_graph(self, graph) -> None:
        """Mirror this op onto a plain :class:`~repro.graph.digraph.DiGraph`.

        Used by the service's shadow graph (degraded-mode BFS serving),
        WAL replay during recovery, and the oracle tests — all of which
        need the *graph* effect of an op without touching any index.
        """
        if self.kind == "addv":
            graph.add_vertex(self.vertex)
            for u in self.ins:
                graph.add_edge(u, self.vertex)
            for w in self.outs:
                graph.add_edge(self.vertex, w)
        elif self.kind == "delv":
            graph.remove_vertex(self.vertex)
        elif self.kind == "adde":
            graph.add_edge(self.tail, self.head)
        else:
            graph.remove_edge(self.tail, self.head)

    def referenced_vertices(self) -> tuple[Vertex, ...]:
        """Vertices this op requires to already exist.

        For ``addv`` that is the neighbor lists (the inserted vertex
        itself is new); for the other kinds, every named vertex.
        """
        if self.kind == "addv":
            return self.ins + self.outs
        if self.kind == "delv":
            return (self.vertex,)
        return (self.tail, self.head)

    def __str__(self) -> str:
        if self.kind == "addv":
            return (
                f"addv {self.vertex} in={list(self.ins)} out={list(self.outs)}"
            )
        if self.kind == "delv":
            return f"delv {self.vertex}"
        return f"{self.kind} {self.tail} {self.head}"


class CoalescingUpdateQueue:
    """Thread-safe FIFO of :class:`UpdateOp` with redundant-pair cancelling.

    :meth:`submit` enqueues one op, first attempting the cancellations
    described in the module docstring; :meth:`drain` atomically takes the
    whole pending batch in submission order.  All methods are safe to call
    from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[UpdateOp] = []
        self._submitted = 0
        self._coalesced = 0
        self._drained_batches = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Enqueue with coalescing
    # ------------------------------------------------------------------

    def submit(self, op: UpdateOp) -> int:
        """Enqueue *op*; return how many ops were cancelled (0 = enqueued).

        A nonzero return counts both sides of a cancelled pair plus any
        dependent edge ops dropped with them — i.e. the number of index
        mutations that will now never run.
        """
        with self._lock:
            self._submitted += 1
            cancelled = 0
            if op.kind == "delv":
                cancelled = self._cancel_vertex(op.vertex)
            elif op.kind == "dele":
                cancelled = self._cancel_edge(op.tail, op.head)
            if cancelled:
                self._coalesced += cancelled + 1
                return cancelled + 1
            self._pending.append(op)
            return 0

    def _cancel_vertex(self, v: Vertex) -> int:
        """Cancel a pending ``addv v`` (plus its dependent edge ops).

        Scans newest-to-oldest.  Edge ops incident to *v* seen on the way
        are dependents of the pending insertion and get dropped with it; a
        pending ``addv w`` that names *v* as a neighbor depends on *v*
        staying inserted, so the scan aborts.  Returns the number of
        pending ops removed (0 if no cancellation happened).
        """
        pending = self._pending
        dependents: list[int] = []
        for i in range(len(pending) - 1, -1, -1):
            o = pending[i]
            if o.kind == "addv":
                if o.vertex == v:
                    for j in sorted(dependents + [i], reverse=True):
                        del pending[j]
                    return 1 + len(dependents)
                if v in o.ins or v in o.outs:
                    return 0
            elif o.kind == "delv":
                if o.vertex == v:
                    return 0
            elif v in (o.tail, o.head):
                dependents.append(i)
        return 0

    def _cancel_edge(self, tail: Vertex, head: Vertex) -> int:
        """Cancel a pending ``adde (tail, head)``; 0 if not possible."""
        pending = self._pending
        for i in range(len(pending) - 1, -1, -1):
            o = pending[i]
            if o.kind == "adde" and o.tail == tail and o.head == head:
                del pending[i]
                return 1
            if o.kind == "dele" and o.tail == tail and o.head == head:
                return 0
            if o.kind in ("addv", "delv") and o.vertex in (tail, head):
                return 0
        return 0

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def pending_ops(self) -> tuple[UpdateOp, ...]:
        """Snapshot of the pending batch, oldest first (non-draining).

        The service's up-front update validation reads this to treat a
        queued-but-unapplied ``addv`` as an existing vertex (and a queued
        ``delv`` as a removal) when checking later references.
        """
        with self._lock:
            return tuple(self._pending)

    def drain(self) -> list[UpdateOp]:
        """Atomically take (and clear) the pending batch, oldest first."""
        with self._lock:
            batch, self._pending = self._pending, []
            if batch:
                self._drained_batches += 1
            return batch

    def stats(self) -> dict:
        """Counters for :meth:`ReachabilityService.snapshot`."""
        with self._lock:
            return {
                "depth": len(self._pending),
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "drained_batches": self._drained_batches,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"{type(self).__name__}(depth={s['depth']}, "
            f"submitted={s['submitted']}, coalesced={s['coalesced']})"
        )
