"""Deterministic fault injection and graceful-degradation policy.

Two concerns live here, both in service of the crash-safety story
(docs/robustness.md):

* :class:`FaultInjector` — a registry of **named crash points** threaded
  through the durability layer and the update-apply loop.  Tests arm a
  point (``injector.arm("wal.append.torn")``) and the next time execution
  reaches it, the process "crashes" (an :class:`InjectedCrash` is raised)
  or an I/O error is injected — deterministically, at exactly that point.
  The crash-matrix test (tests/service/test_recovery.py) iterates
  :data:`CRASH_POINTS`, kills the service at each one, recovers, and
  checks the result against a BFS oracle.

* :class:`FaultPolicy` — what the update-apply loop does when an op fails
  with something *other* than a deterministic :class:`~repro.errors.ReproError`
  rejection: bounded retries with exponential backoff, then **quarantine**
  (the op is set aside in a bounded log, a counter is bumped, and the rest
  of the batch proceeds).  A poison update therefore never wedges the
  writer, and readers — who only ever take the read lock — are never
  blocked by one.

:class:`InjectedCrash` deliberately derives from :class:`BaseException`:
a real ``kill -9`` is not catchable, so the simulated one must sail past
every ``except Exception`` (including the retry/quarantine handler) and
unwind the whole call stack, exactly like the real thing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CRASH_POINTS",
    "SHM_CRASH_POINTS",
    "InjectedCrash",
    "FaultInjector",
    "NULL_INJECTOR",
    "FaultPolicy",
    "QuarantinedUpdate",
]

#: Every named crash point the durability layer fires, in execution
#: order.  The crash-matrix test derives its parametrization from this
#: tuple, so adding a site here automatically extends the matrix.
CRASH_POINTS = (
    "wal.append.before",    # before the record's bytes reach the file
    "wal.append.torn",      # half the record written, then crash (torn tail)
    "wal.append.after",     # record fully written, before the batch syncs
    "wal.sync",             # after writes, during the fsync itself
    "service.apply",        # WAL durable, before an op mutates the index
    "checkpoint.serialize", # before the checkpoint temp file is written
    "checkpoint.rename",    # temp file complete, before the atomic rename
    "checkpoint.after",     # checkpoint live, before the WAL is trimmed
)

#: Crash points in the shared-memory snapshot plane.  Kept separate
#: from :data:`CRASH_POINTS` because the single-process crash-matrix
#: test parametrizes over that tuple and these sites are unreachable
#: without a running publisher; the process-level chaos harness
#: (:mod:`repro.net.chaos`) exercises them instead.
SHM_CRASH_POINTS = (
    "shm.publish.flip",     # seqlock sequence odd, snapshot triple torn
)

_ACTIONS = ("crash", "ioerror", "torn", "kill")


class InjectedCrash(BaseException):
    """A simulated process death at a named crash point.

    A ``BaseException`` so no ``except Exception`` handler (retry loops,
    quarantine) can accidentally "survive" it — recovery from an injected
    crash must go through :meth:`ReachabilityService.recover`, like the
    real thing.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class _Armed:
    """One armed fault: fire *action* on the (after)-th hit, *times* times."""

    action: str
    after: int = 1
    times: int = 1
    hits: int = 0
    fired: int = 0


class FaultInjector:
    """Thread-safe registry of armed faults at named crash points.

    Examples
    --------
    >>> injector = FaultInjector()
    >>> injector.arm("service.apply", after=2)
    >>> injector.take("service.apply") is None   # first hit: pass through
    True
    >>> injector.take("service.apply")
    'crash'
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, _Armed] = {}
        self._hits: dict[str, int] = {}

    def arm(
        self,
        point: str,
        action: str = "crash",
        *,
        after: int = 1,
        times: int = 1,
    ) -> None:
        """Arm *point* to fire *action* on its *after*-th hit.

        ``action`` is ``"crash"`` (raise :class:`InjectedCrash`),
        ``"ioerror"`` (raise :class:`OSError`, exercising I/O-failure
        handling), ``"torn"`` (WAL-append only: write half the record,
        then crash), or ``"kill"`` (``SIGKILL`` the calling process —
        the process-level chaos harness; nothing survives, exactly like
        ``kill -9``).  ``times`` bounds how many consecutive hits fire
        after the trigger point (``times=0`` means every later hit).
        """
        if point not in CRASH_POINTS and point not in SHM_CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; see CRASH_POINTS / "
                f"SHM_CRASH_POINTS"
            )
        if action not in _ACTIONS:
            raise ValueError(f"unknown fault action {action!r}")
        if after < 1:
            raise ValueError(f"after must be >= 1, got {after}")
        with self._lock:
            self._armed[point] = _Armed(action, after=after, times=times)

    def disarm(self, point: str) -> None:
        """Remove any armed fault at *point* (no-op when absent)."""
        with self._lock:
            self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm every point and zero the hit counters."""
        with self._lock:
            self._armed.clear()
            self._hits.clear()

    def take(self, point: str):
        """Count one hit of *point*; return the due action or ``None``.

        Sites with special semantics (the WAL's torn write) call this
        directly and implement the action themselves; everything else
        goes through :meth:`fire`.
        """
        with self._lock:
            self._hits[point] = self._hits.get(point, 0) + 1
            armed = self._armed.get(point)
            if armed is None:
                return None
            armed.hits += 1
            if armed.hits < armed.after:
                return None
            if armed.times and armed.fired >= armed.times:
                return None
            armed.fired += 1
            return armed.action

    def fire(self, point: str) -> None:
        """Hit *point*; raise if an armed fault is due, else return."""
        action = self.take(point)
        if action is None:
            return
        if action == "ioerror":
            raise OSError(f"injected I/O error at {point!r}")
        if action == "kill":
            import os
            import signal as _signal

            # A real, uncatchable death: no finally blocks, no flushes.
            os.kill(os.getpid(), _signal.SIGKILL)
        # "torn" outside the WAL append site degrades to a plain crash.
        raise InjectedCrash(point)

    def hits(self, point: str) -> int:
        """How many times execution has reached *point*."""
        with self._lock:
            return self._hits.get(point, 0)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"{type(self).__name__}(armed={sorted(self._armed)}, "
                f"hits={dict(self._hits)})"
            )


class _NullInjector(FaultInjector):
    """The default injector: every site is a no-op (not even counted)."""

    def arm(self, point, action="crash", *, after=1, times=1):  # noqa: ARG002
        raise ValueError(
            "cannot arm the shared null injector; pass a FaultInjector() "
            "to the component under test"
        )

    def take(self, point):  # noqa: ARG002
        return None

    def fire(self, point) -> None:  # noqa: ARG002
        return None


#: Shared do-nothing injector used when no faults are being injected.
NULL_INJECTOR = _NullInjector()


@dataclass(frozen=True)
class FaultPolicy:
    """How the update-apply loop handles non-deterministic op failures.

    Deterministic rejections (:class:`~repro.errors.ReproError` — e.g.
    deleting a vertex that does not exist) are not retried: replaying
    them can only fail identically.  Anything else (an injected
    ``OSError``, a bug surfacing as ``RuntimeError``) is retried up to
    :attr:`max_retries` times with exponential backoff starting at
    :attr:`backoff_base` seconds, then the op is **quarantined**: logged,
    counted (``updates_quarantined``), and skipped so the rest of the
    batch — and every later batch — proceeds.

    The backoff happens while the write lock is held (releasing it
    mid-batch would expose a half-applied batch to readers), so the base
    is deliberately tiny; with the defaults a poison op costs at most
    ~3 ms of writer time before quarantine.
    """

    max_retries: int = 2
    backoff_base: float = 0.001
    max_quarantined: int = 256

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.max_quarantined < 1:
            raise ValueError(
                f"max_quarantined must be >= 1, got {self.max_quarantined}"
            )


@dataclass(frozen=True)
class QuarantinedUpdate:
    """One update the service gave up on, with its final error.

    ``trace_id`` is the trace id of the batch the op arrived in (when
    the client or admission path stamped one), so a quarantine entry
    can be correlated with the client-visible reply and the WAL record
    it produced.
    """

    op: object
    error: str
    attempts: int
    trace_id: Optional[str] = None

    def __str__(self) -> str:
        tagged = f" [trace {self.trace_id}]" if self.trace_id else ""
        return (
            f"{self.op} quarantined after {self.attempts} attempts"
            f"{tagged}: {self.error}"
        )
