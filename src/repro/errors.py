"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "VertexExistsError",
    "EdgeNotFoundError",
    "EdgeExistsError",
    "NotADagError",
    "IndexStateError",
    "SerializationError",
    "UnknownVertexError",
    "OrderError",
    "DatasetError",
    "WorkloadError",
    "NetworkError",
    "ProtocolError",
    "OverloadedError",
    "WriterUnavailableError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "SnapshotError",
    "SnapshotUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors concerning graph structure or graph operations."""


class VertexNotFoundError(GraphError, KeyError):
    """A referenced vertex does not exist in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError repr-quotes its arg; keep it readable.
        return f"vertex {self.vertex!r} is not in the graph"


class VertexExistsError(GraphError):
    """An inserted vertex already exists in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is already in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__((tail, head))
        self.tail = tail
        self.head = head

    def __str__(self) -> str:
        return f"edge ({self.tail!r} -> {self.head!r}) is not in the graph"


class EdgeExistsError(GraphError):
    """An inserted edge already exists in the graph."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge ({tail!r} -> {head!r}) is already in the graph")
        self.tail = tail
        self.head = head


class NotADagError(GraphError):
    """An operation that requires a DAG received a graph with a cycle."""


class IndexStateError(ReproError):
    """A reachability index was used in a way inconsistent with its state.

    Raised, for example, when querying an index for a vertex it does not
    cover, or when updating an index whose underlying graph has been mutated
    behind its back.
    """


class SerializationError(IndexStateError):
    """A persisted artifact (index, checkpoint, WAL) failed to decode.

    Raised on truncated input, checksum mismatches, bad magic bytes and
    unsupported format versions — instead of letting a bare
    :class:`struct.error` / :class:`KeyError` escape mid-parse.  Derives
    from :class:`IndexStateError` so pre-existing broad handlers keep
    working.
    """


class UnknownVertexError(IndexStateError, KeyError):
    """A reachability query named a vertex the index has never seen.

    Doubles as :class:`KeyError` so dict-style call sites can treat the
    index like a mapping, and as :class:`IndexStateError` for callers that
    catch index-misuse broadly.
    """

    def __init__(self, vertex: object) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError repr-quotes its arg; keep it readable.
        return (
            f"vertex {self.vertex!r} is not indexed; insert it before querying"
        )


class OrderError(ReproError):
    """An order-maintenance structure was used incorrectly."""


class DatasetError(ReproError):
    """A dataset name or configuration is invalid."""


class WorkloadError(ReproError):
    """A benchmark workload specification is invalid."""


class NetworkError(ReproError):
    """Base class for errors raised by the network serving layer."""


class ProtocolError(NetworkError):
    """A wire frame violated the protocol (bad length, garbage JSON,
    unsupported version, malformed request shape)."""


class OverloadedError(NetworkError):
    """The server shed this request under admission control.

    Carries the server's ``retry_after_ms`` hint when it sent one, so a
    client can back off by the amount the server suggested.
    """

    def __init__(self, message: str = "server overloaded",
                 retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class WriterUnavailableError(NetworkError):
    """The writer process is down; the request needed it.

    Reader workers return this for forwarded operations (updates,
    stats, snapshot-miss queries) while the writer is crashed, stalled
    or restarting.  Queries the shared snapshot can answer keep being
    served in bounded-staleness mode; only writer-owned work fails.
    Transient by construction — the supervisor is respawning the
    writer — so the error carries a ``retry_after_ms`` hint.
    """

    def __init__(self, message: str = "writer process unavailable",
                 retry_after_ms: float = 500.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class CircuitOpenError(NetworkError):
    """The client's circuit breaker is open; the call failed fast.

    Raised locally (no bytes hit the wire) after repeated consecutive
    transport failures, until the cooldown elapses.
    """

    def __init__(self, message: str = "circuit breaker open",
                 retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(NetworkError):
    """A per-request deadline expired before a reply arrived."""


class SnapshotError(ReproError):
    """Base class for shared-memory snapshot-plane failures."""


class SnapshotUnavailableError(SnapshotError):
    """No usable shared-memory snapshot could be attached.

    Raised after bounded retries when the control block names no
    snapshot yet, the seqlock is stalled (publisher died mid-flip with
    no prior attach to fall back on), or every attach attempt failed
    CRC verification (corrupt segment).  Reader workers fall back to
    forwarding queries to the writer when they see this.
    """
