"""Competitor reachability methods re-implemented from their publications."""

from .dagger import DaggerIndex
from .grail import GrailIndex
from .search import BFSBaseline, DFSBaseline
from .static_labels import (
    build_dl,
    build_hl,
    build_pll,
    build_tf_label,
    pruned_landmark_build,
)
from .transitive_closure import TransitiveClosureIndex
from .tree_cover import TreeCoverIndex

__all__ = [
    "BFSBaseline",
    "DFSBaseline",
    "GrailIndex",
    "DaggerIndex",
    "TransitiveClosureIndex",
    "TreeCoverIndex",
    "build_tf_label",
    "build_dl",
    "build_pll",
    "build_hl",
    "pruned_landmark_build",
]
