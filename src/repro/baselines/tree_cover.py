"""Tree-cover compressed transitive closure (Agrawal, Borgida, Jagadish [3]).

The classic 1989 representative of the paper's "transitive closure
retrieval" category (Section 3): instead of materializing each vertex's
full descendant set, pick a spanning forest of the DAG, number vertices by
post-order, and give every vertex the interval ``[low, post]`` covering its
tree descendants.  Every vertex then stores a small *set of intervals*:
its own tree interval plus the intervals inherited through non-tree edges,
with subsumed intervals dropped.  A query ``s -> t`` checks whether ``t``'s
post-order number falls inside any of ``s``'s intervals — O(log k) with
k intervals after sorting.

The compression wins exactly when the DAG is tree-like (few non-tree
edges) and degrades toward quadratic storage on dense DAGs — which is the
scalability criticism the paper levels at this whole category, and which
``benchmarks/``' index-size comparisons show against the 2-hop methods.

The spanning forest is chosen greedily: processing vertices in topological
order, each vertex attaches to the in-neighbor whose subtree was visited
last (a heuristic from [3] that keeps tree intervals contiguous); remaining
in-edges become non-tree edges whose interval sets are inherited.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable

from ..graph.dag import ensure_dag, topological_order
from ..graph.digraph import DiGraph

__all__ = ["TreeCoverIndex"]

Vertex = Hashable


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort, merge overlaps, and drop subsumed intervals."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


class TreeCoverIndex:
    """Compressed transitive closure via spanning-tree intervals.

    Examples
    --------
    >>> idx = TreeCoverIndex(DiGraph(edges=[(1, 2), (2, 3), (1, 4)]))
    >>> idx.query(1, 3), idx.query(4, 3)
    (True, False)
    """

    name = "TreeCover"

    def __init__(self, graph: DiGraph) -> None:
        ensure_dag(graph)
        order = topological_order(graph)

        # 1. Spanning forest: each vertex picks one tree parent among its
        #    in-neighbors (the most recently processed one).
        position = {v: i for i, v in enumerate(order)}
        tree_children: dict[Vertex, list[Vertex]] = {v: [] for v in order}
        non_tree_edges: list[tuple[Vertex, Vertex]] = []
        for v in order:
            parents = list(graph.iter_in(v))
            if parents:
                tree_parent = max(parents, key=lambda u: position[u])
                tree_children[tree_parent].append(v)
                for u in parents:
                    if u is not tree_parent:
                        non_tree_edges.append((u, v))

        # 2. Post-order numbering of the forest; tree interval = [low, post]
        #    where low = min post among the subtree.
        self._post: dict[Vertex, int] = {}
        low: dict[Vertex, int] = {}
        counter = 0
        roots = [v for v in order if graph.in_degree(v) == 0]
        for root in roots:
            stack: list[tuple[Vertex, int]] = [(root, 0)]
            while stack:
                v, child_idx = stack.pop()
                children = tree_children[v]
                if child_idx < len(children):
                    stack.append((v, child_idx + 1))
                    stack.append((children[child_idx], 0))
                    continue
                counter += 1
                self._post[v] = counter
                low[v] = min(
                    [counter] + [low[c] for c in children]
                )

        # 3. Interval sets: own tree interval, plus inheritance along every
        #    edge, propagated in reverse topological order so each vertex
        #    sees its successors' finished sets.
        self._intervals: dict[Vertex, list[tuple[int, int]]] = {}
        for v in reversed(order):
            collected = [(low[v], self._post[v])]
            for w in graph.iter_out(v):
                collected.extend(self._intervals[w])
            self._intervals[v] = _merge_intervals(collected)

        # Flatten for bisect-based queries: starts[] and ends[] per vertex.
        self._starts = {
            v: [lo for lo, _ in ivs] for v, ivs in self._intervals.items()
        }
        self._ends = {
            v: [hi for _, hi in ivs] for v, ivs in self._intervals.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t``: is post(t) inside any of s's intervals?"""
        post_t = self._post[t]
        if s == t:
            return True
        starts = self._starts[s]
        idx = bisect_right(starts, post_t) - 1
        return idx >= 0 and post_t <= self._ends[s][idx]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def intervals(self, v: Vertex) -> tuple[tuple[int, int], ...]:
        """The merged interval set of *v* (for tests and diagnostics)."""
        return tuple(self._intervals[v])

    def num_intervals(self) -> int:
        """Total interval count — the compression metric of [3]."""
        return sum(len(ivs) for ivs in self._intervals.values())

    def size_bytes(self) -> int:
        """Index size: two 4-byte ints per stored interval."""
        return self.num_intervals() * 8

    def __contains__(self, v: Vertex) -> bool:
        return v in self._post

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={len(self._post)}, "
            f"intervals={self.num_intervals()})"
        )
