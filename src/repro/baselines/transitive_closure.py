"""Materialized transitive closure over bitsets.

The "transitive closure retrieval" family of Section 3: pre-compute, for
every vertex, the full set of vertices it can reach.  Queries are O(1) set
probes, preprocessing and space are quadratic — exactly the trade-off the
paper describes as unscalable, which is why this class doubles as the
*ground-truth oracle* for the test suite.

Reachability sets are stored as Python integers used as bitsets (vertex
``i`` reachable ⟺ bit ``i`` set), so the all-pairs closure of a few
thousand vertices fits comfortably and unions are single big-int ORs.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..graph.dag import topological_order
from ..graph.digraph import DiGraph

__all__ = ["TransitiveClosureIndex"]

Vertex = Hashable


class TransitiveClosureIndex:
    """All-pairs reachability with O(1) queries (static; DAGs only).

    Examples
    --------
    >>> tc = TransitiveClosureIndex(DiGraph(edges=[(1, 2), (2, 3)]))
    >>> tc.query(1, 3), tc.query(3, 1)
    (True, False)
    >>> sorted(tc.descendants(1))
    [2, 3]
    """

    name = "TC"

    def __init__(self, graph: DiGraph) -> None:
        order = topological_order(graph)
        self._bit: dict[Vertex, int] = {v: i for i, v in enumerate(order)}
        self._vertices = order
        self._reach: dict[Vertex, int] = {}
        for v in reversed(order):
            mask = 0
            for w in graph.iter_out(v):
                mask |= self._reach[w] | (1 << self._bit[w])
            self._reach[v] = mask

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` with one bit probe."""
        if s == t:
            # Validate existence for parity with the other indices.
            self._reach[s]
            return True
        return bool(self._reach[s] >> self._bit[t] & 1)

    def descendants(self, v: Vertex) -> set[Vertex]:
        """Return the set of vertices *v* can reach (excluding itself)."""
        mask = self._reach[v]
        return {w for w in self._vertices if mask >> self._bit[w] & 1}

    def size_bytes(self) -> int:
        """Approximate storage: one bit per vertex pair."""
        n = len(self._vertices)
        return n * ((n + 7) // 8)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._reach
