"""Dagger: GRAIL-style interval labeling maintained under updates [32].

Dagger is the paper's only competitor that runs on million-vertex dynamic
graphs.  It keeps GRAIL intervals over the SCC-condensed graph and repairs
them *conservatively* on every update:

* **vertex/edge insertion** — the new vertex gets a fresh post-order rank
  past the current maximum and a low equal to the minimum low among its
  out-neighbors; then the *entire ancestor region* is re-labeled
  children-first with fresh ranks (Dagger's bounded subtree relabeling):
  each ancestor's post moves past the new maximum and its low is recomputed
  from its out-neighbors.  This keeps the GRAIL invariant
  (``u -> v ⇒ I(v) ⊆ I(u)``) and prices insertions the way the published
  system does — proportional to the affected region, which is a short
  root path on trees but most of the graph on hub-heavy DAGs (exactly the
  tree-vs-rest insertion shape of the paper's Figure 2).
* **deletion** — intervals are left untouched: removing reachability can
  only make containment over-approximate, never unsound.  Deletions are
  therefore near-free (Figure 4) at the price of interval decay.

The consequence, reproduced faithfully here, is Dagger's experimental
signature in the paper: updates are cheap (Figures 2 and 4) but interval
quality decays, so query processing degenerates toward a plain DFS
(Figures 3 and 7 show it up to 900x slower than even the BFS baseline on
wiki/Twitter).  On trees the intervals stay tight — each vertex has one
parent, so widening is rare — which is why Dagger wins insertions on the
uniprot datasets (Figure 2); our tree stand-ins show the same effect.

Cyclic inputs are handled through the shared
:class:`~repro.graph.condensation.DynamicCondensation` substrate (Dagger's
own contribution includes SCC maintenance; we reuse ours), with interval
state replayed per condensation delta.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Hashable, Iterable

from ..graph.condensation import CondensationDelta, DynamicCondensation
from ..graph.digraph import DiGraph

__all__ = ["DaggerIndex"]

Vertex = Hashable


class DaggerIndex:
    """Dynamic GRAIL-style reachability index (cycles allowed).

    Examples
    --------
    >>> idx = DaggerIndex(DiGraph(edges=[(1, 2), (2, 3)]))
    >>> idx.query(1, 3)
    True
    >>> idx.insert_vertex(4, in_neighbors=[3])
    >>> idx.query(1, 4)
    True
    >>> idx.delete_vertex(2)
    >>> idx.query(1, 4)
    False
    """

    name = "Dagger"

    def __init__(
        self, graph: DiGraph, *, num_traversals: int = 2, seed: int = 0
    ) -> None:
        self._cond = DynamicCondensation(graph.copy())
        self.num_traversals = num_traversals
        self._rng = random.Random(seed)
        self._lows: dict[int, list[int]] = {}
        self._posts: dict[int, list[int]] = {}
        self._max_rank = 0
        self._relabel_all()

    # ------------------------------------------------------------------
    # Interval construction / repair
    # ------------------------------------------------------------------

    def _relabel_all(self) -> None:
        """Full GRAIL labeling of the current condensation (build time)."""
        dag = self._cond.dag
        self._lows = {c: [0] * self.num_traversals for c in dag.vertices()}
        self._posts = {c: [0] * self.num_traversals for c in dag.vertices()}
        self._max_rank = dag.num_vertices
        for r in range(self.num_traversals):
            self._label_one_traversal(r)

    def _label_one_traversal(self, r: int) -> None:
        dag = self._cond.dag
        rng = self._rng
        roots = [c for c in dag.vertices() if dag.in_degree(c) == 0]
        rng.shuffle(roots)
        visited: set[int] = set()
        counter = 0
        for root in roots:
            if root in visited:
                continue
            children = list(dag.iter_out(root))
            rng.shuffle(children)
            stack: list[tuple[int, list[int]]] = [(root, children)]
            visited.add(root)
            while stack:
                v, pending = stack[-1]
                descended = False
                while pending:
                    w = pending.pop()
                    if w not in visited:
                        visited.add(w)
                        grandchildren = list(dag.iter_out(w))
                        rng.shuffle(grandchildren)
                        stack.append((w, grandchildren))
                        descended = True
                        break
                if descended:
                    continue
                stack.pop()
                counter += 1
                low = counter
                for w in dag.iter_out(v):
                    if self._lows[w][r] < low:
                        low = self._lows[w][r]
                self._lows[v][r] = low
                self._posts[v][r] = counter

    def _assign_fresh(self, comp: int) -> None:
        """Give a new component a conservative interval and widen ancestors."""
        dag = self._cond.dag
        self._max_rank += 1
        post = self._max_rank
        lows = [post] * self.num_traversals
        self._min_out_lows(comp, lows)
        self._lows[comp] = lows
        self._posts[comp] = [post] * self.num_traversals
        self._widen_ancestors(comp)

    def _min_out_lows(self, comp: int, lows: list[int]) -> None:
        dag = self._cond.dag
        for w in dag.iter_out(comp):
            wl = self._lows.get(w)
            if wl is None:
                continue  # fellow new component, assigned in a later step
            for r in range(self.num_traversals):
                if wl[r] < lows[r]:
                    lows[r] = wl[r]

    def _retighten_ancestors(self, comp: int) -> None:
        """Relabel every ancestor of *comp*, children-first.

        Each ancestor receives a fresh post rank beyond the current
        maximum (preserving relative order via a children-first sweep)
        and a low recomputed from its out-neighbors, so the whole region
        ends with intervals as tight as its descendants allow.  Cost is
        proportional to the ancestor region — the faithful price of
        Dagger's insertion maintenance.
        """
        dag = self._cond.dag
        region: set[int] = set()
        queue: deque[int] = deque([comp])
        while queue:
            c = queue.popleft()
            for u in dag.iter_in(c):
                if u not in region:
                    region.add(u)
                    queue.append(u)
        if not region:
            return
        # Children-first order within the region (local Kahn pass).
        pending = {
            u: sum(1 for w in dag.iter_out(u) if w in region) for u in region
        }
        ready: deque[int] = deque(u for u, d in pending.items() if d == 0)
        processed = 0
        while ready:
            u = ready.popleft()
            processed += 1
            self._max_rank += 1
            post = self._max_rank
            lows = [post] * self.num_traversals
            self._min_out_lows(u, lows)
            self._lows[u] = lows
            self._posts[u] = [post] * self.num_traversals
            for p in dag.iter_in(u):
                if p in pending:
                    pending[p] -= 1
                    if pending[p] == 0:
                        ready.append(p)
        assert processed == len(region), "ancestor region is not acyclic"

    def _widen_ancestors(self, comp: int) -> None:
        """Propagate interval widening so ancestors contain *comp* again."""
        dag = self._cond.dag
        queue: deque[int] = deque([comp])
        while queue:
            c = queue.popleft()
            cl, cp = self._lows[c], self._posts[c]
            for u in dag.iter_in(c):
                if u not in self._lows:
                    continue  # fellow new component, assigned later
                ul, up = self._lows[u], self._posts[u]
                changed = False
                for r in range(self.num_traversals):
                    if cl[r] < ul[r]:
                        ul[r] = cl[r]
                        changed = True
                    if cp[r] > up[r]:
                        up[r] = cp[r]
                        changed = True
                if changed:
                    queue.append(u)

    def _apply(self, delta: CondensationDelta, *, retighten: bool = False) -> None:
        for comp in delta.removed:
            # Conservative: dropping a component leaves ancestors' loose
            # intervals in place (sound, just less selective).
            self._lows.pop(comp, None)
            self._posts.pop(comp, None)
        for comp in reversed(delta.added):
            # delta.added is topological (sources first); assigning in
            # reverse gives every new component sight of its descendants'
            # finished intervals.
            self._assign_fresh(comp)
        if retighten:
            for comp in delta.added:
                self._retighten_ancestors(comp)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert_vertex(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> None:
        """Insert a vertex with its edges; relabels the ancestor region."""
        self._apply(
            self._cond.insert_vertex(v, in_neighbors, out_neighbors),
            retighten=True,
        )

    def delete_vertex(self, v: Vertex) -> None:
        """Delete a vertex; intervals of survivors are left loose."""
        self._apply(self._cond.delete_vertex(v))

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Insert an edge; relabels the tail's ancestor region."""
        delta = self._cond.insert_edge(tail, head)
        self._apply(delta, retighten=True)
        if delta.is_empty():
            c_tail = self._cond.component(tail)
            self._widen_from_edge(c_tail)
            self._retighten_ancestors(c_tail)

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Delete an edge; intervals of survivors are left loose."""
        self._apply(self._cond.delete_edge(tail, head))

    def _widen_from_edge(self, c_tail: int) -> None:
        dag = self._cond.dag
        lows, posts = self._lows[c_tail], self._posts[c_tail]
        for w in dag.iter_out(c_tail):
            wl, wp = self._lows[w], self._posts[w]
            for r in range(self.num_traversals):
                if wl[r] < lows[r]:
                    lows[r] = wl[r]
                if wp[r] > posts[r]:
                    posts[r] = wp[r]
        self._widen_ancestors(c_tail)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _contains(self, cu: int, cv: int) -> bool:
        lu, pu = self._lows[cu], self._posts[cu]
        lv, pv = self._lows[cv], self._posts[cv]
        for r in range(self.num_traversals):
            if lv[r] < lu[r] or pv[r] > pu[r]:
                return False
        return True

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t``: interval pruning plus fallback DFS."""
        cs = self._cond.component(s)
        ct = self._cond.component(t)
        if cs == ct:
            return True
        if not self._contains(cs, ct):
            return False
        dag = self._cond.dag
        stack = [cs]
        seen = {cs}
        while stack:
            c = stack.pop()
            for w in dag.iter_out(c):
                if w == ct:
                    return True
                if w in seen or not self._contains(w, ct):
                    continue
                seen.add(w)
                stack.append(w)
        return False

    def size_bytes(self) -> int:
        """Index size: two 4-byte ints per component per traversal."""
        return len(self._lows) * self.num_traversals * 8

    def __contains__(self, v: Vertex) -> bool:
        return v in self._cond.component_of
