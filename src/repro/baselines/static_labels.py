"""The static 2-hop competitors: TF-Label, DL, PLL and HL under TOL.

Section 4 of the paper proves that TF-Label [8], DL [17] and PLL [30] are
instantiations of the TOL framework — each is the unique TOL index for a
particular level order (topological rank for TF, descending degree for
DL/PLL).  We exploit exactly that equivalence: each competitor is built by
Butterfly (Algorithm 5) under its own order, which the paper itself notes
("any TOL index can be obtained using a modified version of DL's
pre-computation algorithm").  HL [17] is approximated by a hub-product
order (see DESIGN.md §5).

For extra confidence in the equivalence claim, this module also contains an
*independent* construction, :func:`pruned_landmark_build`: the classic PLL
pruned-BFS algorithm, which processes vertices from the highest level down
and runs a forward and a backward BFS over the **full** graph, pruning any
vertex whose existing labels already answer the query.  The test suite
asserts it produces byte-identical label sets to Butterfly for every order
— a strong cross-check, since the two algorithms share no code path (one
peels the graph, the other prunes via queries).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from ..core.index import TOLIndex
from ..core.labeling import TOLLabeling, ids_intersect
from ..core.order import LevelOrder
from ..graph.dag import ensure_dag
from ..graph.digraph import DiGraph

__all__ = [
    "build_tf_label",
    "build_dl",
    "build_pll",
    "build_hl",
    "pruned_landmark_build",
]

Vertex = Hashable


def build_tf_label(graph: DiGraph) -> TOLIndex:
    """TF-Label [8]: the TOL index under the topological level order."""
    return TOLIndex.build(graph, order="topological")


def build_dl(graph: DiGraph) -> TOLIndex:
    """Distribution Labeling [17]: the TOL index under descending degree."""
    return TOLIndex.build(graph, order="degree")


def build_pll(graph: DiGraph) -> TOLIndex:
    """Pruned Landmark Labeling [30]: equivalent to DL per [17]."""
    return TOLIndex.build(graph, order="degree")


def build_hl(graph: DiGraph) -> TOLIndex:
    """Hierarchical Labeling [17] stand-in: hub-product level order."""
    return TOLIndex.build(graph, order="hierarchical")


def pruned_landmark_build(graph: DiGraph, order: LevelOrder) -> TOLLabeling:
    """Classic PLL construction for any level order (cross-check oracle).

    For each vertex ``v`` from the highest level down: a forward BFS over
    the *whole* graph adds ``v`` to ``Lin(u)`` of every reached ``u``
    unless the labels built so far already witness ``v -> u`` — in which
    case ``u`` is pruned (not expanded).  A backward BFS mirrors this for
    out-labels.  Unlike Butterfly it never removes vertices from the
    graph; pruning alone confines the traversal.
    """
    ensure_dag(graph)
    labeling = TOLLabeling(order)
    rank = {v: i for i, v in enumerate(order)}
    for v in order:
        _pruned_bfs(graph, labeling, v, rank, forward=True)
        _pruned_bfs(graph, labeling, v, rank, forward=False)
    return labeling


def _pruned_bfs(
    graph: DiGraph,
    labeling: TOLLabeling,
    v: Vertex,
    rank: dict[Vertex, int],
    *,
    forward: bool,
) -> None:
    ids = labeling.interner.ids
    vid = ids[v]
    if forward:
        neighbors = graph.iter_out
        my_labels = labeling.out_ids[vid]
        their_labels = labeling.in_ids
        add_label = labeling.add_in_id
    else:
        neighbors = graph.iter_in
        my_labels = labeling.in_ids[vid]
        their_labels = labeling.out_ids
        add_label = labeling.add_out_id

    rank_v = rank[v]
    seen = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for u in neighbors(x):
            if u in seen:
                continue
            seen.add(u)
            uid = ids[u]
            # PLL's prune test: do the labels built so far already witness
            # the v <-> u connection?  (A higher-level u always witnesses
            # itself: it entered v's labels — or was covered — during its
            # own earlier iteration, so the test also fences the search
            # into v's lower-level region.)
            if (
                rank[u] < rank_v
                or uid in my_labels
                or vid in their_labels[uid]
                or ids_intersect(my_labels, their_labels[uid])
            ):
                continue
            add_label(uid, vid)
            queue.append(u)
