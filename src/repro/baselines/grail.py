"""GRAIL: randomized interval labeling with pruned DFS queries [31].

GRAIL assigns every vertex ``k`` intervals, one per random post-order
traversal of the DAG: ``I_r(v) = [low_r(v), post_r(v)]`` where ``post_r``
is the post-order rank in traversal ``r`` and ``low_r(v)`` is the minimum
``low_r`` over ``v`` and its out-neighbors.  The invariant: if ``u -> v``
then ``I_r(v) ⊆ I_r(u)`` for every ``r`` — so non-containment in *any*
dimension certifies non-reachability.  Containment does not certify
reachability, so positive queries fall back to a DFS from the source that
prunes every vertex whose intervals do not contain the target's.

This is the "pruned depth-first search" family's state of the art
(Section 3): tiny index, cheap construction, query time far behind the
2-hop methods — which is exactly the regime the paper's Figures 6–7 show.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from ..graph.dag import ensure_dag
from ..graph.digraph import DiGraph

__all__ = ["GrailIndex"]

Vertex = Hashable


class GrailIndex:
    """A static GRAIL index over a DAG.

    Parameters
    ----------
    graph:
        The DAG to index (a private copy is kept for query DFS).
    num_traversals:
        ``k``, the number of random interval dimensions (GRAIL's paper
        recommends 2–5; default 3).
    seed:
        Seed for the random child orders.

    Examples
    --------
    >>> g = DiGraph(edges=[(1, 2), (2, 3), (1, 4)])
    >>> idx = GrailIndex(g)
    >>> idx.query(1, 3), idx.query(4, 3)
    (True, False)
    """

    name = "GRAIL"

    def __init__(
        self, graph: DiGraph, *, num_traversals: int = 3, seed: int = 0
    ) -> None:
        ensure_dag(graph)
        self._graph = graph.copy()
        self.num_traversals = num_traversals
        # Per-vertex interval arrays: lows[v][r], posts[v][r].
        self._lows: dict[Vertex, list[int]] = {
            v: [0] * num_traversals for v in graph.vertices()
        }
        self._posts: dict[Vertex, list[int]] = {
            v: [0] * num_traversals for v in graph.vertices()
        }
        rng = random.Random(seed)
        for r in range(num_traversals):
            self._label_one_traversal(r, rng)

    def _label_one_traversal(self, r: int, rng: random.Random) -> None:
        """One randomized post-order pass assigning dimension *r*."""
        graph = self._graph
        roots = [v for v in graph.vertices() if graph.in_degree(v) == 0]
        rng.shuffle(roots)
        visited: set[Vertex] = set()
        counter = 0
        for root in roots:
            if root in visited:
                continue
            # Iterative post-order DFS with randomized child order.
            stack: list[tuple[Vertex, list[Vertex]]] = []
            children = list(graph.iter_out(root))
            rng.shuffle(children)
            stack.append((root, children))
            visited.add(root)
            while stack:
                v, pending = stack[-1]
                descended = False
                while pending:
                    w = pending.pop()
                    if w not in visited:
                        visited.add(w)
                        grandchildren = list(graph.iter_out(w))
                        rng.shuffle(grandchildren)
                        stack.append((w, grandchildren))
                        descended = True
                        break
                if descended:
                    continue
                stack.pop()
                counter += 1
                post = counter
                low = post
                for w in graph.iter_out(v):
                    if self._lows[w][r] < low:
                        low = self._lows[w][r]
                self._lows[v][r] = low
                self._posts[v][r] = post

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _contains(self, u: Vertex, v: Vertex) -> bool:
        """True iff u's intervals contain v's in every dimension."""
        lu, pu = self._lows[u], self._posts[u]
        lv, pv = self._lows[v], self._posts[v]
        for r in range(self.num_traversals):
            if lv[r] < lu[r] or pv[r] > pu[r]:
                return False
        return True

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` with interval pruning plus fallback DFS."""
        if s == t:
            self._lows[s]
            return True
        if not self._contains(s, t):
            return False
        # Containment is necessary but not sufficient: DFS with pruning.
        stack = [s]
        seen = {s}
        while stack:
            v = stack.pop()
            for w in self._graph.iter_out(v):
                if w == t:
                    return True
                if w in seen or not self._contains(w, t):
                    continue
                seen.add(w)
                stack.append(w)
        return False

    def size_bytes(self) -> int:
        """Index size: two 4-byte ints per vertex per traversal."""
        return len(self._lows) * self.num_traversals * 8

    def __contains__(self, v: Vertex) -> bool:
        return v in self._lows
