"""Index-free query baselines (the paper's "BFS" competitor).

The paper's Figures 3 and 7 include a no-index baseline: an alternating
bidirectional BFS that expands one frontier level at a time from both
endpoints (Section 8, "Experiments on Dynamic Graphs").  Its appeal for the
dynamic setting is zero update cost; its query cost is what indices must
beat.  :class:`BFSBaseline` packages it behind the same interface the
benchmark harness uses for every method; :class:`DFSBaseline` is the even
simpler unidirectional search, included for ablations.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from ..graph.digraph import DiGraph
from ..graph.traversal import bidirectional_reachable, has_path_dfs

__all__ = ["BFSBaseline", "DFSBaseline"]

Vertex = Hashable


class BFSBaseline:
    """Bidirectional-BFS reachability with zero preprocessing.

    Maintains only the graph itself; updates are plain graph mutations.

    Examples
    --------
    >>> base = BFSBaseline(DiGraph(edges=[(1, 2), (2, 3)]))
    >>> base.query(1, 3)
    True
    >>> base.delete_vertex(2)
    >>> base.query(1, 3)
    False
    """

    name = "BFS"

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph.copy()

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` with an alternating bidirectional BFS."""
        return bidirectional_reachable(self._graph, s, t)

    def insert_vertex(
        self,
        v: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> None:
        """Insert a vertex (O(degree); no index to maintain)."""
        self._graph.add_vertex(v)
        for u in in_neighbors:
            self._graph.add_edge(u, v)
        for w in out_neighbors:
            self._graph.add_edge(v, w)

    def delete_vertex(self, v: Vertex) -> None:
        """Delete a vertex (O(degree); no index to maintain)."""
        self._graph.remove_vertex(v)

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Insert an edge (O(1); no index to maintain)."""
        self._graph.add_edge(tail, head)

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Delete an edge (O(1); no index to maintain)."""
        self._graph.remove_edge(tail, head)

    def size_bytes(self) -> int:
        """Index size: zero — there is no index."""
        return 0


class DFSBaseline(BFSBaseline):
    """Unidirectional DFS reachability (slower ablation baseline)."""

    name = "DFS"

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t`` with a forward depth-first search."""
        return has_path_dfs(self._graph, s, t)
