"""Graph substrate: storage, traversal, DAG utilities, SCCs, generators, I/O."""

from .condensation import CondensationDelta, DynamicCondensation
from .csr import CSRGraph, csr_snapshot
from .dag import (
    ensure_dag,
    is_dag,
    longest_path_depths,
    topological_levels,
    topological_order,
    topological_rank,
)
from .digraph import DiGraph
from .generators import (
    FIGURE1_EDGES,
    figure1_dag,
    power_law_dag,
    random_dag,
    random_layered_dag,
    random_tree_dag,
)
from .interop import from_networkx, to_networkx
from .io import format_edge_list, parse_edge_list, read_edge_list, write_edge_list
from .scc import Condensation, condense, strongly_connected_components
from .traversal import (
    backward_reachable,
    bfs_order,
    bidirectional_reachable,
    dfs_preorder,
    forward_reachable,
    has_path_dfs,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "csr_snapshot",
    "CondensationDelta",
    "DynamicCondensation",
    "Condensation",
    "condense",
    "strongly_connected_components",
    "topological_order",
    "topological_rank",
    "is_dag",
    "ensure_dag",
    "longest_path_depths",
    "topological_levels",
    "bfs_order",
    "dfs_preorder",
    "forward_reachable",
    "backward_reachable",
    "bidirectional_reachable",
    "has_path_dfs",
    "figure1_dag",
    "FIGURE1_EDGES",
    "random_layered_dag",
    "random_tree_dag",
    "power_law_dag",
    "random_dag",
    "parse_edge_list",
    "format_edge_list",
    "read_edge_list",
    "write_edge_list",
    "from_networkx",
    "to_networkx",
]
