"""Strongly connected components and the SCC condensation (Section 2).

The paper reduces an arbitrary directed graph ``G`` to a DAG ``G*`` by
contracting every strongly connected component to a single vertex; a
reachability query on ``G`` then becomes a same-component check plus a
reachability query on ``G*``.  :func:`strongly_connected_components` is an
iterative Tarjan, and :class:`Condensation` packages the reduction together
with the vertex-to-component maps the facade index needs.
"""

from __future__ import annotations

from collections.abc import Hashable

from .digraph import DiGraph

__all__ = ["strongly_connected_components", "Condensation", "condense"]

Vertex = Hashable


def strongly_connected_components(graph: DiGraph) -> list[list[Vertex]]:
    """Return the SCCs of *graph* as lists of vertices.

    Implements Tarjan's algorithm iteratively (an explicit stack replaces
    recursion, so million-edge chains do not overflow).  Components are
    emitted in reverse topological order of the condensation — i.e. a
    component is listed before any component that can reach it — which is
    the usual Tarjan emission order.
    """
    index_of: dict[Vertex, int] = {}
    lowlink: dict[Vertex, int] = {}
    on_stack: set[Vertex] = set()
    stack: list[Vertex] = []
    components: list[list[Vertex]] = []
    counter = 0

    for root in graph.vertices():
        if root in index_of:
            continue
        # Each work item is (vertex, iterator over its out-neighbors).
        work: list[tuple[Vertex, list[Vertex]]] = [(root, list(graph.iter_out(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            v, neighbors = work[-1]
            advanced = False
            while neighbors:
                w = neighbors.pop()
                if w not in index_of:
                    index_of[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, list(graph.iter_out(w))))
                    advanced = True
                    break
                if w in on_stack and index_of[w] < lowlink[v]:
                    lowlink[v] = index_of[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index_of[v]:
                component: list[Vertex] = []
                while True:
                    w = stack.pop()
                    on_stack.remove(w)
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


class Condensation:
    """The SCC reduction ``G -> G*`` with bidirectional vertex maps.

    Attributes
    ----------
    dag:
        The condensed graph.  Its vertices are dense component ids
        (integers ``0..k-1``).
    component_of:
        Maps every original vertex to its component id.
    members:
        Maps every component id to the tuple of original vertices in it.
    """

    __slots__ = ("dag", "component_of", "members")

    def __init__(
        self,
        dag: DiGraph,
        component_of: dict[Vertex, int],
        members: dict[int, tuple[Vertex, ...]],
    ) -> None:
        self.dag = dag
        self.component_of = component_of
        self.members = members

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        return self.dag.num_vertices

    def same_component(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` iff *u* and *v* are strongly connected in ``G``."""
        return self.component_of[u] == self.component_of[v]

    def is_trivial(self) -> bool:
        """Return ``True`` iff every SCC is a single vertex (G was a DAG)."""
        return all(len(m) == 1 for m in self.members.values())

    def __repr__(self) -> str:
        return (
            f"Condensation(components={self.num_components}, "
            f"dag_edges={self.dag.num_edges})"
        )


def condense(graph: DiGraph) -> Condensation:
    """Compute the SCC condensation of *graph* (the Section-2 reduction).

    Component ids are assigned in topological order of the condensed DAG
    (component 0 has no in-edges from other components), which gives the
    downstream DAG algorithms a ready-made topological hint.
    """
    components = strongly_connected_components(graph)
    # Tarjan emits components in reverse topological order; flip for ids.
    components.reverse()
    component_of: dict[Vertex, int] = {}
    members: dict[int, tuple[Vertex, ...]] = {}
    for cid, comp in enumerate(components):
        members[cid] = tuple(comp)
        for v in comp:
            component_of[v] = cid
    dag = DiGraph(vertices=range(len(components)))
    for tail, head in graph.edges():
        c_tail = component_of[tail]
        c_head = component_of[head]
        if c_tail != c_head:
            dag.add_edge_if_absent(c_tail, c_head)
    return Condensation(dag, component_of, members)
