"""Interoperability with NetworkX.

Most Python graph pipelines already hold a ``networkx.DiGraph``; these
adapters let them build a TOL index without manual conversion.  NetworkX
is an *optional* dependency: the module imports it lazily and raises a
helpful error when it is missing, so the core library stays
dependency-free.
"""

from __future__ import annotations

from ..errors import GraphError
from .digraph import DiGraph

__all__ = ["from_networkx", "to_networkx"]


def _networkx():
    try:
        import networkx
    except ImportError:  # pragma: no cover - depends on environment
        raise GraphError(
            "networkx is not installed; `pip install networkx` to use the "
            "interop helpers"
        ) from None
    return networkx


def from_networkx(nx_graph) -> DiGraph:
    """Convert a ``networkx.DiGraph`` (or ``MultiDiGraph``) to a DiGraph.

    Parallel edges collapse to one; node and edge attributes are dropped
    (reachability only needs structure).  Undirected graphs are rejected —
    silently directing them would invent reachability the caller never
    asserted.
    """
    nx = _networkx()
    if not nx_graph.is_directed():
        raise GraphError(
            "expected a directed networkx graph; convert explicitly with "
            "Graph.to_directed() if every edge is really bidirectional"
        )
    graph = DiGraph(vertices=nx_graph.nodes())
    for tail, head in nx_graph.edges():
        graph.add_edge_if_absent(tail, head)
    return graph


def to_networkx(graph: DiGraph):
    """Convert a :class:`DiGraph` to a ``networkx.DiGraph``."""
    nx = _networkx()
    out = nx.DiGraph()
    out.add_nodes_from(graph.vertices())
    out.add_edges_from(graph.edges())
    return out
