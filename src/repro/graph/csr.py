"""CSRGraph: an immutable int-indexed snapshot of a :class:`DiGraph`.

The construction algorithms — Butterfly's peeling sweeps (Algorithm 5),
the BU/BL score sweeps of Section 7.1, and the Section-6 reduction loop —
are traversal-heavy: they visit every edge many times.  Walking
:class:`~repro.graph.digraph.DiGraph`'s dict-of-``set`` adjacency pays a
hash lookup and a generator frame per edge visit.  :class:`CSRGraph`
packs the same graph once into flat ``array('i')`` buffers so those
sweeps become integer loops over contiguous memory (mirroring the layout
:mod:`repro.core.frozen` uses for serving):

* vertices are interned to dense ids ``0..n-1`` in graph insertion order
  by a :class:`~repro.core.intern.VertexInterner` (the same id machinery
  the label storage uses);
* ``out_targets``/``in_targets`` hold every adjacency contiguously,
  sorted by id per vertex; ``out_offsets``/``in_offsets`` (``array('l')``,
  ``n + 1`` entries) delimit each vertex's slice, so forward *and*
  reverse traversals are both O(edges touched) with no hashing;
* the snapshot is built in one O(|V| + |E|) pass and is **immutable**:
  it describes the graph at snapshot time and never tracks later
  mutations.

Snapshot caching
----------------
:meth:`DiGraph.csr() <repro.graph.digraph.DiGraph.csr>` caches the
snapshot on the graph and invalidates it with the graph's mutation
counter (:attr:`DiGraph.version`), so repeated builds over an unchanged
graph — an order computation followed by a Butterfly build, or every
``bench_fig*`` ablation rebuilding indices — share one packing pass.
Callers that mutate the graph and restore it to an identical state (the
Section-6 reduction's delete/re-insert round trips) may keep using a
snapshot taken before the excursion; see ``docs/api.md`` ("snapshot
reuse contract").
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Iterator
from typing import Optional

from ..core.intern import VertexInterner
from ..errors import NotADagError

__all__ = ["CSRGraph", "csr_snapshot"]

Vertex = Hashable


class CSRGraph:
    """Read-only CSR view of a directed graph (see module docstring).

    Build one with :func:`csr_snapshot` or (cached) ``graph.csr()``.

    Examples
    --------
    >>> from repro.graph.digraph import DiGraph
    >>> g = DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "c")])
    >>> snap = g.csr()
    >>> snap.num_vertices, snap.num_edges
    (3, 3)
    >>> list(snap.out_ids_of(snap.id_of("a")))
    [1, 2]
    >>> snap.out_neighbors("a")
    ['b', 'c']
    """

    __slots__ = (
        "interner",
        "num_vertices",
        "num_edges",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_targets",
        "version",
        "_topo_ids",
    )

    def __init__(
        self,
        interner: VertexInterner,
        out_offsets: array,
        out_targets: array,
        in_offsets: array,
        in_targets: array,
        version: int = 0,
    ) -> None:
        self.interner = interner
        self.num_vertices = len(interner)
        self.num_edges = len(out_targets)
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_targets = in_targets
        #: :attr:`DiGraph.version` of the source graph at snapshot time.
        self.version = version
        self._topo_ids: Optional[array] = None

    # ------------------------------------------------------------------
    # Id boundary
    # ------------------------------------------------------------------

    def id_of(self, v: Vertex) -> int:
        """Snapshot id of *v* (raises :class:`UnknownVertexError`)."""
        return self.interner.id_of(v)

    def get(self, v: Vertex) -> Optional[int]:
        """Snapshot id of *v*, or ``None`` if it was not in the graph."""
        return self.interner.get(v)

    def vertex_of(self, i: int) -> Vertex:
        """Vertex object owning snapshot id *i*."""
        return self.interner.vertex_of(i)

    def __contains__(self, v: Vertex) -> bool:
        return v in self.interner

    def __len__(self) -> int:
        return self.num_vertices

    def vertices(self) -> Iterator[Vertex]:
        """Iterate vertex objects in id order (graph insertion order)."""
        return iter(self.interner)

    # ------------------------------------------------------------------
    # Id-level adjacency (the hot-path surface)
    # ------------------------------------------------------------------

    def out_ids_of(self, i: int) -> array:
        """Out-neighbor ids of id *i* as a sorted ``array('i')`` slice."""
        return self.out_targets[self.out_offsets[i]:self.out_offsets[i + 1]]

    def in_ids_of(self, i: int) -> array:
        """In-neighbor ids of id *i* as a sorted ``array('i')`` slice."""
        return self.in_targets[self.in_offsets[i]:self.in_offsets[i + 1]]

    def out_degree_of(self, i: int) -> int:
        """Out-degree of id *i*."""
        return self.out_offsets[i + 1] - self.out_offsets[i]

    def in_degree_of(self, i: int) -> int:
        """In-degree of id *i*."""
        return self.in_offsets[i + 1] - self.in_offsets[i]

    # ------------------------------------------------------------------
    # Vertex-level adjacency (cheap convenience for cooler paths)
    # ------------------------------------------------------------------

    def out_neighbors(self, v: Vertex) -> list:
        """Out-neighbors of *v* as vertex objects, in id order."""
        table = self.interner.table
        return [table[u] for u in self.out_ids_of(self.interner.id_of(v))]

    def in_neighbors(self, v: Vertex) -> list:
        """In-neighbors of *v* as vertex objects, in id order."""
        table = self.interner.table
        return [table[u] for u in self.in_ids_of(self.interner.id_of(v))]

    # ------------------------------------------------------------------
    # Topological sweep (shared by the DAG check and the score sweeps)
    # ------------------------------------------------------------------

    def topological_ids(self) -> array:
        """Snapshot ids in topological order (Kahn), cached.

        Newly freed ids are appended in sorted row order, so the result
        is fully deterministic for a given snapshot (it may be a
        *different* valid topological order than
        :func:`repro.graph.dag.topological_order`, whose frontier follows
        adjacency-set iteration order).

        Raises
        ------
        NotADagError
            If the snapshotted graph contains a cycle.
        """
        topo = self._topo_ids
        if topo is not None:
            return topo
        n = self.num_vertices
        offsets = self.out_offsets
        targets = self.out_targets
        in_offsets = self.in_offsets
        indegree = [in_offsets[i + 1] - in_offsets[i] for i in range(n)]
        order = array("i", (i for i in range(n) if not indegree[i]))
        head = 0
        while head < len(order):
            v = order[head]
            head += 1
            for w in targets[offsets[v]:offsets[v + 1]]:
                indegree[w] -= 1
                if not indegree[w]:
                    order.append(w)
        if len(order) != n:
            raise NotADagError(
                f"graph contains a cycle: only {len(order)} of {n} "
                f"vertices could be topologically sorted"
            )
        self._topo_ids = order
        return order

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, version={self.version})"
        )

    def check_invariants(self) -> None:
        """Validate offsets, sortedness and forward/reverse symmetry."""
        n = self.num_vertices
        self.interner.check_invariants()
        assert self.interner.free_count == 0, "snapshot ids must be dense"
        for offsets, targets in (
            (self.out_offsets, self.out_targets),
            (self.in_offsets, self.in_targets),
        ):
            assert len(offsets) == n + 1
            assert offsets[0] == 0 and offsets[-1] == len(targets)
            assert all(offsets[i] <= offsets[i + 1] for i in range(n))
            for i in range(n):
                row = targets[offsets[i]:offsets[i + 1]]
                assert list(row) == sorted(row), f"row {i} not sorted"
                assert all(0 <= u < n for u in row)
        forward = {
            (i, u)
            for i in range(n)
            for u in self.out_targets[self.out_offsets[i]:self.out_offsets[i + 1]]
        }
        reverse = {
            (u, i)
            for i in range(n)
            for u in self.in_targets[self.in_offsets[i]:self.in_offsets[i + 1]]
        }
        assert forward == reverse, "forward/reverse CSR out of sync"
        assert self.num_edges == len(forward)


def csr_snapshot(graph) -> CSRGraph:
    """Pack *graph* (a :class:`DiGraph`) into a fresh :class:`CSRGraph`.

    One O(|V| + |E|) pass (plus the per-vertex neighbor sorts that make
    every adjacency slice canonical).  Prefer ``graph.csr()``, which
    caches the snapshot until the graph mutates.
    """
    interner = VertexInterner()
    interner.intern_dense(graph.vertices())
    ids = interner.ids
    out_offsets = array("l", [0])
    out_targets = array("i")
    in_offsets = array("l", [0])
    in_targets = array("i")
    iter_out = graph.iter_out
    iter_in = graph.iter_in
    for v in graph.vertices():
        out_targets.extend(sorted(ids[u] for u in iter_out(v)))
        out_offsets.append(len(out_targets))
        in_targets.extend(sorted(ids[u] for u in iter_in(v)))
        in_offsets.append(len(in_targets))
    return CSRGraph(
        interner,
        out_offsets,
        out_targets,
        in_offsets,
        in_targets,
        version=getattr(graph, "version", 0),
    )
