"""Synthetic graph generators used by the test suite and benchmarks.

The paper evaluates on four synthetic random DAGs (RG5..RG40, generated with
the recipe of TF-Label [8]: fixed number of topological levels, varying
average degree) and eleven real graphs.  The real graphs are million-to-
25-million-vertex downloads we cannot ship or build labels for in pure
Python, so :mod:`repro.datasets` substitutes *structure-matched, scaled-down*
graphs produced by the generators in this module:

* :func:`random_layered_dag` — the RG* recipe: vertices spread over a fixed
  number of topological levels, random forward edges until the target
  average degree is met.
* :func:`random_tree_dag` — random recursive trees (avg degree ~1), the
  shape of the uniprot RDF datasets on which Dagger shines.
* :func:`power_law_dag` — citation-style DAGs with preferential attachment,
  the shape of wiki/Twitter/citeseerx/patent.
* :func:`random_dag` — plain uniform DAGs for property-based tests.
* :func:`figure1_dag` — the 8-vertex running example of the paper.

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random

from ..errors import GraphError
from .digraph import DiGraph

__all__ = [
    "random_layered_dag",
    "random_tree_dag",
    "power_law_dag",
    "random_dag",
    "figure1_dag",
    "FIGURE1_EDGES",
]

#: Edge list of the paper's Figure 1 DAG.
#:
#: The paper does not print the edge list, so it is reconstructed from
#: Table 2: this is the unique-looking edge set under which the TOL index
#: for level order l1 = (a,b,c,d,e,f,g,h) matches the paper's L1 column
#: exactly (verified in tests/core/test_paper_example.py).  Note the paper's
#: L2 column contains a typo — `c` is listed in Lout(a) and Lout(e) even
#: though both are covered by `g` via a -> g -> c, violating the Path
#: Constraint and Lemma 2 minimality — so tests check L2 against our
#: reference construction instead of the printed table.
FIGURE1_EDGES: tuple[tuple[str, str], ...] = (
    ("e", "a"),
    ("a", "b"),
    ("a", "d"),
    ("a", "g"),
    ("a", "h"),
    ("h", "b"),
    ("b", "f"),
    ("d", "f"),
    ("f", "c"),
    ("g", "c"),
)


def figure1_dag() -> DiGraph:
    """Return the 8-vertex DAG of the paper's Figure 1."""
    return DiGraph(edges=FIGURE1_EDGES)


def random_layered_dag(
    num_vertices: int,
    avg_degree: float,
    *,
    num_levels: int = 8,
    seed: int = 0,
) -> DiGraph:
    """Generate an RG*-style random DAG (the recipe of [8], Section 8).

    Each vertex is assigned uniformly at random to one of ``num_levels``
    topological levels; random edges are then added from lower-level to
    strictly higher-level vertices until ``round(num_vertices * avg_degree)``
    distinct edges exist.  The paper's RG5/RG10/RG20/RG40 datasets use
    ``num_levels=8`` and avg degrees 5, 10, 20 and 40.

    Raises
    ------
    GraphError
        If the requested edge count exceeds what the level assignment can
        accommodate, or the parameters are degenerate.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if num_levels < 2:
        raise GraphError("num_levels must be at least 2")
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")

    rng = random.Random(seed)
    level_of = [rng.randrange(num_levels) for _ in range(num_vertices)]
    by_level: list[list[int]] = [[] for _ in range(num_levels)]
    for v, lev in enumerate(level_of):
        by_level[lev].append(v)

    # Number of (u, v) pairs with level(u) < level(v): the capacity bound.
    counts = [len(bucket) for bucket in by_level]
    below = 0
    capacity = 0
    for c in counts:
        capacity += below * c
        below += c
    target_edges = round(num_vertices * avg_degree)
    if target_edges > capacity:
        raise GraphError(
            f"cannot place {target_edges} edges: level assignment only "
            f"admits {capacity} forward pairs"
        )

    graph = DiGraph(vertices=range(num_vertices))
    edges_added = 0
    # Rejection sampling over ordered level pairs; dense targets still
    # terminate quickly because capacity is checked above and the RG*
    # configurations use avg_degree far below capacity.
    while edges_added < target_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if level_of[u] >= level_of[v]:
            continue
        if graph.add_edge_if_absent(u, v):
            edges_added += 1
    return graph


def random_tree_dag(num_vertices: int, *, seed: int = 0) -> DiGraph:
    """Generate a random recursive tree with edges directed root-to-leaf.

    Vertex ``i`` (for ``i >= 1``) receives one in-edge from a uniformly
    random vertex in ``[0, i)``.  The result has ``num_vertices - 1`` edges
    (average degree just below 1), matching the tree-shaped uniprot RDF
    datasets of the paper.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    rng = random.Random(seed)
    graph = DiGraph(vertices=range(num_vertices))
    for child in range(1, num_vertices):
        parent = rng.randrange(child)
        graph.add_edge(parent, child)
    return graph


def power_law_dag(
    num_vertices: int,
    avg_degree: float,
    *,
    seed: int = 0,
) -> DiGraph:
    """Generate a citation-style DAG with a preferential-attachment skew.

    Vertices arrive one at a time; each new vertex ``i`` draws roughly
    ``avg_degree`` out-edges to *earlier* vertices, chosen preferentially by
    current in-degree (plus-one smoothing).  Edges point new -> old, so the
    arrival order reversed is a topological order.  The in-degree
    distribution is heavy-tailed, mimicking the wiki / Twitter / citeseerx /
    patent graphs in the paper's Table 3.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")

    rng = random.Random(seed)
    graph = DiGraph(vertices=range(num_vertices))
    # Repeated-target list implements preferential attachment in O(1) per
    # draw: a vertex appears once per incident citation plus once for
    # smoothing.
    attachment_pool: list[int] = [0] if num_vertices > 0 else []
    target_edges = round(num_vertices * avg_degree)
    edges_added = 0

    for i in range(1, num_vertices):
        remaining_vertices = num_vertices - i
        remaining_edges = target_edges - edges_added
        # Spread the remaining edge budget over the remaining arrivals,
        # randomizing the fractional part to avoid banding.
        quota = remaining_edges / remaining_vertices
        out_deg = int(quota) + (1 if rng.random() < quota - int(quota) else 0)
        out_deg = min(out_deg, i)  # can cite at most the i earlier vertices
        cited: set[int] = set()
        attempts = 0
        while len(cited) < out_deg and attempts < 20 * out_deg + 20:
            attempts += 1
            if rng.random() < 0.25:
                # Uniform component keeps the tail from starving.
                j = rng.randrange(i)
            else:
                j = attachment_pool[rng.randrange(len(attachment_pool))]
            if j < i:
                cited.add(j)
        for j in cited:
            graph.add_edge(i, j)
            attachment_pool.append(j)
            edges_added += 1
        attachment_pool.append(i)
    return graph


def random_dag(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int = 0,
) -> DiGraph:
    """Generate a uniform random DAG with exactly *num_edges* edges.

    A random permutation of the vertices serves as the topological order;
    edges are sampled uniformly among forward pairs.  Used heavily by the
    hypothesis-based property tests.
    """
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"a DAG on {num_vertices} vertices admits at most "
            f"{max_edges} edges, got {num_edges}"
        )
    rng = random.Random(seed)
    order = list(range(num_vertices))
    rng.shuffle(order)
    graph = DiGraph(vertices=range(num_vertices))
    edges_added = 0
    if num_edges > max_edges // 2 and num_vertices > 1:
        # Dense regime: enumerate all pairs and sample without replacement.
        pairs = [
            (order[i], order[j])
            for i in range(num_vertices)
            for j in range(i + 1, num_vertices)
        ]
        for tail, head in rng.sample(pairs, num_edges):
            graph.add_edge(tail, head)
        return graph
    while edges_added < num_edges:
        i = rng.randrange(num_vertices)
        j = rng.randrange(num_vertices)
        if i == j:
            continue
        if i > j:
            i, j = j, i
        if graph.add_edge_if_absent(order[i], order[j]):
            edges_added += 1
    return graph
