"""Reading and writing graphs as edge-list text files.

The on-disk format is the de-facto standard used by the reachability
literature's benchmark suites: one ``tail head`` pair per line, ``#``
comments, blank lines ignored.  Files ending in ``.gz`` are transparently
(de)compressed.  Vertex tokens are kept as strings unless they parse as
integers, in which case they are converted — this matches how the published
datasets number their vertices.
"""

from __future__ import annotations

import gzip
import io
from collections.abc import Callable, Hashable
from pathlib import Path
from typing import Union

from ..errors import GraphError
from .digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_list", "format_edge_list"]

PathLike = Union[str, Path]


def _coerce_token(token: str) -> Hashable:
    """Convert *token* to ``int`` when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token


def parse_edge_list(text: str) -> DiGraph:
    """Parse edge-list *text* into a :class:`DiGraph`.

    Lines may contain:

    * ``tail head`` — a directed edge,
    * ``vertex`` (a single token) — an isolated vertex,
    * ``# ...`` — a comment,
    * nothing — ignored.

    Duplicate edges are an error: silently merging them would mask generator
    or serialization bugs.
    """
    graph = DiGraph()
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if len(tokens) == 1:
            graph.add_vertex_if_absent(_coerce_token(tokens[0]))
        elif len(tokens) == 2:
            tail, head = (_coerce_token(t) for t in tokens)
            if not graph.add_edge_if_absent(tail, head):
                raise GraphError(f"duplicate edge on line {lineno}: {line!r}")
        else:
            raise GraphError(
                f"malformed edge-list line {lineno}: expected 1 or 2 tokens, "
                f"got {len(tokens)}: {line!r}"
            )
    return graph


def format_edge_list(graph: DiGraph, *, header: str = "") -> str:
    """Serialize *graph* to edge-list text (inverse of :func:`parse_edge_list`).

    Isolated vertices are written as single-token lines so the round trip
    preserves the vertex set exactly.
    """
    lines: list[str] = []
    if header:
        for header_line in header.splitlines():
            lines.append(f"# {header_line}")
    lines.append(f"# vertices={graph.num_vertices} edges={graph.num_edges}")
    for v in graph.vertices():
        if graph.out_degree(v) == 0 and graph.in_degree(v) == 0:
            lines.append(str(v))
    for tail, head in graph.edges():
        lines.append(f"{tail} {head}")
    return "\n".join(lines) + "\n"


def _opener(path: Path) -> Callable:
    return gzip.open if path.suffix == ".gz" else open


def read_edge_list(path: PathLike) -> DiGraph:
    """Read a graph from an edge-list file (gzip-compressed if ``.gz``)."""
    path = Path(path)
    with _opener(path)(path, "rt", encoding="utf-8") as handle:
        return parse_edge_list(handle.read())


def write_edge_list(graph: DiGraph, path: PathLike, *, header: str = "") -> None:
    """Write *graph* to an edge-list file (gzip-compressed if ``.gz``)."""
    path = Path(path)
    with _opener(path)(path, "wt", encoding="utf-8") as handle:
        handle.write(format_edge_list(graph, header=header))
