"""Graph traversals and index-free reachability checks.

This module provides the traversal primitives that both the TOL algorithms
and the paper's baselines are built on:

* forward / backward BFS and DFS (all iterative — recursion would overflow on
  deep synthetic DAGs),
* :func:`forward_reachable` / :func:`backward_reachable`, the ``B+(v)`` /
  ``B-(v)`` sets used by Algorithm 4 (deletion) and Algorithm 5 (Butterfly),
* :func:`bidirectional_reachable`, the alternating two-frontier BFS the paper
  uses as its index-free query baseline in Figures 3 and 7.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable, Iterator

from .digraph import DiGraph

__all__ = [
    "bfs_order",
    "dfs_preorder",
    "forward_reachable",
    "backward_reachable",
    "bidirectional_reachable",
    "has_path_dfs",
]

Vertex = Hashable
NeighborFn = Callable[[Vertex], Iterable[Vertex]]


def bfs_order(graph: DiGraph, source: Vertex, *, reverse: bool = False) -> Iterator[Vertex]:
    """Yield vertices in BFS order from *source* (inclusive).

    With ``reverse=True`` the traversal follows incoming edges instead of
    outgoing ones.
    """
    neighbors: NeighborFn = graph.iter_in if reverse else graph.iter_out
    seen = {source}
    queue: deque[Vertex] = deque([source])
    while queue:
        v = queue.popleft()
        yield v
        for w in neighbors(v):
            if w not in seen:
                seen.add(w)
                queue.append(w)


def dfs_preorder(graph: DiGraph, source: Vertex, *, reverse: bool = False) -> Iterator[Vertex]:
    """Yield vertices in DFS preorder from *source* (inclusive), iteratively."""
    neighbors: NeighborFn = graph.iter_in if reverse else graph.iter_out
    seen = {source}
    stack: list[Vertex] = [source]
    while stack:
        v = stack.pop()
        yield v
        for w in neighbors(v):
            if w not in seen:
                seen.add(w)
                stack.append(w)


def forward_reachable(
    graph: DiGraph, source: Vertex, *, include_source: bool = False
) -> set[Vertex]:
    """Return the set of vertices reachable from *source*.

    This is the paper's ``B+(v)`` (a BFS from ``v`` following outgoing
    edges).  By default the source itself is excluded, matching how the
    paper's algorithms use the set; pass ``include_source=True`` to include
    it.
    """
    reached = set(bfs_order(graph, source))
    if not include_source:
        reached.discard(source)
    return reached


def backward_reachable(
    graph: DiGraph, target: Vertex, *, include_target: bool = False
) -> set[Vertex]:
    """Return the set of vertices that can reach *target*.

    This is the paper's ``B-(v)`` (a BFS from ``v`` following incoming
    edges).
    """
    reached = set(bfs_order(graph, target, reverse=True))
    if not include_target:
        reached.discard(target)
    return reached


def bidirectional_reachable(graph: DiGraph, source: Vertex, target: Vertex) -> bool:
    """Answer ``source -> target`` with an alternating bidirectional BFS.

    This is the index-free baseline of the paper (Section 8): a forward BFS
    from the source and a backward BFS from the target take turns expanding
    one frontier level at a time, stopping as soon as the two searches meet.

    Both endpoints must be in the graph; a vertex trivially reaches itself.
    """
    if source == target:
        # Touch both to validate existence.
        graph.out_degree(source)
        graph.in_degree(target)
        return True
    graph.in_degree(target)  # validate target; source validated below

    fwd_seen: set[Vertex] = {source}
    bwd_seen: set[Vertex] = {target}
    fwd_frontier: list[Vertex] = [source]
    bwd_frontier: list[Vertex] = [target]

    while fwd_frontier and bwd_frontier:
        # Expand the smaller frontier: keeps the searched volume balanced.
        if len(fwd_frontier) <= len(bwd_frontier):
            next_frontier: list[Vertex] = []
            for v in fwd_frontier:
                for w in graph.iter_out(v):
                    if w in bwd_seen:
                        return True
                    if w not in fwd_seen:
                        fwd_seen.add(w)
                        next_frontier.append(w)
            fwd_frontier = next_frontier
        else:
            next_frontier = []
            for v in bwd_frontier:
                for w in graph.iter_in(v):
                    if w in fwd_seen:
                        return True
                    if w not in bwd_seen:
                        bwd_seen.add(w)
                        next_frontier.append(w)
            bwd_frontier = next_frontier
    return False


def has_path_dfs(graph: DiGraph, source: Vertex, target: Vertex) -> bool:
    """Answer ``source -> target`` with a plain forward DFS (slow baseline)."""
    if source == target:
        graph.out_degree(source)
        return True
    for v in dfs_preorder(graph, source):
        if v == target:
            return True
    return False
