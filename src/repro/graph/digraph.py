"""A mutable directed graph with adjacency sets.

:class:`DiGraph` is the storage substrate for everything else in this
library.  It keeps, for every vertex, the set of out-neighbors and the set of
in-neighbors, so that both forward and backward traversals — which the TOL
algorithms use constantly — run in time proportional to the edges touched.

Vertices are arbitrary hashable objects.  The index layers map them to dense
integers (see :mod:`repro.core.index`), but the graph itself does not care.

Design notes
------------
* Neighbor containers are ``set`` objects: O(1) membership, insertion and
  deletion, which matches the dynamic-update workloads of the paper.
* Mutating methods raise precise exceptions from :mod:`repro.errors` rather
  than silently ignoring duplicate or missing elements; benchmark code that
  wants idempotent behavior uses the ``*_if_absent`` / ``discard_*`` variants.
* Iteration order over vertices is insertion order (a ``dict`` is the vertex
  registry), which keeps generators and tests deterministic.
* Every mutation bumps a monotonically increasing :attr:`DiGraph.version`
  counter.  The counter keys the cached :meth:`DiGraph.csr` snapshot (see
  :mod:`repro.graph.csr`) and lets any derived structure detect staleness
  cheaply.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from ..errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    VertexExistsError,
    VertexNotFoundError,
)

__all__ = ["DiGraph"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class DiGraph:
    """A directed graph with O(1) edge insertion, deletion and lookup.

    Parameters
    ----------
    edges:
        Optional iterable of ``(tail, head)`` pairs used to initialize the
        graph.  Endpoint vertices are created on demand.
    vertices:
        Optional iterable of vertices to create up front (useful for graphs
        with isolated vertices).

    Examples
    --------
    >>> g = DiGraph(edges=[("a", "b"), ("b", "c")])
    >>> g.has_edge("a", "b")
    True
    >>> sorted(g.out_neighbors("b"))
    ['c']
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    __slots__ = ("_succ", "_pred", "_num_edges", "_version", "_csr_cache")

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        # _succ[v] = set of out-neighbors, _pred[v] = set of in-neighbors.
        # The key sets of both dicts are always identical.
        self._succ: dict[Vertex, set[Vertex]] = {}
        self._pred: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        self._version = 0
        self._csr_cache = None
        if vertices is not None:
            for v in vertices:
                self.add_vertex_if_absent(v)
        if edges is not None:
            for tail, head in edges:
                self.add_edge_if_absent(tail, head)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of directed edges currently in the graph."""
        return self._num_edges

    @property
    def version(self) -> int:
        """Mutation counter: increments on every structural change.

        Two reads returning the same value guarantee the graph was not
        mutated in between; used to invalidate the cached :meth:`csr`
        snapshot.
        """
        return self._version

    def csr(self):
        """Return a CSR snapshot of the graph, cached until mutation.

        The first call packs the adjacency into a
        :class:`~repro.graph.csr.CSRGraph` (one O(|V|+|E|) pass); later
        calls return the same object until :attr:`version` changes.  The
        snapshot is immutable — it never reflects mutations made after
        it was taken.
        """
        cache = self._csr_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        from .csr import csr_snapshot

        snap = csr_snapshot(self)
        self._csr_cache = (self._version, snap)
        return snap

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._succ

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is in the graph."""
        return vertex in self._succ

    def has_edge(self, tail: Vertex, head: Vertex) -> bool:
        """Return ``True`` if the directed edge ``tail -> head`` exists."""
        succ = self._succ.get(tail)
        return succ is not None and head in succ

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices in insertion order."""
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(tail, head)`` pairs."""
        for tail, heads in self._succ.items():
            for head in heads:
                yield (tail, head)

    def out_neighbors(self, vertex: Vertex) -> frozenset[Vertex]:
        """Return the out-neighbors of *vertex* as a frozen snapshot."""
        return frozenset(self._out(vertex))

    def in_neighbors(self, vertex: Vertex) -> frozenset[Vertex]:
        """Return the in-neighbors of *vertex* as a frozen snapshot."""
        return frozenset(self._in(vertex))

    def iter_out(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate out-neighbors without copying.

        The graph must not be mutated while the iterator is live.
        """
        return iter(self._out(vertex))

    def iter_in(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate in-neighbors without copying.

        The graph must not be mutated while the iterator is live.
        """
        return iter(self._in(vertex))

    def out_degree(self, vertex: Vertex) -> int:
        """Number of outgoing edges of *vertex*."""
        return len(self._out(vertex))

    def in_degree(self, vertex: Vertex) -> int:
        """Number of incoming edges of *vertex*."""
        return len(self._in(vertex))

    def degree(self, vertex: Vertex) -> int:
        """Total degree (in + out) of *vertex*."""
        return len(self._out(vertex)) + len(self._in(vertex))

    def average_degree(self) -> float:
        """Average out-degree, ``|E| / |V|`` (0.0 for the empty graph)."""
        if not self._succ:
            return 0.0
        return self._num_edges / len(self._succ)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex.

        Raises
        ------
        VertexExistsError
            If *vertex* is already present.
        """
        if vertex in self._succ:
            raise VertexExistsError(vertex)
        self._succ[vertex] = set()
        self._pred[vertex] = set()
        self._version += 1

    def add_vertex_if_absent(self, vertex: Vertex) -> bool:
        """Add *vertex* if missing; return ``True`` if it was added."""
        if vertex in self._succ:
            return False
        self._succ[vertex] = set()
        self._pred[vertex] = set()
        self._version += 1
        return True

    def add_edge(self, tail: Vertex, head: Vertex) -> None:
        """Add the directed edge ``tail -> head``, creating endpoints.

        Self-loops are permitted by the graph store (the DAG layers reject
        them separately).

        Raises
        ------
        EdgeExistsError
            If the edge is already present.
        """
        self.add_vertex_if_absent(tail)
        self.add_vertex_if_absent(head)
        if head in self._succ[tail]:
            raise EdgeExistsError(tail, head)
        self._succ[tail].add(head)
        self._pred[head].add(tail)
        self._num_edges += 1
        self._version += 1

    def add_edge_if_absent(self, tail: Vertex, head: Vertex) -> bool:
        """Add the edge if missing; return ``True`` if it was added."""
        self.add_vertex_if_absent(tail)
        self.add_vertex_if_absent(head)
        if head in self._succ[tail]:
            return False
        self._succ[tail].add(head)
        self._pred[head].add(tail)
        self._num_edges += 1
        self._version += 1
        return True

    def remove_edge(self, tail: Vertex, head: Vertex) -> None:
        """Remove the directed edge ``tail -> head``.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        succ = self._succ.get(tail)
        if succ is None or head not in succ:
            raise EdgeNotFoundError(tail, head)
        succ.remove(head)
        self._pred[head].remove(tail)
        self._num_edges -= 1
        self._version += 1

    def discard_edge(self, tail: Vertex, head: Vertex) -> bool:
        """Remove the edge if present; return ``True`` if it was removed."""
        succ = self._succ.get(tail)
        if succ is None or head not in succ:
            return False
        succ.remove(head)
        self._pred[head].remove(tail)
        self._num_edges -= 1
        self._version += 1
        return True

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove *vertex* and all edges incident to it.

        Raises
        ------
        VertexNotFoundError
            If *vertex* is not in the graph.
        """
        out = self._succ.get(vertex)
        if out is None:
            raise VertexNotFoundError(vertex)
        inn = self._pred[vertex]
        for head in out:
            if head != vertex:
                self._pred[head].remove(vertex)
        for tail in inn:
            if tail != vertex:
                self._succ[tail].remove(vertex)
        # A self-loop contributes one edge but appears in both sets.
        removed = len(out) + len(inn)
        if vertex in out:
            removed -= 1
        self._num_edges -= removed
        del self._succ[vertex]
        del self._pred[vertex]
        self._version += 1

    def discard_vertex(self, vertex: Vertex) -> bool:
        """Remove *vertex* if present; return ``True`` if it was removed."""
        if vertex not in self._succ:
            return False
        self.remove_vertex(vertex)
        return True

    def clear(self) -> None:
        """Remove all vertices and edges."""
        self._succ.clear()
        self._pred.clear()
        self._num_edges = 0
        self._version += 1
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "DiGraph":
        """Return an independent deep copy of the graph."""
        clone = DiGraph()
        clone._succ = {v: set(heads) for v, heads in self._succ.items()}
        clone._pred = {v: set(tails) for v, tails in self._pred.items()}
        clone._num_edges = self._num_edges
        return clone

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph()
        rev._succ = {v: set(tails) for v, tails in self._pred.items()}
        rev._pred = {v: set(heads) for v, heads in self._succ.items()}
        rev._num_edges = self._num_edges
        return rev

    def subgraph(self, keep: Iterable[Vertex]) -> "DiGraph":
        """Return the induced subgraph on the vertices in *keep*.

        Vertices in *keep* that are not in the graph are ignored.
        """
        keep_set = {v for v in keep if v in self._succ}
        sub = DiGraph(vertices=keep_set)
        for tail in keep_set:
            for head in self._succ[tail]:
                if head in keep_set:
                    sub.add_edge_if_absent(tail, head)
        return sub

    # ------------------------------------------------------------------
    # Equality and debugging
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._succ == other._succ

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )

    def check_invariants(self) -> None:
        """Validate internal consistency (for tests); raise AssertionError."""
        assert self._succ.keys() == self._pred.keys()
        edge_count = 0
        for tail, heads in self._succ.items():
            for head in heads:
                assert tail in self._pred[head], (tail, head)
                edge_count += 1
        for head, tails in self._pred.items():
            for tail in tails:
                assert head in self._succ[tail], (tail, head)
        assert edge_count == self._num_edges

    # ------------------------------------------------------------------
    # Internal accessors
    # ------------------------------------------------------------------

    def _out(self, vertex: Vertex) -> set[Vertex]:
        try:
            return self._succ[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def _in(self, vertex: Vertex) -> set[Vertex]:
        try:
            return self._pred[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None
