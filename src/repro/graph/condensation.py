"""Incrementally maintained SCC condensation for dynamic graphs.

The TOL algorithms (Section 5 of the paper) require that the graph being
indexed is a DAG and that every update keeps it one.  The paper handles the
general case by "incrementally maintaining the strongly connected components
in G, as discussed in [32]" (Dagger).  :class:`DynamicCondensation` is that
substrate: it owns the user's (possibly cyclic) graph, keeps its SCC
condensation up to date under vertex and edge updates, and reports every
change to the condensed DAG as a :class:`CondensationDelta` — a list of
condensation vertices to delete followed by a list to (re)insert.  The
facade index (:mod:`repro.core.index`) replays each delta onto the TOL
index using the paper's vertex-deletion and vertex-insertion algorithms.

Component ids are dense-ish integers drawn from a monotonically increasing
counter and are never reused, so a delta's ``removed`` and ``added`` lists
are unambiguous even when a component is conceptually "the same" before and
after (e.g. an edge insertion that merely adds a condensation edge removes
and re-adds the head component).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from ..errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    VertexExistsError,
    VertexNotFoundError,
)
from .digraph import DiGraph
from .scc import condense, strongly_connected_components

__all__ = ["CondensationDelta", "DynamicCondensation"]

Vertex = Hashable


@dataclass(frozen=True)
class CondensationDelta:
    """The condensed-DAG effect of one update on the original graph.

    Attributes
    ----------
    removed:
        Component ids that must be deleted from any index built on the
        condensation, in order.
    added:
        Component ids that must be inserted afterwards, in order.  Their
        adjacency should be read from the condensation *after* the update.
    """

    removed: tuple[int, ...] = ()
    added: tuple[int, ...] = ()

    def is_empty(self) -> bool:
        """Return ``True`` when the condensed DAG was not affected."""
        return not self.removed and not self.added


@dataclass
class _ComponentEdges:
    """Multiplicity-counted adjacency between components."""

    # (tail_comp, head_comp) -> number of original-graph edges between them
    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def add(self, dag: DiGraph, tail: int, head: int) -> None:
        """Count one member edge; materialize the DAG edge on 0 -> 1."""
        key = (tail, head)
        new = self.counts.get(key, 0) + 1
        self.counts[key] = new
        if new == 1:
            dag.add_edge(tail, head)

    def remove(self, dag: DiGraph, tail: int, head: int) -> None:
        """Uncount one member edge; drop the DAG edge on 1 -> 0."""
        key = (tail, head)
        remaining = self.counts[key] - 1
        if remaining:
            self.counts[key] = remaining
        else:
            del self.counts[key]
            dag.remove_edge(tail, head)

    def drop_component(self, dag: DiGraph, comp: int) -> None:
        """Forget every count touching *comp* and detach it from the DAG."""
        for other in dag.out_neighbors(comp):
            del self.counts[(comp, other)]
        for other in dag.in_neighbors(comp):
            del self.counts[(other, comp)]
        dag.remove_vertex(comp)


class DynamicCondensation:
    """A directed graph together with its live SCC condensation.

    Parameters
    ----------
    graph:
        Initial graph (may contain cycles).  The instance takes ownership;
        callers must mutate the graph only through this class afterwards.

    Examples
    --------
    >>> dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3)]))
    >>> dc.dag.num_vertices
    3
    >>> delta = dc.insert_edge(3, 1)   # creates the cycle 1 -> 2 -> 3 -> 1
    >>> dc.dag.num_vertices
    1
    >>> len(delta.removed), len(delta.added)
    (3, 1)
    """

    def __init__(self, graph: DiGraph | None = None) -> None:
        self.graph = graph if graph is not None else DiGraph()
        initial = condense(self.graph)
        # Rebuild the DAG edge by edge through the multiplicity counter so
        # counter and DAG stay in lockstep from the start.
        self.dag = DiGraph(vertices=initial.members.keys())
        self.component_of: dict[Vertex, int] = dict(initial.component_of)
        self.members: dict[int, set[Vertex]] = {
            cid: set(vs) for cid, vs in initial.members.items()
        }
        self._next_id = initial.num_components
        self._edges = _ComponentEdges()
        for tail, head in self.graph.edges():
            c_tail = self.component_of[tail]
            c_head = self.component_of[head]
            if c_tail != c_head:
                self._edges.add(self.dag, c_tail, c_head)

    @classmethod
    def restore(
        cls, graph: DiGraph, component_of: dict[Vertex, int]
    ) -> "DynamicCondensation":
        """Rebuild a condensation from a snapshot, preserving component ids.

        The normal constructor assigns fresh ids from its own counter, so
        two builds of the same graph need not agree; a serialized index
        (``.tolf`` pack) names components by id, so restoring must reuse
        the recorded ``component_of`` mapping verbatim.  The id counter
        resumes above the largest restored id, keeping the never-reuse
        guarantee.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.component_of = dict(component_of)
        members: dict[int, set[Vertex]] = {}
        for v in graph.vertices():
            try:
                comp = self.component_of[v]
            except KeyError:
                raise VertexNotFoundError(v) from None
            members.setdefault(comp, set()).add(v)
        self.members = members
        self.dag = DiGraph(vertices=members.keys())
        self._next_id = max(members, default=-1) + 1
        self._edges = _ComponentEdges()
        for tail, head in graph.edges():
            c_tail = self.component_of[tail]
            c_head = self.component_of[head]
            if c_tail != c_head:
                self._edges.add(self.dag, c_tail, c_head)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def component(self, vertex: Vertex) -> int:
        """Return the component id containing *vertex*."""
        try:
            return self.component_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def same_component(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` iff *u* and *v* are strongly connected."""
        return self.component(u) == self.component(v)

    # ------------------------------------------------------------------
    # Vertex updates
    # ------------------------------------------------------------------

    def insert_vertex(
        self,
        vertex: Vertex,
        in_neighbors: Iterable[Vertex] = (),
        out_neighbors: Iterable[Vertex] = (),
    ) -> CondensationDelta:
        """Insert *vertex* with edges from *in_neighbors* and to *out_neighbors*.

        All named neighbors must already exist.  If the insertion closes a
        cycle, every component on a cycle through *vertex* is merged into a
        single new component.
        """
        if vertex in self.component_of:
            raise VertexExistsError(vertex)
        ins = list(dict.fromkeys(in_neighbors))
        outs = list(dict.fromkeys(out_neighbors))
        for u in ins + outs:
            if u not in self.component_of:
                raise VertexNotFoundError(u)

        self.graph.add_vertex(vertex)
        for u in ins:
            self.graph.add_edge(u, vertex)
        for w in outs:
            self.graph.add_edge(vertex, w)

        out_comps = {self.component_of[w] for w in outs}
        in_comps = {self.component_of[u] for u in ins}
        cycle_comps = self._comps_between(out_comps, in_comps)
        if not cycle_comps:
            comp = self._new_component({vertex})
            self._recount_component(comp)
            return CondensationDelta(removed=(), added=(comp,))
        return self._merge(cycle_comps, extra_members={vertex})

    def delete_vertex(self, vertex: Vertex) -> CondensationDelta:
        """Delete *vertex* and all incident edges.

        If the vertex's component falls apart, the split pieces become new
        components.
        """
        comp = self.component(vertex)
        self.graph.remove_vertex(vertex)
        del self.component_of[vertex]
        remaining = self.members[comp] - {vertex}
        return self._rebuild_component(comp, remaining)

    # ------------------------------------------------------------------
    # Edge updates
    # ------------------------------------------------------------------

    def insert_edge(self, tail: Vertex, head: Vertex) -> CondensationDelta:
        """Insert the edge ``tail -> head`` between existing vertices."""
        c_tail = self.component(tail)
        c_head = self.component(head)
        if self.graph.has_edge(tail, head):
            raise EdgeExistsError(tail, head)
        self.graph.add_edge(tail, head)
        if c_tail == c_head:
            return CondensationDelta()
        cycle_comps = self._comps_between({c_head}, {c_tail})
        if cycle_comps:
            return self._merge(cycle_comps, extra_members=set())
        had_edge = self.dag.has_edge(c_tail, c_head)
        self._edges.add(self.dag, c_tail, c_head)
        if had_edge:
            return CondensationDelta()
        # New condensation edge: downstream indices refresh the head
        # component (delete + reinsert picks up the new in-edge).
        return CondensationDelta(removed=(c_head,), added=(c_head,))

    def delete_edge(self, tail: Vertex, head: Vertex) -> CondensationDelta:
        """Delete the edge ``tail -> head``."""
        c_tail = self.component(tail)
        c_head = self.component(head)
        if not self.graph.has_edge(tail, head):
            raise EdgeNotFoundError(tail, head)
        self.graph.remove_edge(tail, head)
        if c_tail != c_head:
            still_there = self.dag.has_edge(c_tail, c_head)
            self._edges.remove(self.dag, c_tail, c_head)
            lost_edge = still_there and not self.dag.has_edge(c_tail, c_head)
            if not lost_edge:
                return CondensationDelta()
            return CondensationDelta(removed=(c_head,), added=(c_head,))
        # Intra-component edge: the component may split.
        return self._rebuild_component(c_tail, set(self.members[c_tail]))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _new_component(self, members: set[Vertex]) -> int:
        comp = self._next_id
        self._next_id += 1
        self.members[comp] = members
        for v in members:
            self.component_of[v] = comp
        self.dag.add_vertex(comp)
        return comp

    def _comps_between(self, sources: set[int], targets: set[int]) -> set[int]:
        """Return components C with source ->* C ->* target in the DAG.

        Sources and targets count as reachable from / reaching themselves,
        so the result is nonempty iff some source reaches some target.
        """
        if not sources or not targets:
            return set()
        forward = set(sources)
        queue: deque[int] = deque(sources)
        while queue:
            c = queue.popleft()
            for d in self.dag.iter_out(c):
                if d not in forward:
                    forward.add(d)
                    queue.append(d)
        if forward.isdisjoint(targets):
            return set()
        backward = set(targets)
        queue = deque(targets)
        while queue:
            c = queue.popleft()
            for d in self.dag.iter_in(c):
                if d in forward and d not in backward:
                    backward.add(d)
                    queue.append(d)
        return forward & backward

    def _merge(
        self, comps: set[int], extra_members: set[Vertex]
    ) -> CondensationDelta:
        """Collapse *comps* (plus *extra_members*) into one new component."""
        merged_members = set(extra_members)
        for c in comps:
            merged_members |= self.members[c]
        for c in comps:
            self._edges.drop_component(self.dag, c)
            del self.members[c]
        new_comp = self._new_component(merged_members)
        self._recount_component(new_comp)
        return CondensationDelta(removed=tuple(sorted(comps)), added=(new_comp,))

    def _rebuild_component(
        self, comp: int, remaining: set[Vertex]
    ) -> CondensationDelta:
        """Replace *comp* by the SCCs of the subgraph induced on *remaining*."""
        self._edges.drop_component(self.dag, comp)
        del self.members[comp]
        if not remaining:
            return CondensationDelta(removed=(comp,), added=())
        if len(remaining) == 1:
            only = next(iter(remaining))
            new_comp = self._new_component({only})
            self._recount_component(new_comp)
            return CondensationDelta(removed=(comp,), added=(new_comp,))

        sub = self.graph.subgraph(remaining)
        pieces = strongly_connected_components(sub)
        # Tarjan emits reverse-topological order; insert sources first so a
        # replaying index sees each new component after its in-neighbors
        # among the new pieces already exist (any order is safe, this one
        # is also the cheapest for TOL insertion).
        pieces.reverse()
        new_ids = [self._new_component(set(piece)) for piece in pieces]
        self._recount_components(new_ids)
        return CondensationDelta(removed=(comp,), added=tuple(new_ids))

    def _recount_component(self, comp: int) -> None:
        """Rebuild DAG edge counts for all edges incident to *comp*."""
        self._recount_components([comp])

    def _recount_components(self, comps: list[int]) -> None:
        """Rebuild DAG edge counts for all edges incident to *comps*.

        Edges between two components of the batch are counted once (via
        the tail's outgoing scan); incoming edges are only counted when
        their tail lies outside the batch.
        """
        batch = set(comps)
        for comp in comps:
            for v in self.members[comp]:
                for w in self.graph.iter_out(v):
                    c_w = self.component_of[w]
                    if c_w != comp:
                        self._edges.add(self.dag, comp, c_w)
                for u in self.graph.iter_in(v):
                    c_u = self.component_of[u]
                    if c_u != comp and c_u not in batch:
                        self._edges.add(self.dag, c_u, comp)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Cross-check against a from-scratch condensation (tests only)."""
        self.graph.check_invariants()
        self.dag.check_invariants()
        fresh = condense(self.graph)
        assert fresh.num_components == self.dag.num_vertices
        # Same partition of vertices into components.
        fresh_parts = {frozenset(m) for m in fresh.members.values()}
        live_parts = {frozenset(m) for m in self.members.values()}
        assert fresh_parts == live_parts
        # Same condensation edges (up to the component relabeling).
        relabel = {
            fresh.component_of[next(iter(self.members[c]))]: c
            for c in self.members
        }
        fresh_edges = {
            (relabel[t], relabel[h]) for t, h in fresh.dag.edges()
        }
        assert fresh_edges == set(self.dag.edges())
        # Edge counts match the graph.
        from collections import Counter

        expected = Counter()
        for tail, head in self.graph.edges():
            ct, ch = self.component_of[tail], self.component_of[head]
            if ct != ch:
                expected[(ct, ch)] += 1
        assert dict(expected) == self._edges.counts
