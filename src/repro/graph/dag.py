"""DAG-specific utilities: topological orders, acyclicity checks, depths.

The paper (Section 2) assumes the input graph has been reduced to a DAG and
relies on a *topological order* ``o``: if ``u -> v`` then ``o(u) < o(v)``.
Algorithm 4 (deletion) processes vertices "in ascending order of o(u)", and
the score functions of Section 7.1 are computed by sweeps in topological and
reverse-topological order.  All of that lives here.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from ..errors import NotADagError
from .digraph import DiGraph

__all__ = [
    "topological_order",
    "topological_rank",
    "is_dag",
    "ensure_dag",
    "longest_path_depths",
    "topological_levels",
]

Vertex = Hashable


def topological_order(graph: DiGraph) -> list[Vertex]:
    """Return the vertices of *graph* in a topological order.

    Uses Kahn's algorithm.  Ties (vertices whose in-degrees reach zero
    together) are broken by graph insertion order, so the result is
    deterministic for a deterministically built graph.

    Raises
    ------
    NotADagError
        If the graph contains a cycle (including self-loops).
    """
    indegree = {v: graph.in_degree(v) for v in graph.vertices()}
    queue: deque[Vertex] = deque(v for v, d in indegree.items() if d == 0)
    order: list[Vertex] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.iter_out(v):
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    if len(order) != graph.num_vertices:
        raise NotADagError(
            f"graph contains a cycle: only {len(order)} of "
            f"{graph.num_vertices} vertices could be topologically sorted"
        )
    return order


def topological_rank(graph: DiGraph) -> dict[Vertex, int]:
    """Return ``o(v)`` for every vertex: its position in a topological order.

    Ranks start at 0 and satisfy ``u -> v  =>  o(u) < o(v)``.
    """
    return {v: i for i, v in enumerate(topological_order(graph))}


def is_dag(graph: DiGraph) -> bool:
    """Return ``True`` iff *graph* is acyclic."""
    try:
        topological_order(graph)
    except NotADagError:
        return False
    return True


def ensure_dag(graph: DiGraph) -> None:
    """Raise :class:`NotADagError` unless *graph* is acyclic."""
    topological_order(graph)


def longest_path_depths(graph: DiGraph) -> dict[Vertex, int]:
    """Return, for each vertex, the length of the longest path ending at it.

    Source vertices (no in-edges) have depth 0.  This is the "topological
    level" notion used by the RG* synthetic generators of [8]: a generated
    graph with ``topological level = 8`` has ``max(depth) + 1 == 8`` layers.
    """
    depths: dict[Vertex, int] = {}
    for v in topological_order(graph):
        best = -1
        for u in graph.iter_in(v):
            if depths[u] > best:
                best = depths[u]
        depths[v] = best + 1
    return depths


def topological_levels(graph: DiGraph) -> list[list[Vertex]]:
    """Group vertices by longest-path depth; level ``i`` holds depth-``i``."""
    depths = longest_path_depths(graph)
    if not depths:
        return []
    levels: list[list[Vertex]] = [[] for _ in range(max(depths.values()) + 1)]
    for v, d in depths.items():
        levels[d].append(v)
    return levels
