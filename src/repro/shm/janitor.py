"""Boot-time janitor for orphaned shared-memory segments.

A SIGKILLed server (or a supervisor that died before its ``finally``
blocks ran) leaks every ``repro-*`` name it had linked: control blocks
and data segments live in ``/dev/shm`` until *someone* unlinks them, and
nothing in the kernel ties their lifetime to the creating process.  The
janitor closes that loop: every server boot (and ``repro shm-janitor``)
scans for segment families whose **owner pid is dead** and unlinks them.

Ownership is read from the family's control block — cell 8 records the
pid of the creating supervisor (see :mod:`repro.shm.control`).  A family
is reaped only when that pid is gone; a family whose control block is
itself missing (the owner unlinked it but crashed mid-sweep of the data
segments) is aged out: orphan data segments older than *min_age* seconds
with no control block are fair game, the age gate protecting a sibling
server that is mid-publish between creating a segment and bumping the
control block.

Everything here is best-effort by design: two janitors racing, or a
janitor racing a live unlink, must never raise — ``FileNotFoundError``
just means someone else got there first.
"""

from __future__ import annotations

import os
import re
import time
from typing import Optional

from .control import ControlBlock, control_name, pid_alive, unlink_segment

__all__ = ["scan_orphans", "reap_orphans", "sweep_family", "list_families"]

SHM_DIR = "/dev/shm"

# Families created by new_base_name(): repro-<8 hex chars>.  Data
# segments append -g<generation>; the control block appends -ctl.
_FAMILY_RE = re.compile(r"^(repro-[0-9a-f]{8})(?:-ctl|-g\d+)$")


def _shm_entries(shm_dir: str) -> list[str]:
    try:
        return os.listdir(shm_dir)
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return []


def list_families(*, shm_dir: str = SHM_DIR) -> dict[str, list[str]]:
    """Map each ``repro-*`` family base to its linked segment names."""
    families: dict[str, list[str]] = {}
    for entry in _shm_entries(shm_dir):
        match = _FAMILY_RE.match(entry)
        if match:
            families.setdefault(match.group(1), []).append(entry)
    return families


def _family_owner(base: str) -> Optional[int]:
    """Owner pid from the family's control block, or None if unreadable."""
    try:
        block = ControlBlock.attach(control_name(base))
    except FileNotFoundError:
        return None
    except Exception:  # pragma: no cover - torn/foreign segment
        return None
    try:
        return block.owner_pid
    finally:
        block.close()


def _entry_age(path: str) -> float:
    try:
        return time.time() - os.stat(path).st_mtime
    except OSError:  # pragma: no cover - raced an unlink
        return 0.0


def scan_orphans(
    *, shm_dir: str = SHM_DIR, min_age: float = 30.0
) -> dict[str, list[str]]:
    """Families eligible for reaping, without touching anything.

    Returns ``{base: [segment names]}`` for every family whose owner
    pid is dead, plus control-block-less families older than *min_age*.
    """
    orphans: dict[str, list[str]] = {}
    for base, entries in list_families(shm_dir=shm_dir).items():
        owner = _family_owner(base)
        if owner is not None:
            if not pid_alive(owner):
                orphans[base] = sorted(entries)
            continue
        # No control block: either a foreign family or a half-swept
        # crash.  Only claim it once every entry has sat past the age
        # gate — a live writer creates its data segment briefly before
        # the control block names it.
        if entries and all(
            _entry_age(os.path.join(shm_dir, e)) >= min_age for e in entries
        ):
            orphans[base] = sorted(entries)
    return orphans


def _unlink_name(name: str) -> bool:
    # Tracker-bypassing unlink: these names belong to a *dead*
    # process's resource tracker (or to none at all), so the normal
    # SharedMemory.unlink() would emit a bogus UNREGISTER.
    try:
        return unlink_segment(name)
    except OSError:  # pragma: no cover - foreign/corrupt segment
        return False


def reap_orphans(
    *, shm_dir: str = SHM_DIR, min_age: float = 30.0, registry=None
) -> dict[str, list[str]]:
    """Unlink every orphaned family; returns what was actually removed."""
    reaped: dict[str, list[str]] = {}
    for base, entries in scan_orphans(shm_dir=shm_dir, min_age=min_age).items():
        removed = [name for name in entries if _unlink_name(name)]
        if removed:
            reaped[base] = removed
            if registry is not None:
                registry.incr("shm.janitor_reaped", len(removed))
    return reaped


def sweep_family(base: str, *, shm_dir: str = SHM_DIR) -> list[str]:
    """Unlink every remaining segment of *base* (supervisor shutdown).

    The supervisor calls this after the writer and workers are gone:
    whatever the publisher's own close left behind (the current
    generation in attach mode, segments stranded by a SIGKILL) is
    removed so a kill-loop leaks nothing.
    """
    removed = []
    for entry in _shm_entries(shm_dir):
        match = _FAMILY_RE.match(entry)
        if match and match.group(1) == base and _unlink_name(entry):
            removed.append(entry)
    return sorted(removed)
