"""Writer-side snapshot publication into shared memory.

The publisher either **owns** the control segment (fresh boot: it
creates the block and every data segment, and unlinks them all on
close) or **attaches** to one a predecessor left behind (writer
failover: the supervisor keeps the control block alive across writer
respawns so readers never lose their map).  A publish is:

1. freeze the live index under the service read lock (a consistent
   ``(frozen, component_of, epoch)`` triple);
2. pack it to TOLF bytes (no DAG edges, no graph — readers only query);
3. create ``{base}-g{generation}`` sized exactly to the pack, copy the
   bytes in;
4. seqlock-update the control block so readers see the new generation
   only after the segment is fully written;
5. retire the previous segment: it stays linked for a grace period so a
   reader that read the old generation just before the bump can still
   attach it, then it is unlinked (attached readers keep their mapping —
   unlink only removes the name).

A background thread polls the service epoch and republishes on change,
mirrors the degraded flag into the control block so readers route
queries to the writer while the index is rebuilding, and keeps the
``shm.snapshot_age_ms`` gauge current.

Failover attach details:

* the seqlock is **repaired** first — a writer SIGKILLed mid-flip
  leaves the sequence odd forever, and only a new writer may fix it;
* generation numbering **continues** from the inherited value, so
  readers' single-cell staleness check stays monotonic;
* published epochs are **floored** at the inherited epoch: recovery
  replays the WAL, but if the recovered service restarts its epoch
  counter below what readers already saw, per-connection epoch pinning
  must not observe time going backwards;
* the inherited data segment is retired (and eventually unlinked by
  name — this process holds no handle to it) after the first fresh
  publish, exactly like a segment the publisher created itself.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from multiprocessing import shared_memory

from ..core.serialize import pack_frozen
from .control import (
    ControlBlock,
    create_segment,
    new_base_name,
    pid_alive,
    segment_name,
    unlink_segment,
)

__all__ = ["SnapshotPublisher"]


class SnapshotPublisher:
    """Publish frozen snapshots of *service*'s index into shared memory.

    Parameters
    ----------
    service:
        A :class:`~repro.service.server.ReachabilityService`; must expose
        ``freeze_snapshot()`` and ``epoch``.
    num_workers:
        Sizes the control block's worker-slot table (ignored in attach
        mode — the existing block already carries it).
    grace_period:
        Seconds a retired data segment stays linked after being
        superseded.
    registry:
        Optional metric registry; counts ``shm.publishes`` /
        ``shm.segments_unlinked`` and maintains the
        ``shm.snapshot_age_ms`` gauge.
    control:
        Name of an existing control segment to attach to instead of
        creating one (writer failover).  The attaching publisher never
        unlinks the control block or sets its shutdown flag — the
        supervisor owns both.
    injector:
        Optional :class:`~repro.service.faults.FaultInjector`; fires the
        ``shm.publish.flip`` crash point while the seqlock is odd, the
        narrowest window a writer death can leave readers stalled in.
    """

    def __init__(
        self,
        service,
        *,
        base: Optional[str] = None,
        num_workers: int = 0,
        grace_period: float = 5.0,
        registry=None,
        control: Optional[str] = None,
        injector=None,
    ) -> None:
        self.service = service
        self.grace_period = grace_period
        self.registry = registry
        self.injector = injector
        self._inherited: set[int] = set()
        self.seqlock_repaired = False
        if control is not None:
            self.control = ControlBlock.attach(control)
            self.base = control.removesuffix("-ctl")
            self._owns_control = False
            self.seqlock_repaired = self.control.repair_seqlock()
            generation, epoch, _len, _ts = self.control.read_snapshot()
            self._generation = generation
            self._epoch_floor = epoch
            if generation:
                self._inherited.add(generation)
        else:
            self.base = base or new_base_name()
            self.control = ControlBlock.create(self.base, num_workers=num_workers)
            self._owns_control = True
            self._generation = 0
            self._epoch_floor = 0
        self._published_epoch: Optional[int] = None
        self._published_degraded = False
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._retired: list[tuple[float, int]] = []  # (retired_at, generation)
        self._publishes = 0
        self._unlinked = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def control_name(self) -> str:
        return self.control.name

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def owns_control(self) -> bool:
        return self._owns_control

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self) -> int:
        """Freeze + pack + publish one snapshot; returns its generation."""
        frozen, component_of, epoch = self.service.freeze_snapshot()
        publish_epoch = max(epoch, self._epoch_floor)
        # JSON writes tuples as arrays; readers re-tuple via
        # hashable_vertex, matching the wire protocol's convention.
        vertices = list(component_of)
        meta = {
            "vertices": vertices,
            "component_of": [component_of[v] for v in vertices],
            "epoch": publish_epoch,
        }
        blob = pack_frozen(frozen, meta, include_edges=False)
        with self._lock:
            generation = self._generation + 1
            name = segment_name(self.base, generation)
            try:
                shm = create_segment(name, len(blob))
            except FileExistsError:
                # A predecessor died between creating this generation's
                # segment and flipping the control block to name it; the
                # name is linked but unreferenced, so reclaim it.
                unlink_segment(name)
                shm = create_segment(name, len(blob))
            shm.buf[:len(blob)] = blob
            self.control.write_snapshot(
                generation, publish_epoch, len(blob), on_flip=self._on_flip
            )
            previous = self._generation
            self._generation = generation
            self._segments[generation] = shm
            if previous:
                self._retired.append((time.monotonic(), previous))
            self._published_epoch = epoch
            self._publishes += 1
        if self.registry is not None:
            self.registry.incr("shm.publishes")
            self.registry.gauge("shm.snapshot_age_ms").set(0.0)
        self._reap_retired()
        return generation

    def _on_flip(self) -> None:
        """Crash-point hook invoked while the seqlock sequence is odd."""
        if self.injector is not None:
            self.injector.fire("shm.publish.flip")

    def poll_once(self) -> bool:
        """Publish iff the service moved on; mirror the degraded flag.

        Returns ``True`` when a new snapshot was published.
        """
        degraded = bool(self.service.degraded)
        if degraded != self._published_degraded:
            self.control.set_degraded(degraded)
            self._published_degraded = degraded
        if self.service.epoch == self._published_epoch:
            self._reap_retired()
            self._update_age_gauge()
            return False
        self.publish()
        return True

    def _update_age_gauge(self) -> None:
        if self.registry is None:
            return
        _gen, _epoch, _len, ts_ns = self.control.read_snapshot()
        if ts_ns:
            age_ms = max(0.0, (time.time_ns() - ts_ns) / 1e6)
            self.registry.gauge("shm.snapshot_age_ms").set(round(age_ms, 3))

    def _reap_retired(self) -> None:
        """Unlink retired segments past their grace period."""
        now = time.monotonic()
        with self._lock:
            keep = []
            for retired_at, generation in self._retired:
                if now - retired_at >= self.grace_period:
                    self._unlink_generation(generation)
                else:
                    keep.append((retired_at, generation))
            self._retired = keep

    def _unlink_generation(self, generation: int) -> None:
        shm = self._segments.pop(generation, None)
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
            unlink_segment(segment_name(self.base, generation))
        elif generation in self._inherited:
            # A predecessor writer created this segment; this process
            # holds no handle, so unlink it by name.
            self._inherited.discard(generation)
            if not unlink_segment(segment_name(self.base, generation)):
                return  # janitor or sweep beat us
        else:
            return
        self._unlinked += 1
        if self.registry is not None:
            self.registry.incr("shm.segments_unlinked")

    # ------------------------------------------------------------------
    # Background polling
    # ------------------------------------------------------------------

    def start(self, interval: float = 0.2) -> None:
        """Start the republish thread (idempotent)."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.poll_once()
                except Exception:  # pragma: no cover - keep publishing
                    if self.registry is not None:
                        self.registry.incr("shm.publish_errors")

        self._thread = threading.Thread(
            target=loop, name="shm-publisher", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop polling; unlink what this process owns.

        Owner mode (fresh boot, single assembly teardown): signal
        shutdown to readers, unlink every data segment and the control
        block.  Attach mode (a failover writer exiting): leave the
        control block and the *current* generation linked — readers are
        still serving from it and the successor writer (or the
        supervisor's final sweep) retires it; unlink only superseded
        segments this writer created.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._owns_control:
            self.control.set_shutdown()
        with self._lock:
            keep_current = None if self._owns_control else self._generation
            for generation in list(self._segments):
                if generation == keep_current:
                    seg = self._segments.pop(generation)
                    try:
                        seg.close()
                    except BufferError:  # pragma: no cover
                        pass
                    continue
                self._unlink_generation(generation)
            self._retired.clear()
        self.control.close()
        if self._owns_control:
            self.control.unlink()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health_section(self) -> dict:
        """Snapshot-plane health for ``repro health`` / the health op."""
        generation, epoch, data_len, ts_ns = self.control.read_snapshot()
        now_ns = time.time_ns()
        workers = []
        for stats in self.control.workers():
            attach_ns = stats.pop("attach_ts_ns")
            stats["snapshot_age_s"] = round(
                max(0.0, (now_ns - attach_ns) / 1e9), 3
            ) if attach_ns else None
            stats["alive"] = pid_alive(stats["pid"])
            workers.append(stats)
        return {
            "base": self.base,
            "generation": generation,
            "epoch": epoch,
            "bytes": data_len,
            "age_s": round(max(0.0, (now_ns - ts_ns) / 1e9), 3) if ts_ns else None,
            "publishes": self._publishes,
            "segments_unlinked": self._unlinked,
            "segments_live": len(self._segments),
            "grace_period_s": self.grace_period,
            "degraded": self.control.degraded,
            "writer_pid": self.control.writer_pid,
            "worker_restarts": self.control.worker_restarts,
            "writer_restarts": self.control.writer_restarts,
            "seqlock_repaired": self.seqlock_repaired,
            "workers": workers,
        }
